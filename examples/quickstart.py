"""Quickstart: build a correlated table, create a Correlation Map, run queries.

This example walks through the paper's core idea on the classic city/state
style of soft functional dependency, using a synthetic product table where
``price`` strongly (but not exactly) determines the clustered attribute
``catid``:

1. load and cluster the table,
2. create a (bucketed) Correlation Map on the predicated attribute,
3. compare the CM-driven plan against a secondary B+Tree and a full scan,
4. show the rewritten query and the size difference between the structures.

Run with::

    python examples/quickstart.py
"""

import random

from repro import Aggregate, Between, Database, Query, WidthBucketer


def make_rows(num_rows=60_000, seed=0):
    """A product table where price soft-determines the category."""
    rng = random.Random(seed)
    rows = []
    for item_id in range(num_rows):
        price = rng.uniform(0, 100_000)
        catid = int(price // 500)              # 200 categories, price-banded
        rows.append(
            {
                "itemid": item_id,
                "catid": catid,
                "category": f"department-{catid // 20}",
                "price": round(price, 2),
            }
        )
    return rows


def main():
    rows = make_rows()

    # 1. Create, load and cluster the table (CATID is the clustered attribute;
    #    pages_per_bucket enables the clustered-attribute bucketing of §6.1.1).
    db = Database(buffer_pool_pages=2_000)
    db.create_table("items", sample_row=rows[0], tups_per_page=50)
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=10)

    # 2. Secondary structures on the predicated attribute: a conventional
    #    dense B+Tree and a bucketed Correlation Map.
    btree = db.create_secondary_index("items", "price")
    cm = db.create_correlation_map(
        "items", ["price"], bucketers={"price": WidthBucketer(256.0)}
    )

    # 3. The query: an aggregate over a narrow price range.
    query = Query.select(
        "items", Between("price", 10_000, 10_800), aggregate=Aggregate.count()
    )

    print("query:", query.describe())
    print()
    print("planner's view of the alternatives:")
    for plan in db.explain(query):
        print(
            f"  {plan['method']:<22} via {plan['structure']:<22}"
            f" estimated {plan['estimated_cost_ms']:8.2f} ms"
        )
    print()

    for method in ("seq_scan", "sorted_index_scan", "cm_scan"):
        result = db.query(query, force=method, cold_cache=True)
        print(
            f"{method:<22} -> count={result.value:<6}"
            f" simulated {result.elapsed_ms:8.2f} ms,"
            f" {result.pages_visited:5d} pages,"
            f" {result.false_positive_rows:5d} false-positive rows"
        )

    # 4. The rewriting the CM performs, and the size comparison.
    cm_result = db.query(query, force="cm_scan")
    print()
    print("rewritten query sent to the clustered index:")
    print(" ", cm_result.rewritten_sql)
    print()
    print(f"secondary B+Tree size: {btree.size_bytes() / 1024:8.1f} KB")
    print(f"correlation map size:  {cm.size_bytes() / 1024:8.1f} KB")
    print(f"compression ratio:     {btree.size_bytes() / cm.size_bytes():8.0f}x")


if __name__ == "__main__":
    main()
