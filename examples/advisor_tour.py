"""CM Advisor tour: from a training workload to recommended correlation maps.

The advisor (paper Section 6) takes the queries an application runs, explores
candidate (possibly composite, possibly bucketed) CM designs for each, and
recommends the smallest design whose estimated slowdown relative to a dense
secondary B+Tree stays within a performance target.  It also answers the
physical-design question of Section 3.4: which attribute should the table be
clustered on to benefit the most queries?

Run with::

    python examples/advisor_tour.py
"""

from repro import CMAdvisor, ClusteringAdvisor, HardwareParameters, TableProfile
from repro.bench.harness import SDSS_SEEK_SCALE, build_sdss_rows, scaled_disk_parameters
from repro.bench.reporting import format_table
from repro.datasets.sdss import ATTRIBUTE_FAMILIES
from repro.datasets.workloads import (
    one_percent_range,
    sdss_q2_training_query,
    sdss_sx6_training_query,
)

#: The data set is ~10x smaller than the paper's SDSS extract, so the seek
#: cost is scaled down by the same factor (see EXPERIMENTS.md).
HARDWARE = HardwareParameters.from_disk(scaled_disk_parameters(SDSS_SEEK_SCALE))


def main():
    rows = build_sdss_rows()
    print(f"PhotoObj sample: {len(rows)} rows, {len(rows[0])} attributes")

    # ------------------------------------------------------------------
    # 1. Which attribute should we cluster on?  (the Figure 2 question)
    # ------------------------------------------------------------------
    candidates = ["fieldid", "run", "psfmag_g", "ra", "noise1"]
    query_attributes = (
        list(ATTRIBUTE_FAMILIES["position"][:6])
        + list(ATTRIBUTE_FAMILIES["brightness"][:4])
        + ["noise1"]
    )
    clustering_advisor = ClusteringAdvisor(
        rows,
        table_profile=TableProfile(total_tups=len(rows), tups_per_page=20, btree_height=2),
        hardware=HARDWARE,
    )
    predicates = {}
    for position, attribute in enumerate(query_attributes):
        low, high = one_percent_range(rows, attribute, seed=position)
        predicates[attribute] = (
            lambda row, a=attribute, lo=low, hi=high: lo <= row[a] <= hi
        )
    print()
    print("clustering advisor: queries accelerated >= 2x by each clustering choice")
    summary = []
    for benefit in clustering_advisor.simulate_workload(candidates, predicates):
        histogram = benefit.histogram()
        summary.append(
            {
                "clustered on": benefit.clustered_attribute,
                ">=2x": histogram[2.0],
                ">=4x": histogram[4.0],
                ">=8x": histogram[8.0],
            }
        )
    print(format_table(summary))

    # ------------------------------------------------------------------
    # 2. Which CMs should we build for the workload?  (Tables 4 and 5)
    # ------------------------------------------------------------------
    advisor = CMAdvisor(
        rows,
        "objid",
        table_profile=TableProfile(total_tups=len(rows), tups_per_page=20, btree_height=2),
        hardware=HARDWARE,
        performance_target=0.10,
        sample_size=20_000,
    )

    print()
    print("bucketings considered for the SX6 attributes (Table 4):")
    print(
        format_table(
            [
                {"column": row["column"], "cardinality": row["cardinality"],
                 "bucket widths": row["bucket_widths"]}
                for row in advisor.bucketing_report(["mode", "type", "psfmag_g", "fieldid"])
            ]
        )
    )

    for training_query in (sdss_sx6_training_query(), sdss_q2_training_query()):
        recommendation = advisor.recommend(training_query)
        print()
        print(f"designs for query {training_query.name!r} (best 6 by estimated slowdown):")
        print(
            format_table(
                advisor.design_table(training_query, limit=6),
                columns=["runtime", "cm_design", "size_ratio"],
            )
        )
        chosen = recommendation.recommended
        if chosen is None:
            print("  -> no CM recommended (no design beats a sequential scan)")
        else:
            print(
                f"  -> recommended: CM({chosen.describe()}), "
                f"estimated {chosen.estimated_size_bytes / 1024:.0f} KB "
                f"({chosen.size_ratio:.1%} of the equivalent B+Tree), "
                f"slowdown {chosen.slowdown:+.0%}"
            )


if __name__ == "__main__":
    main()
