"""TPC-H: exploiting the shipdate/receiptdate correlation (paper Figure 3).

The lineitem table is clustered on ``receiptdate``.  Because goods are
received a few days after they ship, a query predicated on ``shipdate`` can
be answered by scanning a handful of receiptdate ranges instead of the whole
table -- but only if the executor knows about the correlation.  This example
compares, for a growing ``shipdate IN (...)`` list:

* a sorted secondary-index scan with the correlated clustering,
* the same scan when the table is clustered on the (uncorrelated) primary key,
* a full table scan,
* the analytical cost model's prediction.

Run with::

    python examples/tpch_shipdates.py
"""

from repro.bench.harness import build_tpch_database
from repro.bench.reporting import format_series
from repro.core.cost import scan_cost, sorted_lookup_cost
from repro.core.model import HardwareParameters
from repro.datasets.workloads import tpch_shipdate_query


def main():
    print("building lineitem clustered on receiptdate (correlated) ...")
    corr_db, rows = build_tpch_database(cluster_on="receiptdate")
    corr_db.create_secondary_index("lineitem", "shipdate")

    print("building lineitem clustered on orderkey (uncorrelated) ...")
    uncorr_db, _ = build_tpch_database(cluster_on="orderkey")
    uncorr_db.create_secondary_index("lineitem", "shipdate")

    table = corr_db.table("lineitem")
    hardware = HardwareParameters.from_disk(corr_db.disk.params)
    profile = table.table_profile()
    correlation = table.correlation_profile("shipdate")
    print(
        f"lineitem: {table.num_rows} rows, {table.num_pages} pages, "
        f"c_per_u(shipdate -> receiptdate) = {correlation.c_per_u:.2f}"
    )

    counts = [1, 2, 4, 8, 16, 32]
    series = {"correlated_ms": [], "uncorrelated_ms": [], "scan_ms": [], "model_ms": []}
    for n in counts:
        query = tpch_shipdate_query(rows, n, seed=n)
        correlated = corr_db.query(query, force="sorted_index_scan", cold_cache=True)
        uncorrelated = uncorr_db.query(query, force="sorted_index_scan", cold_cache=True)
        series["correlated_ms"].append(round(correlated.elapsed_ms, 1))
        series["uncorrelated_ms"].append(round(uncorrelated.elapsed_ms, 1))
        series["scan_ms"].append(round(scan_cost(profile, hardware), 1))
        series["model_ms"].append(
            round(sorted_lookup_cost(n, correlation, profile, hardware), 1)
        )

    print()
    print("simulated elapsed time of the shipdate IN (...) aggregate:")
    print(format_series(series, x_label="num_shipdates", x_values=counts))
    print()
    print(
        "With the correlated clustering the secondary index stays far below the\n"
        "scan cost; without it the bitmap scan touches scattered pages and hits\n"
        "the scan cost after a handful of ship dates -- the shape of Figure 3."
    )


if __name__ == "__main__":
    main()
