"""SDSS sky survey: composite correlation maps (Experiment 5 / Table 6).

Neither right ascension nor declination alone determines where an object is
stored (the survey sweeps the sky block by block), but the *pair* (ra, dec)
does.  A composite CM on (ra, dec) therefore answers region queries far
faster than single-attribute CMs -- and even beats a composite secondary
B+Tree, which can only use the leading attribute of its key for a range
predicate, while being orders of magnitude smaller.

Run with::

    python examples/sdss_composite.py
"""

from repro import WidthBucketer
from repro.bench.harness import build_sdss_database
from repro.bench.reporting import format_table
from repro.datasets.workloads import sdss_q2_query


def main():
    print("building the PhotoObj-style table clustered on objID ...")
    db, rows = build_sdss_database()
    table = db.table("photoobj")
    print(f"  {table.num_rows} rows over {table.num_pages} pages")

    # How strongly does each key determine the clustered attribute?
    for key in (["ra"], ["dec"], ["ra", "dec"]):
        profile = table.correlation_profile(key)
        print(f"  c_per_u({' + '.join(key)} -> objid) = {profile.c_per_u:8.1f}")

    ra_bucket, dec_bucket = WidthBucketer(0.5), WidthBucketer(0.25)
    cm_ra = db.create_correlation_map("photoobj", ["ra"], bucketers={"ra": ra_bucket})
    cm_dec = db.create_correlation_map("photoobj", ["dec"], bucketers={"dec": dec_bucket})
    cm_pair = db.create_correlation_map(
        "photoobj", ["ra", "dec"], bucketers={"ra": ra_bucket, "dec": dec_bucket}
    )
    btree_pair = db.create_secondary_index("photoobj", ["ra", "dec"])

    query = sdss_q2_query(
        ra_range=(188.0, 189.0), dec_range=(3.0, 3.2), surface_range=(15.0, 40.0)
    )
    print()
    print("query:", query.describe())

    rows_out = []
    correlation_maps = table.correlation_maps
    for label, cm in (("CM(ra)", cm_ra), ("CM(dec)", cm_dec), ("CM(ra, dec)", cm_pair)):
        # Leave only the CM under test visible to the planner.
        table.correlation_maps = {cm.name: cm}
        result = db.query(query, force="cm_scan", cold_cache=True)
        rows_out.append(
            {
                "index": label,
                "runtime_ms": round(result.elapsed_ms, 2),
                "pages": result.pages_visited,
                "size_kb": round(cm.size_bytes() / 1024, 1),
            }
        )
    table.correlation_maps = correlation_maps
    result = db.query(query, force="sorted_index_scan", cold_cache=True)
    rows_out.append(
        {
            "index": "B+Tree(ra, dec)",
            "runtime_ms": round(result.elapsed_ms, 2),
            "pages": result.pages_visited,
            "size_kb": round(btree_pair.size_bytes() / 1024, 1),
        }
    )

    print()
    print(format_table(rows_out))
    print()
    print(
        "The composite CM reads only the few clustered buckets where both the\n"
        "ra range and the dec range can co-occur, while the single-attribute\n"
        "structures (and the B+Tree's ra prefix) sweep every block the ra or\n"
        "dec stripe crosses -- the Table 6 result."
    )


if __name__ == "__main__":
    main()
