"""eBay catalog: maintaining many correlation maps cheaply (Experiments 1-3).

A product catalog clustered on CATID serves queries over the category rollup
columns (CAT1..CAT6) and over Price.  Building a secondary B+Tree for each of
them would make bulk loading painfully slow (each index dirties more buffer
pool pages than fit in RAM); correlation maps give nearly the same query
performance at a tiny fraction of the size and maintenance cost.

This example:

1. builds the ITEMS table clustered on CATID,
2. creates six CMs (CAT2..CAT6 and a bucketed one on Price),
3. runs the paper's Experiment 1 query (COUNT(DISTINCT CAT2) over a price
   range) through the CM and a secondary B+Tree,
4. applies a batch of inserts and reports the maintenance cost of the CMs.

Run with::

    python examples/ebay_catalog.py
"""

from repro import Aggregate, Between, Equals, Query
from repro.bench.harness import build_ebay_database, ebay_price_bucketer
from repro.datasets.workloads import ebay_mixed_workload


def main():
    print("building the ITEMS table clustered on CATID ...")
    db, rows = build_ebay_database()
    table = db.table("items")
    print(f"  {table.num_rows} rows over {table.num_pages} pages")

    # A conventional secondary index on price for comparison ...
    btree = db.create_secondary_index("items", "price")
    # ... and correlation maps on price plus the category rollup columns.
    cms = {}
    cms["price"] = db.create_correlation_map(
        "items", ["price"], bucketers={"price": ebay_price_bucketer(12)}
    )
    for attribute in ("cat2", "cat3", "cat4", "cat5", "cat6"):
        cms[attribute] = db.create_correlation_map("items", [attribute])

    total_cm_kb = sum(cm.size_bytes() for cm in cms.values()) / 1024
    print(f"  secondary B+Tree on price: {btree.size_bytes() / 1024:9.1f} KB")
    print(f"  all six correlation maps:  {total_cm_kb:9.1f} KB")

    # Experiment 1's query: distinct second-level categories in a price band.
    query = Query.select(
        "items",
        Between("price", 1_000, 6_000),
        aggregate=Aggregate.count_distinct("cat2"),
    )
    print()
    print("query:", query.describe())
    for method in ("seq_scan", "sorted_index_scan", "cm_scan"):
        result = db.query(query, force=method, cold_cache=True)
        print(
            f"  {method:<20} value={result.value:<4}"
            f" simulated {result.elapsed_ms:8.2f} ms, {result.pages_visited} pages"
        )

    # A category point query served purely by a CM (no B+Tree exists for it).
    sample_cat = next(row["cat4"] for row in rows if row["cat4"])
    cat_query = Query.select(
        "items", Equals("cat4", sample_cat), aggregate=Aggregate.avg("price")
    )
    result = db.query(cat_query, cold_cache=True)
    print()
    print("query:", cat_query.describe())
    print(
        f"  planner chose {result.access_method}: AVG(price)={result.value:,.0f},"
        f" {result.elapsed_ms:.2f} ms simulated"
    )

    # Maintenance: one batch of fresh items, all six CMs kept up to date.
    batch = ebay_mixed_workload(
        rows, num_rounds=1, inserts_per_round=5_000, selects_per_round=0, seed=1
    )[0][1]
    outcome = db.insert("items", batch, batch_size=1_000)
    print()
    print(
        f"inserted {outcome.rows_affected} rows while maintaining 6 CMs: "
        f"{outcome.elapsed_ms / 1000:.2f} s simulated "
        f"({outcome.rows_per_second:,.0f} rows/s), "
        f"{outcome.log_flushes} log flushes, {outcome.dirty_evictions} dirty evictions"
    )


if __name__ == "__main__":
    main()
