#!/usr/bin/env python
"""Run the wall-clock executor benchmarks and write BENCH_exec.json.

Times the batched executor against the row-at-a-time path on the scan /
filter / join / top-k / group-by scenarios of
:mod:`repro.bench.wallclock`, verifying on the way that both modes report
bit-identical simulated statistics.  The JSON report tracks the wall-clock
trajectory across PRs; CI runs ``--smoke`` and uploads the file as an
artifact.

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py [--smoke]
        [--scale X] [--repeats N] [--batch-size N]
        [--output BENCH_exec.json] [--scenario NAME ...]
        [--check-floor COMMITTED.json] [--floor-headroom 0.5]

Exits non-zero if any scenario's parity check fails.  With ``--check-floor``
it also fails when the fresh run's ``summary.min_speedup`` drops below the
committed report's floor scaled by ``--floor-headroom`` -- the CI regression
smoke.  The headroom (default 0.5: regression means losing more than half
the committed speedup) absorbs runner noise; raw wall-clock numbers are
machine-dependent and never gate at 1:1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.wallclock import (  # noqa: E402 (path bootstrap above)
    BenchConfig,
    format_results,
    run_benchmarks,
    write_report,
)
from repro.engine.executor import DEFAULT_BATCH_SIZE  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, fewer repeats (the CI configuration)",
    )
    parser.add_argument("--scale", type=float, default=None, help="row-count multiplier")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per mode")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE, help="rows per batch"
    )
    parser.add_argument(
        "--output",
        default="BENCH_exec.json",
        help="report path (default: ./BENCH_exec.json)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only the named scenario (repeatable)",
    )
    parser.add_argument(
        "--check-floor",
        default=None,
        metavar="COMMITTED.json",
        help="fail if min_speedup regresses below this committed report's "
        "floor (scaled by --floor-headroom)",
    )
    parser.add_argument(
        "--floor-headroom",
        type=float,
        default=0.5,
        help="fraction of the committed min_speedup the fresh run must keep "
        "(default 0.5, absorbing runner noise)",
    )
    args = parser.parse_args(argv)

    # Read the committed floor before the run: --output may overwrite the
    # very file --check-floor points at.
    floor = None
    if args.check_floor is not None:
        with open(args.check_floor, encoding="utf-8") as handle:
            committed = json.load(handle)
        committed_min = committed["summary"]["min_speedup"]
        floor = committed_min * args.floor_headroom

    config = BenchConfig.smoke() if args.smoke else BenchConfig()
    config = BenchConfig(
        scale=args.scale if args.scale is not None else config.scale,
        repeats=args.repeats if args.repeats is not None else config.repeats,
        batch_size=args.batch_size,
    )

    results = run_benchmarks(config, names=args.scenario)
    if not results:
        parser.error(f"no scenario matched {args.scenario!r}")
    print(format_results(results))
    report = write_report(results, config, args.output)
    print(f"\nwrote {args.output} (min speedup {report['summary']['min_speedup']}x)")
    if not report["summary"]["parity_ok"]:
        print("ERROR: batched/row-at-a-time parity check failed", file=sys.stderr)
        return 1
    if floor is not None:
        fresh_min = report["summary"]["min_speedup"]
        if fresh_min < floor:
            print(
                f"ERROR: min speedup {fresh_min}x regressed below the "
                f"committed floor {committed_min}x * {args.floor_headroom} "
                f"headroom = {floor:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"floor check ok: {fresh_min}x >= {floor:.2f}x "
            f"(committed {committed_min}x * {args.floor_headroom})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
