#!/usr/bin/env python
"""Run the wall-clock executor benchmarks and write BENCH_exec.json.

Times the batched executor against the row-at-a-time path on the scan /
filter / join / top-k / group-by scenarios of
:mod:`repro.bench.wallclock`, verifying on the way that both modes report
bit-identical simulated statistics.  The JSON report tracks the wall-clock
trajectory across PRs; CI runs ``--smoke`` and uploads the file as an
artifact.

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py [--smoke]
        [--scale X] [--repeats N] [--batch-size N]
        [--output BENCH_exec.json] [--scenario NAME ...]

Exits non-zero if any scenario's parity check fails (wall-clock numbers are
machine-dependent and never gate by themselves).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.wallclock import (  # noqa: E402 (path bootstrap above)
    BenchConfig,
    format_results,
    run_benchmarks,
    write_report,
)
from repro.engine.executor import DEFAULT_BATCH_SIZE  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, fewer repeats (the CI configuration)",
    )
    parser.add_argument("--scale", type=float, default=None, help="row-count multiplier")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per mode")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE, help="rows per batch"
    )
    parser.add_argument(
        "--output",
        default="BENCH_exec.json",
        help="report path (default: ./BENCH_exec.json)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only the named scenario (repeatable)",
    )
    args = parser.parse_args(argv)

    config = BenchConfig.smoke() if args.smoke else BenchConfig()
    config = BenchConfig(
        scale=args.scale if args.scale is not None else config.scale,
        repeats=args.repeats if args.repeats is not None else config.repeats,
        batch_size=args.batch_size,
    )

    results = run_benchmarks(config, names=args.scenario)
    if not results:
        parser.error(f"no scenario matched {args.scenario!r}")
    print(format_results(results))
    report = write_report(results, config, args.output)
    print(f"\nwrote {args.output} (min speedup {report['summary']['min_speedup']}x)")
    if not report["summary"]["parity_ok"]:
        print("ERROR: batched/row-at-a-time parity check failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
