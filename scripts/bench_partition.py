#!/usr/bin/env python
"""Run the partitioning benchmarks and write BENCH_partition.json.

Measures the two claims of the partitioned-storage layer
(:mod:`repro.bench.partition`): partition pruning reads a fraction of the
unpartitioned scan's physical pages (simulated, machine-independent), and
process-parallel execution of the per-partition subtrees beats the serial
exchange on wall clock while every simulated statistic stays bit-identical.

Usage::

    PYTHONPATH=src python scripts/bench_partition.py [--smoke] [--check]
        [--scale X] [--repeats N] [--partitions N] [--workers N]
        [--output BENCH_partition.json] [--scenario NAME ...]

``--check`` turns the run into the CI gate: it fails on any parity
violation, on a pruning page ratio above the acceptance floor, and -- only
on runners with at least ``MIN_CORES_FOR_FLOOR`` cores -- on a parallel
speedup below the floor.  On smaller runners the wall-clock floor is
skipped with an explicit message: a 1-2 core container cannot demonstrate
a 2x multi-core speedup, and a red build there would only measure the
runner, not the code.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.partition import (  # noqa: E402 (path bootstrap above)
    FLAGSHIP_SCENARIO,
    JOIN_SCENARIO,
    MERGE_SIMULATED_RATIO_FLOOR,
    MIN_CORES_FOR_FLOOR,
    MIN_SERIAL_SECONDS,
    ORDERED_MERGE_SCENARIO,
    PARALLEL_SPEEDUP_FLOOR,
    PRUNING_PAGE_RATIO_FLOOR,
    PartitionBenchConfig,
    format_results,
    run_benchmarks,
    write_report,
)
from repro.engine.parallel import FORK_AVAILABLE  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, fewer repeats (the CI configuration)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on parity/pruning regressions (and the wall-clock floor "
        "on multi-core runners)",
    )
    parser.add_argument("--scale", type=float, default=None, help="row-count multiplier")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per mode")
    parser.add_argument(
        "--partitions", type=int, default=None, help="partition count (default 8)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="fork-pool size (default: per core)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_partition.json",
        help="report path (default: ./BENCH_partition.json)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only the named scenario (repeatable)",
    )
    args = parser.parse_args(argv)

    base = PartitionBenchConfig.smoke() if args.smoke else PartitionBenchConfig()
    config = PartitionBenchConfig(
        scale=args.scale if args.scale is not None else base.scale,
        repeats=args.repeats if args.repeats is not None else base.repeats,
        partitions=args.partitions if args.partitions is not None else base.partitions,
        workers=args.workers if args.workers is not None else base.workers,
        batch_size=base.batch_size,
    )

    results = run_benchmarks(config, names=args.scenario)
    if not results:
        parser.error(f"no scenario matched {args.scenario!r}")
    print(format_results(results))
    report = write_report(results, config, args.output)
    summary = report["summary"]
    print(
        f"\nwrote {args.output} (pruning ratio "
        f"{summary['pruning_page_ratio']}, parallel speedup "
        f"{summary['parallel_speedup']}x, join speedup "
        f"{summary['join_speedup']}x, merge simulated ratio "
        f"{summary['merge_simulated_ratio']} on {report['cpu_count']} cores)"
    )

    if not args.check:
        return 0
    failed = False
    if not summary["parity_ok"]:
        print("ERROR: partitioned/parallel parity check failed", file=sys.stderr)
        failed = True
    ratio = summary["pruning_page_ratio"]
    if ratio is not None and ratio > PRUNING_PAGE_RATIO_FLOOR:
        print(
            f"ERROR: pruning page ratio {ratio} exceeds the acceptance "
            f"floor {PRUNING_PAGE_RATIO_FLOOR}",
            file=sys.stderr,
        )
        failed = True
    merge_ratio = summary["merge_simulated_ratio"]
    if merge_ratio is not None and merge_ratio > MERGE_SIMULATED_RATIO_FLOOR:
        print(
            f"ERROR: ordered-merge simulated cost ratio {merge_ratio} on "
            f"{ORDERED_MERGE_SCENARIO} exceeds the non-regression floor "
            f"{MERGE_SIMULATED_RATIO_FLOOR} (machine-independent)",
            file=sys.stderr,
        )
        failed = True
    cores = os.cpu_count() or 1
    floors = [
        (FLAGSHIP_SCENARIO, summary["parallel_speedup"]),
        (JOIN_SCENARIO, summary["join_speedup"]),
    ]
    if not FORK_AVAILABLE:
        print(
            "skipping the parallel wall-clock floors: fork start method "
            "unavailable on this platform"
        )
    elif cores < MIN_CORES_FOR_FLOOR:
        names = ", ".join(name for name, _speedup in floors)
        print(
            f"skipping the parallel wall-clock floors ({PARALLEL_SPEEDUP_FLOOR}x "
            f"on {names}): runner has {cores} cores, "
            f"needs >= {MIN_CORES_FOR_FLOOR}"
        )
    else:
        for name, speedup in floors:
            scenario = report["scenarios"].get(name)
            serial_seconds = scenario["serial_seconds"] if scenario else None
            if scenario is None or speedup is None:
                continue
            if serial_seconds is not None and serial_seconds < MIN_SERIAL_SECONDS:
                print(
                    f"skipping the parallel wall-clock floor on {name}: serial "
                    f"run took {serial_seconds:.4f}s < {MIN_SERIAL_SECONDS}s, "
                    "too short to amortise pool startup -- raise --scale for "
                    "a meaningful gate"
                )
                continue
            if speedup < PARALLEL_SPEEDUP_FLOOR:
                print(
                    f"ERROR: parallel speedup {speedup}x on {name} is "
                    f"below the {PARALLEL_SPEEDUP_FLOOR}x floor on a "
                    f"{cores}-core runner",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
