#!/usr/bin/env python
"""Run the repro lint suite over the engine sources.

Usage::

    python scripts/lint.py                  # lint src/repro, text report
    python scripts/lint.py --check          # exit 1 on any violation (CI)
    python scripts/lint.py --format json --output lint-report.json
    python scripts/lint.py --list-rules
    python scripts/lint.py --select REPRO105,determinism src/repro/storage

Rules are selected by id (``REPRO105``) or name (``slots-on-hot-path``)
interchangeably.  ``--check`` is the CI entry point: it always exits
non-zero when violations remain after suppressions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import (  # noqa: E402
    LintEngine,
    all_rules,
    render_json,
    render_text,
)
from repro.lint.registry import resolve_rule_ids  # noqa: E402


def _split_tokens(values: list[str]) -> list[str]:
    tokens: list[str] = []
    for value in values:
        tokens.extend(token.strip() for token in value.split(",") if token.strip())
    return tokens


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any violation remains (CI gate)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name:<22} {rule.description}")
        return 0

    try:
        selected = resolve_rule_ids(_split_tokens(args.select))
        ignored = resolve_rule_ids(_split_tokens(args.ignore))
    except ValueError as error:
        parser.error(str(error))
    if selected:
        rules = [rule for rule in rules if rule.rule_id in selected]
    rules = [rule for rule in rules if rule.rule_id not in ignored]

    targets = args.targets or [REPO_ROOT / "src" / "repro"]
    engine = LintEngine(REPO_ROOT, rules=rules)
    report = engine.run(targets)

    rendered = (
        render_json(report) if args.format == "json" else render_text(report) + "\n"
    )
    if args.output is not None:
        args.output.write_text(rendered)
        print(f"wrote {args.format} report to {args.output}")
    else:
        sys.stdout.write(rendered)

    if args.check and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
