#!/usr/bin/env python3
"""Docs gate: intra-repo markdown links must resolve, doctests must pass.

Run from the repository root (CI's docs job and ``tests/test_docs.py`` both
do)::

    python scripts/check_docs.py

Two checks, no dependencies beyond the standard library:

* every relative link in every tracked ``*.md`` file must point at an
  existing file or directory (external ``http(s)``/``mailto`` links and
  pure ``#anchor`` fragments are skipped);
* ``doctest`` runs over every module in the ``repro`` package, so the
  worked examples in docstrings (``Query.join``, ``CorrelationMap``)
  keep executing as written.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}

#: ``[text](target)`` markdown links; images share the syntax via ``![``.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files() -> list[Path]:
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def check_markdown_links() -> list[str]:
    """Return one error string per broken relative link."""
    errors = []
    for md_file in iter_markdown_files():
        for line_no, line in enumerate(md_file.read_text().splitlines(), start=1):
            for target in _LINK.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                    continue
                if target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = (md_file.parent / relative).resolve()
                if not resolved.exists():
                    rel_md = md_file.relative_to(REPO_ROOT)
                    errors.append(f"{rel_md}:{line_no}: broken link -> {target}")
    return errors


def run_doctests() -> tuple[int, int]:
    """Doctest every module under ``repro``; returns (failures, tests run)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    package = importlib.import_module("repro")
    failures = attempted = 0
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        result = doctest.testmod(module, verbose=False)
        failures += result.failed
        attempted += result.attempted
    return failures, attempted


def main() -> int:
    link_errors = check_markdown_links()
    for error in link_errors:
        print(error)
    doc_failures, doc_attempted = run_doctests()
    print(
        f"checked {len(iter_markdown_files())} markdown files "
        f"({len(link_errors)} broken links), "
        f"ran {doc_attempted} doctests ({doc_failures} failures)"
    )
    if doc_attempted == 0:
        print("error: no doctests discovered (expected worked examples in docstrings)")
        return 1
    return 1 if (link_errors or doc_failures) else 0


if __name__ == "__main__":
    sys.exit(main())
