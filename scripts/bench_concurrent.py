#!/usr/bin/env python
"""Run the concurrent-serving benchmark and write BENCH_concurrent.json.

Measures the cooperative :class:`~repro.engine.scheduler.QueryScheduler`
serving interleaved readers over one shared buffer pool against serial
execution of the same queries, plus the mixed reader/writer scenario under
snapshot isolation (see :mod:`repro.bench.concurrent`).  All throughput and
latency numbers are in *simulated* time, so the report is host-independent.

Usage::

    PYTHONPATH=src python scripts/bench_concurrent.py [--smoke] [--check]
        [--readers N] [--rows N] [--pool-pages N]
        [--output BENCH_concurrent.json]

``--check`` enforces the acceptance criteria (>= 2x aggregate throughput for
the interleaved readers at equal logical page reads, and snapshot-stable
reader counts in the mixed scenario) and exits non-zero on violation --
the CI gate.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.concurrent import (  # noqa: E402 (path bootstrap above)
    ConcurrentConfig,
    check_report,
    format_report,
    run_benchmarks,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small table, same pool/table ratio (the CI configuration)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the acceptance criteria hold",
    )
    parser.add_argument("--readers", type=int, default=None, help="concurrent readers")
    parser.add_argument("--rows", type=int, default=None, help="rows in the items table")
    parser.add_argument(
        "--pool-pages", type=int, default=None, help="buffer pool capacity in pages"
    )
    parser.add_argument(
        "--output",
        default="BENCH_concurrent.json",
        help="report path (default: ./BENCH_concurrent.json)",
    )
    args = parser.parse_args(argv)

    config = ConcurrentConfig.smoke() if args.smoke else ConcurrentConfig()
    overrides = {}
    if args.readers is not None:
        overrides["readers"] = args.readers
    if args.rows is not None:
        overrides["rows"] = args.rows
    if args.pool_pages is not None:
        overrides["buffer_pool_pages"] = args.pool_pages
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)

    report = run_benchmarks(config)
    print(format_report(report))
    write_report(report, args.output)
    print(f"\nwrote {args.output}")
    if args.check:
        failures = check_report(report)
        if failures:
            for failure in failures:
                print(f"ERROR: {failure}", file=sys.stderr)
            return 1
        print("acceptance checks ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
