"""Repo-root pytest configuration.

``--fuzz-iterations N`` widens the differential fuzzer's seeded query corpus
(``tests/engine/test_fuzz_parity.py``) beyond the small tier-1 default; CI
smoke runs the default, nightly/soak runs pass a few hundred.
"""

FUZZ_ITERATIONS_DEFAULT = 24


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-iterations",
        type=int,
        default=FUZZ_ITERATIONS_DEFAULT,
        metavar="N",
        help=(
            "seeded query corpus size for the differential batch-parity "
            f"fuzzer (default: {FUZZ_ITERATIONS_DEFAULT})"
        ),
    )
