"""Figure 9 (Experiment 3): mixed INSERT + SELECT workload, 5 B+Trees vs 5 CMs.

Rounds of batched inserts interleaved with AVG(Price) selections over the
category columns.  With 5 secondary B+Trees the inserts flood the buffer pool
with dirty index pages, which both slows the inserts and evicts the pages the
SELECTs need; with 5 CMs both components stay fast.  The paper reports the
5-CM configuration finishing the mixed workload more than 4x faster overall.
"""

import pytest

from repro.bench.harness import ExperimentScale, build_ebay_database
from repro.bench.reporting import format_table, print_header
from repro.datasets.workloads import ebay_mixed_workload

#: The five predicated category attributes (and their secondary structures).
CATEGORY_ATTRS = ("cat2", "cat3", "cat4", "cat5", "cat6")
NUM_ROUNDS = 8
INSERTS_PER_ROUND = 500
SELECTS_PER_ROUND = 20


def _build(kind: str, scale: ExperimentScale):
    db, rows = build_ebay_database(
        scale,
        num_categories=150,
        items_per_category=(80, 120),
        buffer_pool_pages=400,
        seed=23,
    )
    for attr in CATEGORY_ATTRS:
        if kind == "btree":
            db.create_secondary_index("items", attr)
        else:
            db.create_correlation_map("items", [attr])
    db.drop_caches()
    db.reset_measurements()
    return db, rows


def _run_workload(db, rows, kind: str):
    steps = ebay_mixed_workload(
        rows,
        num_rounds=NUM_ROUNDS,
        inserts_per_round=INSERTS_PER_ROUND,
        selects_per_round=SELECTS_PER_ROUND,
        category_attributes=CATEGORY_ATTRS,
        seed=9,
    )
    force = "sorted_index_scan" if kind == "btree" else "cm_scan"
    insert_ms = 0.0
    select_ms = 0.0
    for step, payload in steps:
        if step == "insert":
            insert_ms += db.insert("items", payload, batch_size=INSERTS_PER_ROUND).elapsed_ms
        else:
            select_ms += db.query(payload, force=force).elapsed_ms
    return insert_ms, select_ms


@pytest.mark.benchmark(group="figure9")
def test_fig9_mixed_workload(benchmark, experiment_scale):
    def run():
        results = []
        for kind in ("btree", "cm"):
            db, rows = _build(kind, experiment_scale)
            insert_ms, select_ms = _run_workload(db, rows, kind)
            results.append(
                {
                    "configuration": f"5 {'B+Trees' if kind == 'btree' else 'CMs'} (mixed)",
                    "insert_ms": round(insert_ms, 1),
                    "select_ms": round(select_ms, 1),
                    "total_ms": round(insert_ms + select_ms, 1),
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 9: mixed workload (INSERTs + SELECTs) with 5 B+Trees vs 5 CMs")
    print(format_table(results))

    btree = next(row for row in results if "B+Trees" in row["configuration"])
    cm = next(row for row in results if "CMs" in row["configuration"])

    # The CM configuration wins overall (the paper reports > 4x; the scaled
    # reproduction must show a clear win).
    assert cm["total_ms"] < btree["total_ms"] / 1.5

    # Inserts are the dominant source of the gap ...
    assert cm["insert_ms"] < btree["insert_ms"]
    # ... and the CM SELECTs are no slower than the B+Tree SELECTs in the
    # mixed workload (the paper finds them faster because the B+Tree queries
    # keep re-reading pages evicted by the update traffic).
    assert cm["select_ms"] <= btree["select_ms"] * 1.1
