"""Figure 2: how many SDSS queries each choice of clustered attribute speeds up.

The paper builds a 39-query benchmark (one ~1 %-selectivity selection per
PhotoObj attribute), clusters the table on each of the 39 attributes in turn,
and counts how many queries run at least 2x/4x/8x/16x faster than a table
scan under each clustering.  A handful of attributes (fieldID and friends)
accelerate many queries because they are correlated with a whole family of
other attributes.

This benchmark reproduces the sweep on the synthetic sky catalogue using the
clustering advisor's layout simulation (equivalent to running every query
under every clustering, but without 39 physical rebuilds).
"""

import pytest

from repro.bench.harness import SDSS_SEEK_SCALE, scaled_disk_parameters
from repro.bench.reporting import format_table, print_header
from repro.core.clustering_advisor import ClusteringAdvisor
from repro.core.model import HardwareParameters, TableProfile
from repro.datasets.sdss import ATTRIBUTE_FAMILIES, photoobj_attributes
from repro.datasets.workloads import one_percent_range

TUPS_PER_PAGE = 20
SELECTIVITY = 0.01


@pytest.mark.benchmark(group="figure2")
def test_fig2_clustering_speedups(benchmark, sdss_rows):
    attributes = photoobj_attributes()
    advisor = ClusteringAdvisor(
        sdss_rows,
        table_profile=TableProfile(
            total_tups=len(sdss_rows), tups_per_page=TUPS_PER_PAGE, btree_height=2
        ),
        hardware=HardwareParameters.from_disk(
            scaled_disk_parameters(SDSS_SEEK_SCALE)
        ),
    )

    predicates = {}
    for position, attribute in enumerate(attributes):
        low, high = one_percent_range(
            sdss_rows, attribute, selectivity=SELECTIVITY, seed=position
        )
        predicates[attribute] = (
            lambda row, a=attribute, lo=low, hi=high: lo <= row[a] <= hi
        )

    def run():
        benefits = advisor.simulate_workload(attributes, predicates)
        return [
            {
                "clustered_attribute": benefit.clustered_attribute,
                ">=2x": benefit.queries_with_speedup(2.0),
                ">=4x": benefit.queries_with_speedup(4.0),
                ">=8x": benefit.queries_with_speedup(8.0),
                ">=16x": benefit.queries_with_speedup(16.0),
            }
            for benefit in benefits
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 2: queries accelerated by each choice of clustered attribute")
    print(format_table(results))

    by_attribute = {row["clustered_attribute"]: row for row in results}
    assert len(results) == 39

    # Thresholds nest: >=16x counts never exceed >=2x counts.
    for row in results:
        assert row[">=2x"] >= row[">=4x"] >= row[">=8x"] >= row[">=16x"] >= 0

    # Clustering on a position-family attribute (the paper's fieldID case)
    # accelerates many queries, several of them dramatically.
    best_position = max(
        (by_attribute[a] for a in ATTRIBUTE_FAMILIES["position"]),
        key=lambda row: row[">=2x"],
    )
    assert best_position[">=2x"] >= 8
    assert best_position[">=8x"] >= 3

    # Clustering on an uncorrelated attribute helps almost nothing.
    worst = max(by_attribute[a][">=2x"] for a in ("noise1", "noise2", "priority"))
    assert worst <= 3

    # The histogram is skewed: only a minority of clusterings help many
    # queries, as in the paper's figure.
    many = sum(1 for row in results if row[">=2x"] >= 8)
    assert 1 <= many <= 25
