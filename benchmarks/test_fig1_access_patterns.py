"""Figure 1: heap access patterns of unclustered B+Tree lookups.

The paper visualises the lineitem pages touched when looking up three values
of an unclustered attribute, with and without a correlated clustered
attribute:

1. suppkey lookup, table clustered on partkey  (moderate correlation)
2. suppkey lookup, table not clustered          (scattered)
3. shipdate lookup, table clustered on receiptdate (strong correlation)
4. shipdate lookup, table not clustered         (scattered)

With correlations the sorted (bitmap) index scan visits a small number of
sequential page runs; without them it touches pages scattered across the
whole file.  This benchmark reproduces the four rows by laying the generated
lineitem table out in each clustering order and reporting pages touched,
contiguous runs (disk seeks) and the fraction of the table visited.
"""

import random

import pytest

from repro.bench.reporting import format_table, print_header


def _pattern(rows, clustered_attribute, lookup_attribute, values, tups_per_page=60):
    """Pages/runs a bitmap scan touches for ``lookup_attribute IN values``."""
    if clustered_attribute is None:
        order = list(range(len(rows)))  # load order = effectively unclustered
    else:
        order = sorted(range(len(rows)), key=lambda i: rows[i][clustered_attribute])
    position_of = {row_index: position for position, row_index in enumerate(order)}
    wanted = set(values)
    matching = [i for i, row in enumerate(rows) if row[lookup_attribute] in wanted]
    pages = sorted({position_of[i] // tups_per_page for i in matching})
    runs = 1 + sum(1 for a, b in zip(pages, pages[1:]) if b != a + 1) if pages else 0
    total_pages = (len(rows) + tups_per_page - 1) // tups_per_page
    return {
        "rows": len(matching),
        "pages": len(pages),
        "runs": runs,
        "fraction": len(pages) / total_pages,
    }


def _pick_values(rows, attribute, count, seed):
    rng = random.Random(seed)
    return rng.sample(sorted({row[attribute] for row in rows}), count)


@pytest.mark.benchmark(group="figure1")
def test_fig1_access_patterns(benchmark, tpch_correlated):
    _db, rows = tpch_correlated
    shipdates = _pick_values(rows, "shipdate", 3, seed=1)
    suppkeys = _pick_values(rows, "suppkey", 3, seed=2)

    def run():
        return [
            {
                "case": "suppkey lookup, clustered on partkey",
                **_pattern(rows, "partkey", "suppkey", suppkeys),
            },
            {
                "case": "suppkey lookup, not clustered",
                **_pattern(rows, None, "suppkey", suppkeys),
            },
            {
                "case": "shipdate lookup, clustered on receiptdate",
                **_pattern(rows, "receiptdate", "shipdate", shipdates),
            },
            {
                "case": "shipdate lookup, not clustered",
                **_pattern(rows, None, "shipdate", shipdates),
            },
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 1: access patterns for unclustered B+Tree lookups")
    print(format_table(results, columns=["case", "rows", "pages", "runs", "fraction"]))

    by_case = {row["case"]: row for row in results}
    strong = by_case["shipdate lookup, clustered on receiptdate"]
    strong_scattered = by_case["shipdate lookup, not clustered"]
    moderate = by_case["suppkey lookup, clustered on partkey"]
    moderate_scattered = by_case["suppkey lookup, not clustered"]

    # Strong correlation: a handful of long sequential runs instead of a
    # scattered sweep over a large table fraction (the paper reports ~1/20th
    # of the access cost).
    assert strong["runs"] < strong_scattered["runs"] / 5
    assert strong["pages"] < strong_scattered["pages"] / 2
    assert strong["fraction"] < 0.15

    # Moderate correlation: fewer seeks than the scattered layout, but not as
    # dramatic as the date pair.
    assert moderate["runs"] < moderate_scattered["runs"]
    assert moderate["runs"] > strong["runs"]
