"""Plan enumeration must never touch the heap (counter-based, no wall clock).

The paper's point is that a CM keeps *lookups* cheap because the map is tiny
and memory-resident; a planner that scans the table to cost its candidates
defeats that on the hot path.  These guards assert -- via the heap's logical
page-read counter, which counts even accounting-free reads -- that
``Planner.candidate_plans`` and ``Planner.choose`` perform zero heap page
reads, including right after inserts and deletes invalidate the cached
statistics.
"""

import pytest

from repro.bench.harness import ExperimentScale, build_ebay_database
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.query import Query


@pytest.fixture()
def planner_database():
    """A fresh (mutable) eBay-style database with an index and a CM on price."""
    db, rows = build_ebay_database(ExperimentScale(0.25))
    db.create_secondary_index("items", "price")
    db.create_correlation_map("items", ["price"], name="cm_price")
    return db, rows


QUERIES = [
    Query.select("items", Between("price", 1000, 1100)),
    Query.select("items", Equals("price", 1234.5)),
    Query.select("items", InSet("catid", [3, 57, 91])),
    Query.select("items", Equals("cat2", "group4")),
    Query.select("items", Between("price", 0, 9_000)),
]


def heap_reads(db):
    return db.table("items").heap.logical_page_reads


def plan_everything(db):
    table = db.table("items")
    for query in QUERIES:
        db.planner.candidate_plans(table, query)
        db.planner.choose(table, query)
        db.planner.choose(table, query, force="seq_scan")
        # LIMIT-aware selection estimates result sizes from the sample, so
        # it must stay off the heap too.
        db.planner.choose(table, query, limit=5)
    db.planner.choose(
        table, Query.select("items", Between("price", 1000, 1100)),
        force="pipelined_index_scan",
    )


def test_planning_performs_zero_heap_page_reads(planner_database):
    db, _rows = planner_database
    before_reads = heap_reads(db)
    before_io = db.disk.snapshot()
    plan_everything(db)
    assert heap_reads(db) == before_reads
    assert db.disk.window_since(before_io).pages_read == 0


def test_planning_after_updates_stays_off_the_heap(planner_database):
    """Inserts/deletes invalidate cached statistics; replanning must still be
    served from the incrementally-maintained sample, not a heap scan."""
    db, rows = planner_database
    table = db.table("items")
    template = dict(rows[0])
    inserted = []
    for i in range(25):
        row = dict(template)
        row["itemid"] = 90_000_000 + i
        inserted.append(table.insert_row(row, charge_io=False))
    before = heap_reads(db)
    plan_everything(db)
    assert heap_reads(db) == before

    for rid in inserted[:5]:
        table.delete_row(rid, charge_io=False)
    before = heap_reads(db)
    plan_everything(db)
    assert heap_reads(db) == before
