"""Top-k must ride the streaming layer: no extra pass, planner off-heap.

Guards for ORDER BY / top-k over the TPC-H lineitem workload (counter-based,
no wall clock):

* ``order_by(...).with_limit(k)`` executes via a bounded k-heap *inside* the
  pipeline: the plan reads exactly the pages the chosen scan reads for the
  same predicate -- no materialise-then-sort second pass over the heap;
* the k-heap agrees with the full sort (same rows, same order);
* planning ORDER BY / GROUP BY / top-k trees performs zero heap page reads,
  exactly like scan and join planning (ordering analysis and group-count
  estimation are served from the catalog and the reservoir samples);
* a free ORDER BY (the sort key is the clustered attribute, so every sweep
  path already streams in order) plans the Sort away entirely, letting the
  LIMIT terminate the scan early -- fewer pages than the full matching sweep.
"""

import pytest

from repro.bench.harness import ExperimentScale, build_tpch_database
from repro.engine.predicates import Between
from repro.engine.query import Aggregate, Query


SHIPDATE_WINDOW = (100, 130)
K = 10


@pytest.fixture(scope="module")
def topk_database():
    db, rows = build_tpch_database(ExperimentScale(0.5))
    db.create_correlation_map("lineitem", ["shipdate"], name="cm_shipdate")
    return db, rows


def base_query():
    low, high = SHIPDATE_WINDOW
    return Query.select("lineitem", Between("shipdate", low, high))


def heap_reads(db):
    return db.table("lineitem").heap.logical_page_reads


def test_topk_reads_no_more_pages_than_the_underlying_scan(topk_database):
    """The ISSUE's acceptance case: the k-heap adds zero page reads."""
    db, _rows = topk_database
    for method in ("cm_scan", "seq_scan"):
        before = heap_reads(db)
        plain = db.run_query(base_query(), force=method, cold_cache=True)
        plain_reads = heap_reads(db) - before

        before = heap_reads(db)
        topk = db.run_query(
            base_query().order_by("-extendedprice").with_limit(K),
            force=method,
            cold_cache=True,
        )
        topk_reads = heap_reads(db) - before

        assert topk.rows_matched == K
        assert topk_reads == plain_reads
        assert topk.pages_visited == plain.pages_visited
        assert topk.sort_stats == f"top-{K} heap over {plain.rows_matched} rows"


def test_topk_heap_agrees_with_full_sort(topk_database):
    db, _rows = topk_database
    ordered = base_query().order_by("-extendedprice", "orderkey")
    full = db.run_query(ordered)
    topk = db.run_query(ordered.with_limit(K))
    assert topk.rows == full.rows[:K]
    assert "sort buffered" in full.sort_stats
    assert "heap" in topk.sort_stats


def test_planning_order_by_and_group_by_stays_off_the_heap(topk_database):
    db, _rows = topk_database
    table = db.table("lineitem")
    queries = [
        base_query().order_by("extendedprice"),
        base_query().order_by("-extendedprice").with_limit(K),
        base_query().order_by("receiptdate").with_limit(K),
        Query.select(
            "lineitem", aggregate=Aggregate.sum("extendedprice")
        ).group_by("suppkey"),
    ]
    before_reads = heap_reads(db)
    before_io = db.disk.snapshot()
    for query in queries:
        db.planner.candidate_plans(table, query, limit=query.limit)
        db.planner.choose(table, query, limit=query.limit)
        db.explain(query)
    assert heap_reads(db) == before_reads
    assert db.disk.window_since(before_io).pages_read == 0


def test_free_order_by_on_the_clustered_key_terminates_early(topk_database):
    """Clustered-order sort keys skip the Sort node and keep LIMIT pushdown."""
    db, _rows = topk_database
    full = db.run_query(base_query(), force="cm_scan", cold_cache=True)
    limited = db.run_query(
        base_query().order_by("receiptdate").with_limit(K),
        force="cm_scan",
        cold_cache=True,
    )
    assert limited.sort_stats is None  # no Sort/TopK node was planned
    assert limited.rows_matched == K
    assert limited.pages_visited < full.pages_visited
    dates = [row["receiptdate"] for row in limited.rows]
    assert dates == sorted(dates)
