"""Ablation: sorted (bitmap) vs pipelined secondary index scans (Section 3).

Sorting the RIDs before visiting the heap is what turns scattered per-tuple
seeks into a single sweep; without it (the pipelined iterator model) every
matching tuple costs a random page read.  This ablation quantifies that gap
on the TPC-H shipdate workload with the correlated clustering in place.
"""

import pytest

from repro.bench.harness import build_tpch_database
from repro.bench.reporting import format_table, print_header
from repro.datasets.workloads import tpch_shipdate_query


@pytest.mark.benchmark(group="ablation")
def test_ablation_sorted_vs_pipelined(benchmark, experiment_scale):
    # Built with the *unscaled* 5.5 ms seek cost: the contrast between the
    # two scan strategies is precisely about how many seeks they pay, so the
    # seek-cost scaling used elsewhere would mask it.
    db, rows = build_tpch_database(
        experiment_scale, num_orders=8_000, seek_scale=1.0, cluster_on="receiptdate"
    )
    db.create_secondary_index("lineitem", "shipdate")

    def run():
        results = []
        for num_dates in (1, 4, 16):
            query = tpch_shipdate_query(rows, num_dates, seed=100 + num_dates)
            sorted_scan = db.query(query, force="sorted_index_scan", cold_cache=True)
            pipelined = db.query(query, force="pipelined_index_scan", cold_cache=True)
            results.append(
                {
                    "num_dates": num_dates,
                    "sorted_ms": round(sorted_scan.elapsed_ms, 2),
                    "pipelined_ms": round(pipelined.elapsed_ms, 2),
                    "sorted_seeks": sorted_scan.io.seeks,
                    "pipelined_seeks": pipelined.io.seeks,
                    "rows": sorted_scan.rows_matched,
                }
            )
            assert pipelined.rows_matched == sorted_scan.rows_matched
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation: sorted (bitmap) vs pipelined secondary index scan")
    print(format_table(results))

    for row in results:
        # Sorting the RIDs never costs more seeks; at tiny lookups the two
        # plans touch the same couple of pages and are within noise of each
        # other, so only a loose per-row bound is asserted.
        assert row["sorted_seeks"] <= row["pipelined_seeks"]
        assert row["sorted_ms"] <= row["pipelined_ms"] * 1.1 + 0.5
    largest = results[-1]
    assert largest["sorted_ms"] < largest["pipelined_ms"]
    assert largest["sorted_seeks"] < largest["pipelined_seeks"]
