"""Acceptance guard: wall-clock speedup of the batched executor.

The batch-at-a-time refactor promises >= 2.5x real-time speedup over the
row-at-a-time pipeline on the two flagship scenarios -- the full-scan
aggregate and the unindexed hash join -- and, since the columnar-kernel
pass, >= 3x on top-k and group-by (whose batch interiors used to walk rows
one dict at a time) -- while keeping the simulated statistics bit-identical
(asserted here and, structurally, in
``tests/engine/test_batched_executor.py``).

Wall-clock numbers are machine-sensitive, so each scenario gets best-of-N
timing inside the harness and up to four harness attempts here with
escalating repeat counts (longer best-of windows shrug off load spikes); a
scenario passes on its best attempt.  The measured headroom is wide --
typically ~5x on the aggregate and ~7x on group-by against their bars -- so
only a genuine regression should exhaust every attempt.  Parity failures,
by contrast, fail immediately: they are deterministic.
"""

import pytest

from repro.bench.wallclock import (
    BenchConfig,
    FLAGSHIP_SCENARIOS,
    run_benchmarks,
)

#: The acceptance threshold for the flagship scenarios.
REQUIRED_SPEEDUP = 2.5

#: Scenarios the columnar-kernel pass is asserted on, with its higher bar
#: (top-k sat at ~1.5x on the row-by-row k-heap before the columnar merge).
COLUMNAR_SCENARIOS = ("top_k", "group_by")
COLUMNAR_REQUIRED_SPEEDUP = 3.0

#: Timing repeats per attempt (re-run only while below the threshold).
ATTEMPT_REPEATS = (5, 5, 7, 9)


def _best_speedups_with_retries(
    names: tuple[str, ...], required: float
) -> dict[str, float]:
    best: dict[str, float] = {}
    for repeats in ATTEMPT_REPEATS:
        config = BenchConfig(scale=1.0, repeats=repeats)
        results = run_benchmarks(config, names=names)
        assert {result.name for result in results} == set(names)
        for result in results:
            assert result.parity_ok, f"{result.name}: simulated statistics diverged"
            best[result.name] = max(best.get(result.name, 0.0), result.speedup)
        if all(value >= required for value in best.values()):
            break
    return best


def test_flagship_wallclock_speedup():
    best = _best_speedups_with_retries(FLAGSHIP_SCENARIOS, REQUIRED_SPEEDUP)
    assert all(value >= REQUIRED_SPEEDUP for value in best.values()), (
        f"batched executor speedup below {REQUIRED_SPEEDUP}x: "
        + ", ".join(f"{name} {value:.2f}x" for name, value in sorted(best.items()))
    )


def test_columnar_wallclock_speedup():
    best = _best_speedups_with_retries(
        COLUMNAR_SCENARIOS, COLUMNAR_REQUIRED_SPEEDUP
    )
    assert all(value >= COLUMNAR_REQUIRED_SPEEDUP for value in best.values()), (
        f"columnar kernel speedup below {COLUMNAR_REQUIRED_SPEEDUP}x: "
        + ", ".join(f"{name} {value:.2f}x" for name, value in sorted(best.items()))
    )


def test_all_scenarios_keep_simulated_statistics_identical():
    """Every bench scenario passes the parity check at smoke scale."""
    results = run_benchmarks(BenchConfig.smoke())
    assert results, "no scenarios ran"
    for result in results:
        assert result.parity_ok, f"{result.name}: simulated statistics diverged"
        assert result.speedup == pytest.approx(
            result.row_seconds / result.batched_seconds
        )
