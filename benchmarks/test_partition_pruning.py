"""Partition pruning: page savings and planner purity (counter-based).

Pins the acceptance floor of the partitioned-storage layer: a partition-key
predicate over an 8-way partitioned table must read **at most 1/4** of the
pages an unpartitioned sequential scan reads (it actually reads ~1/8 -- the
floor leaves headroom for page-rounding effects at other scales), and plan
enumeration over partitioned tables -- pruning included -- must perform
zero heap page reads, exactly like the single-table planner.
"""

import pytest

from repro.engine.database import Database
from repro.engine.partition import PartitionSpec
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.query import Aggregate, Query

NUM_ROWS = 20_000
NUM_CATS = 64
PARTITIONS = 8

#: The acceptance floor: pruned scan pages / unpartitioned scan pages.
PRUNING_PAGE_RATIO_FLOOR = 0.25


def build_rows():
    rows = []
    for i in range(NUM_ROWS):
        rows.append(
            {
                "itemid": i,
                "catid": (i * 11) % NUM_CATS,
                "price": float((i * 37) % 10_000),
                "qty": i % 20,
            }
        )
    return rows


@pytest.fixture(scope="module")
def databases():
    """The same rows flat and 8-way hash-partitioned on catid."""
    rows = build_rows()
    flat = Database(buffer_pool_pages=600)
    flat.create_table("items", sample_row=rows[0], tups_per_page=50)
    flat.load("items", rows)
    part = Database(buffer_pool_pages=600)
    part.create_table(
        "items",
        sample_row=rows[0],
        tups_per_page=50,
        partition_by=PartitionSpec.by_hash("catid", PARTITIONS),
    )
    part.load("items", rows)
    return flat, part


def test_partition_key_predicate_reads_quarter_of_the_pages(databases):
    flat, part = databases
    query = Query.select("items", Equals("catid", 7), aggregate=Aggregate.count())
    flat.reset_measurements()
    base = flat.run_query(query, force="seq_scan", cold_cache=True)
    part.reset_measurements()
    pruned = part.run_query(query, cold_cache=True)
    assert pruned.value == base.value
    assert base.pages_visited > 0
    ratio = pruned.pages_visited / base.pages_visited
    assert ratio <= PRUNING_PAGE_RATIO_FLOOR, (
        f"pruned scan read {pruned.pages_visited}/{base.pages_visited} pages "
        f"(ratio {ratio:.3f} > {PRUNING_PAGE_RATIO_FLOOR})"
    )


def partition_heap_reads(db):
    table = db.table("items")
    return sum(p.heap.logical_page_reads for p in table.partitions)


PLANNING_QUERIES = [
    Query.select("items", Equals("catid", 7)),
    Query.select("items", InSet("catid", [3, 17, 41])),
    Query.select("items", Between("price", 1_000, 2_000)),
    Query.select("items", aggregate=Aggregate.count()),
    Query.select("items", Equals("catid", 7), aggregate=Aggregate.avg("price")),
]


def test_partitioned_planning_performs_zero_heap_page_reads(databases):
    _flat, part = databases
    table = part.table("items")
    before = partition_heap_reads(part)
    device_snaps = [device.snapshot() for device in table.devices]
    for query in PLANNING_QUERIES:
        part.planner.candidate_partitioned_plans(table, query)
        part.planner.choose_partitioned(table, query)
        part.planner.choose_partitioned(table, query, limit=5)
        table.prune(query.predicates)
    assert partition_heap_reads(part) == before
    for device, snap in zip(table.devices, device_snaps):
        assert device.window_since(snap).pages_read == 0
