"""Table 6 (Experiment 5): composite CMs vs single-attribute CMs vs a B+Tree.

The SDSS query restricts a sky region (ra and dec ranges) plus a surface
brightness expression.  Neither ra nor dec alone pins down the clustered
objID, but the pair does; a composite CM(ra, dec) therefore beats both
single-attribute CMs *and* the composite secondary B+Tree (which can only use
its ra prefix for the range), while being orders of magnitude smaller.
"""

import pytest

from repro.bench.reporting import format_table, print_header
from repro.core.bucketing import WidthBucketer
from repro.datasets.sdss import DEC_WINDOW, RA_WINDOW
from repro.datasets.workloads import sdss_q2_query

#: Bucket widths for the CM keys (degrees); chosen so the composite CM has a
#: few thousand keys, as the advisor recommends.
RA_BUCKET = WidthBucketer(0.5)
DEC_BUCKET = WidthBucketer(0.25)


def _query_region(rows):
    """A Q2-style region covering ~5 % of ra and ~1.5 % of dec."""
    ra_span = RA_WINDOW[1] - RA_WINDOW[0]
    dec_span = DEC_WINDOW[1] - DEC_WINDOW[0]
    ra_range = (RA_WINDOW[0] + 0.4 * ra_span, RA_WINDOW[0] + 0.45 * ra_span)
    dec_range = (DEC_WINDOW[0] + 0.30 * dec_span, DEC_WINDOW[0] + 0.315 * dec_span)
    return sdss_q2_query(ra_range, dec_range, surface_range=(15.0, 40.0))


@pytest.mark.benchmark(group="table6")
def test_table6_composite_cm(benchmark, sdss_database):
    db, rows = sdss_database
    table = db.table("photoobj")
    query = _query_region(rows)

    if "cm_ra" not in table.correlation_maps:
        db.create_correlation_map("photoobj", ["ra"], bucketers={"ra": RA_BUCKET}, name="cm_ra")
        db.create_correlation_map(
            "photoobj", ["dec"], bucketers={"dec": DEC_BUCKET}, name="cm_dec"
        )
        db.create_correlation_map(
            "photoobj",
            ["ra", "dec"],
            bucketers={"ra": RA_BUCKET, "dec": DEC_BUCKET},
            name="cm_ra_dec",
        )
        db.create_secondary_index("photoobj", ["ra", "dec"], name="btree_ra_dec")

    def run():
        results = []
        for name, force, structure in [
            ("CM(ra)", "cm_scan", table.correlation_maps["cm_ra"]),
            ("CM(dec)", "cm_scan", table.correlation_maps["cm_dec"]),
            ("CM(ra, dec)", "cm_scan", table.correlation_maps["cm_ra_dec"]),
            ("B+Tree(ra, dec)", "sorted_index_scan", table.secondary_indexes["btree_ra_dec"]),
        ]:
            if force == "cm_scan":
                # Keep only the CM under test so the planner uses it.
                others = {
                    cm_name: table.correlation_maps[cm_name]
                    for cm_name in list(table.correlation_maps)
                    if table.correlation_maps[cm_name] is not structure
                }
                for cm_name in others:
                    del table.correlation_maps[cm_name]
                result = db.query(query, force=force, cold_cache=True)
                table.correlation_maps.update(others)
            else:
                result = db.query(query, force=force, cold_cache=True)
            results.append(
                {
                    "index": name,
                    "runtime_ms": round(result.elapsed_ms, 2),
                    "pages": result.pages_visited,
                    "size_kb": round(structure.size_bytes() / 1024, 1),
                    "rows": result.rows_matched,
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table 6: single and composite CMs vs a composite B+Tree (SDSS region query)")
    print(format_table(results, columns=["index", "runtime_ms", "pages", "size_kb"]))

    by_name = {row["index"]: row for row in results}
    # All structures return the same answer.
    assert len({row["rows"] for row in results}) == 1

    composite = by_name["CM(ra, dec)"]
    ra_only = by_name["CM(ra)"]
    dec_only = by_name["CM(dec)"]
    btree = by_name["B+Tree(ra, dec)"]

    # The composite CM beats both single-attribute CMs decisively.
    assert composite["runtime_ms"] < ra_only["runtime_ms"] / 2
    assert composite["runtime_ms"] < dec_only["runtime_ms"] / 2

    # It also beats the composite secondary B+Tree, which can only use its ra
    # prefix for the two range predicates.
    assert composite["runtime_ms"] < btree["runtime_ms"]

    # And it is orders of magnitude smaller than the dense index.
    assert composite["size_kb"] < btree["size_kb"] / 20
