"""Figure 6 (Experiment 1): CM vs secondary B+Tree over widening Price ranges.

The eBay ITEMS table is clustered on CATID (strongly correlated with Price).
The query counts distinct CAT2 values over a Price range whose width grows
from $100 to $10 000.  Both the bucketed CM and the dense secondary B+Tree
exploit the correlation and stay an order of magnitude below the sequential
scan; the CM is slightly slower because it scans whole clustered buckets
(false positives) and pays the rewriting overhead, but it is three orders of
magnitude smaller.
"""

import pytest

from repro.bench.harness import ebay_price_bucketer
from repro.bench.reporting import format_series, print_header
from repro.core.cost import scan_cost
from repro.core.model import HardwareParameters
from repro.datasets.workloads import ebay_price_range_query

PRICE_RANGES = (100, 500, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000)
PRICE_LOW = 1_000.0
#: 2^12 dollars per CM bucket (chosen by the Figure 7 sweep).
CM_BUCKET_LEVEL = 12


@pytest.mark.benchmark(group="figure6")
def test_fig6_cm_vs_btree_price(benchmark, ebay_database):
    db, _rows = ebay_database
    table = db.table("items")
    if "cm_price" not in table.correlation_maps:
        db.create_correlation_map(
            "items",
            ["price"],
            bucketers={"price": ebay_price_bucketer(CM_BUCKET_LEVEL)},
            name="cm_price",
        )
    cm = table.correlation_maps["cm_price"]
    btree = next(
        index
        for index in table.secondary_indexes.values()
        if index.attributes == ("price",)
    )
    hardware = HardwareParameters.from_disk(db.disk.params)
    scan_ms = scan_cost(table.table_profile(), hardware)

    def run():
        series = {"cm_ms": [], "btree_ms": [], "cm_rows": [], "btree_rows": []}
        for price_range in PRICE_RANGES:
            query = ebay_price_range_query(PRICE_LOW, price_range)
            cm_result = db.query(query, force="cm_scan", cold_cache=True)
            bt_result = db.query(query, force="sorted_index_scan", cold_cache=True)
            series["cm_ms"].append(round(cm_result.elapsed_ms, 2))
            series["btree_ms"].append(round(bt_result.elapsed_ms, 2))
            series["cm_rows"].append(cm_result.rows_matched)
            series["btree_rows"].append(bt_result.rows_matched)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 6: CM vs secondary B+Tree over Price ranges (eBay, clustered on CATID)")
    print(
        format_series(
            {"CM [ms]": series["cm_ms"], "B+Tree [ms]": series["btree_ms"]},
            x_label="price_range",
            x_values=list(PRICE_RANGES),
        )
    )
    print(f"table scan would cost {scan_ms:.1f} ms")
    print(
        f"CM size: {cm.size_bytes() / 1024:.1f} KB, "
        f"B+Tree size: {btree.size_bytes() / 1024:.1f} KB"
    )

    # Both access methods answer identically.
    assert series["cm_rows"] == series["btree_rows"]

    for cm_ms, bt_ms in zip(series["cm_ms"], series["btree_ms"]):
        # Both exploit the correlation: an order of magnitude below the scan.
        assert cm_ms < scan_ms / 3
        assert bt_ms < scan_ms / 3
        # The CM is competitive: no better than the B+Tree but within a small
        # constant factor plus the fixed cost of scanning whole clustered
        # buckets (the paper reports a 1-4 second gap on 8-14 s runs).
        assert cm_ms >= bt_ms * 0.8
        assert cm_ms <= bt_ms * 4 + 4.0

    # The data structure itself is orders of magnitude smaller.
    assert cm.size_bytes() < btree.size_bytes() / 100
