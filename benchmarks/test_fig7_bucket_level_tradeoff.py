"""Figure 7 (Experiment 2): the bucket-level size/performance trade-off.

Sweeping the CM bucket level (each bucket holds ~2^level dollars of Price),
query runtime stays close to the secondary B+Tree until the buckets grow past
the query's own width, after which false positives blow up; CM size shrinks
monotonically with the level.  The "knee" identifies the ideal bucket size.
"""

import pytest

from repro.bench.harness import ebay_price_bucketer
from repro.bench.reporting import format_table, print_header
from repro.core.cost import CMCostInputs, cm_lookup_cost
from repro.core.model import HardwareParameters
from repro.datasets.workloads import ebay_price_range_query

BUCKET_LEVELS = (4, 6, 8, 10, 12, 14, 16, 18)
QUERY = ebay_price_range_query(1_000.0, 100.0, count_distinct="cat3")


@pytest.mark.benchmark(group="figure7")
def test_fig7_bucket_level_tradeoff(benchmark, ebay_database):
    db, _rows = ebay_database
    table = db.table("items")
    hardware = HardwareParameters.from_disk(db.disk.params)
    profile = table.table_profile()
    btree_result = db.query(QUERY, force="sorted_index_scan", cold_cache=True)

    def run():
        results = []
        for level in BUCKET_LEVELS:
            name = f"cm_price_L{level}"
            cm = db.create_correlation_map(
                "items",
                ["price"],
                bucketers={"price": ebay_price_bucketer(level)},
                name=name,
            )
            result = db.query(QUERY, force="cm_scan", cold_cache=True)
            model_ms = cm_lookup_cost(
                1,
                CMCostInputs(
                    buckets_per_lookup=max(1.0, cm.measured_c_per_u()),
                    pages_per_bucket=float(table.pages_per_bucket or 1),
                    cm_pages=cm.size_pages(),
                ),
                profile,
                hardware,
            )
            results.append(
                {
                    "bucket_level": level,
                    "cm_runtime_ms": round(result.elapsed_ms, 2),
                    "cost_model_ms": round(model_ms, 2),
                    "btree_runtime_ms": round(btree_result.elapsed_ms, 2),
                    "cm_size_kb": round(cm.size_bytes() / 1024, 1),
                    "rows": result.rows_matched,
                }
            )
            table.drop_correlation_map(name)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 7: query runtime and CM size as a function of the bucket level")
    print(
        format_table(
            results,
            columns=[
                "bucket_level", "cm_runtime_ms", "cost_model_ms",
                "btree_runtime_ms", "cm_size_kb",
            ],
        )
    )

    by_level = {row["bucket_level"]: row for row in results}
    # All bucketings return the same answer.
    assert len({row["rows"] for row in results}) == 1

    # CM size decreases monotonically as buckets widen.
    sizes = [row["cm_size_kb"] for row in results]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] < sizes[0] / 5

    # Runtime is flat (close to the B+Tree) for fine bucketings ...
    fine = by_level[BUCKET_LEVELS[0]]["cm_runtime_ms"]
    assert by_level[8]["cm_runtime_ms"] <= 2.0 * fine + 0.5
    # ... and grows rapidly once buckets are much wider than the query range.
    assert by_level[18]["cm_runtime_ms"] > 2.0 * fine
    assert by_level[18]["cm_runtime_ms"] > by_level[10]["cm_runtime_ms"]
