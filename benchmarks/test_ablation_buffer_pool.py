"""Ablation: buffer-pool size sensitivity of index maintenance (Section 5).

The maintenance gap between B+Trees and CMs (Figures 8 and 9) exists because
dirty B+Tree leaf pages overflow the buffer pool.  This ablation varies the
pool size for a fixed 5-B+Tree insert workload: a pool large enough to hold
every index page makes B+Trees cheap again, while CM maintenance is
insensitive to the pool size because CMs do not live in the pool at all.
"""

import pytest

from repro.bench.harness import ExperimentScale, build_ebay_database
from repro.bench.reporting import format_table, print_header
from repro.datasets.workloads import ebay_mixed_workload

POOL_SIZES = (150, 800, 6_000)
#: High-cardinality composite keys: every insert dirties an essentially
#: random leaf page of every index, which is what pressures the buffer pool.
ATTRS = (("cat2", "price"), ("cat3", "price"), ("cat4", "price"),
         ("cat5", "price"), ("cat6", "price"))
INSERTS = 2_000


def _build(kind, pool_pages, scale):
    db, rows = build_ebay_database(
        scale,
        num_categories=120,
        items_per_category=(80, 120),
        buffer_pool_pages=pool_pages,
        seed=31,
    )
    for attrs in ATTRS:
        if kind == "btree":
            db.create_secondary_index("items", list(attrs))
        else:
            db.create_correlation_map("items", list(attrs))
    db.drop_caches()
    db.reset_measurements()
    return db, rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_buffer_pool_sensitivity(benchmark, experiment_scale):
    def run():
        results = []
        for pool_pages in POOL_SIZES:
            row = {"buffer_pool_pages": pool_pages}
            for kind in ("btree", "cm"):
                db, rows = _build(kind, pool_pages, experiment_scale)
                batch = ebay_mixed_workload(
                    rows, num_rounds=1, inserts_per_round=INSERTS,
                    selects_per_round=0, seed=5,
                )[0][1]
                outcome = db.insert("items", batch, batch_size=500)
                row[f"{kind}_ms"] = round(outcome.elapsed_ms, 1)
                row[f"{kind}_dirty_evictions"] = outcome.dirty_evictions
            results.append(row)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation: buffer-pool size vs maintenance cost (5 B+Trees vs 5 CMs)")
    print(format_table(results))

    by_pool = {row["buffer_pool_pages"]: row for row in results}
    small, large = by_pool[POOL_SIZES[0]], by_pool[POOL_SIZES[-1]]

    # B+Tree maintenance is highly sensitive to the pool size: a pool too
    # small for the working set of leaf pages thrashes (dirty evictions),
    # while a large pool only pays the one-time cost of faulting pages in.
    assert small["btree_ms"] > 5 * large["btree_ms"]
    assert small["btree_dirty_evictions"] > large["btree_dirty_evictions"]
    # ... CM maintenance is not sensitive at all (CMs bypass the pool).
    assert small["cm_ms"] <= 1.3 * large["cm_ms"] + 1.0
    # With a small pool, CMs win dramatically (the Figure 8/9 regime).
    assert small["cm_ms"] < small["btree_ms"] / 10
    # Even with an over-provisioned pool, CM maintenance is no slower.
    assert large["cm_ms"] <= large["btree_ms"] * 1.1
