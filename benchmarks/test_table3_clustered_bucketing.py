"""Table 3: clustered-attribute bucketing granularity vs I/O cost.

The paper buckets the SDSS clustered attribute (objID) at 1 to 40 disk pages
per bucket and measures the pages scanned and the I/O cost of the SX6 query
(a lookup on two fieldID values through a CM).  Wider clustered buckets add
only sequential I/O, so performance degrades slowly: ~10 pages per bucket
costs only about a millisecond more than 1 page per bucket in the paper.
"""

import pytest

from repro.bench.harness import build_sdss_database
from repro.bench.reporting import format_table, print_header
from repro.datasets.workloads import sdss_sx6_query

BUCKET_SIZES = (1, 5, 10, 15, 20, 40)


@pytest.mark.benchmark(group="table3")
def test_table3_clustered_bucketing(benchmark, experiment_scale):
    db, rows = build_sdss_database(experiment_scale, pages_per_bucket=1)
    # Two mid-sweep fields, as in the SX6 lookup.
    field_values = sorted({row["fieldid"] for row in rows})
    chosen = [field_values[len(field_values) // 3], field_values[2 * len(field_values) // 3]]
    query = sdss_sx6_query(chosen)

    def run():
        results = []
        for pages_per_bucket in BUCKET_SIZES:
            db.cluster("photoobj", "objid", pages_per_bucket=pages_per_bucket)
            if "cm_fieldid" in db.table("photoobj").correlation_maps:
                db.table("photoobj").drop_correlation_map("cm_fieldid")
            db.create_correlation_map("photoobj", ["fieldid"], name="cm_fieldid")
            result = db.query(query, force="cm_scan", cold_cache=True)
            results.append(
                {
                    "bucket_size_pages": pages_per_bucket,
                    "pages_scanned": result.pages_visited,
                    "io_cost_ms": round(result.elapsed_ms, 2),
                    "rows_matched": result.rows_matched,
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table 3: clustered-attribute bucket size vs pages scanned and I/O cost")
    print(format_table(results))

    by_size = {row["bucket_size_pages"]: row for row in results}
    # Every bucketing returns the same answer.
    assert len({row["rows_matched"] for row in results}) == 1

    # Pages scanned grow with the bucket size across the sweep (individual
    # steps may wobble because bucket boundaries snap to clustered values).
    assert by_size[10]["pages_scanned"] >= by_size[1]["pages_scanned"]
    assert by_size[40]["pages_scanned"] >= by_size[10]["pages_scanned"]
    assert by_size[40]["pages_scanned"] > by_size[1]["pages_scanned"]

    # ... but the cost only creeps up because the extra I/O is sequential:
    # ~10 pages per bucket stays close to the 1-page-per-bucket cost, while
    # 40 pages per bucket is measurably slower.
    assert by_size[10]["io_cost_ms"] <= 2.5 * by_size[1]["io_cost_ms"]
    assert by_size[40]["io_cost_ms"] > by_size[1]["io_cost_ms"]
