"""Table 4: the bucketings the CM Advisor considers for the SX6 attributes.

For the SX6 query the advisor enumerates candidate bucket widths for each
predicated attribute: few-valued attributes (mode, type) are offered
unbucketed, the many-valued magnitude psfMag_g gets a wide range of widths
(2^2 ... 2^16 in the paper), and fieldID a narrow one.
"""

import pytest

from repro.bench.reporting import format_table, print_header
from repro.core.advisor import CMAdvisor

SX6_ATTRIBUTES = ("mode", "type", "psfmag_g", "fieldid")


@pytest.mark.benchmark(group="table4")
def test_table4_bucketing_candidates(benchmark, sdss_rows):
    advisor = CMAdvisor(sdss_rows, "objid", sample_size=20_000, seed=4)

    def run():
        return advisor.bucketing_report(SX6_ATTRIBUTES)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table 4: unclustered-attribute bucketings considered for SX6")
    print(
        format_table(
            [
                {
                    "column": row["column"],
                    "cardinality": row["cardinality"],
                    "bucket_widths": row["bucket_widths"],
                }
                for row in report
            ]
        )
    )

    by_column = {row["column"]: row for row in report}
    # mode and type are few-valued: no bucketing is proposed.
    assert by_column["mode"]["cardinality"] <= 3
    assert not by_column["mode"]["bucket_levels"]
    assert by_column["type"]["cardinality"] <= 5
    assert len(by_column["type"]["bucket_levels"]) <= 1

    # psfmag_g is many-valued: a wide range of exponentially growing widths.
    assert by_column["psfmag_g"]["cardinality"] > 1_000
    psf_levels = by_column["psfmag_g"]["bucket_levels"]
    assert min(psf_levels) == 1
    assert max(psf_levels) >= 8

    # fieldid has moderate cardinality: a handful of widths only.
    field_levels = by_column["fieldid"]["bucket_levels"]
    assert field_levels
    assert max(field_levels) <= 10
    assert len(field_levels) < len(psf_levels)
