"""Figure 3: B+Tree lookups with a correlated vs an uncorrelated clustering.

The paper's query::

    SELECT AVG(extendedprice * discount) FROM lineitem
    WHERE shipdate IN [1 ... 100 random shipdates]

is run against lineitem clustered on receiptdate (correlated with shipdate)
and clustered on the primary key (uncorrelated), with a secondary B+Tree on
shipdate in both cases.  With the correlated clustering the sorted index scan
stays far below the table-scan cost even at 100 ship dates; without it the
cost reaches the scan cost after only a few ship dates.  The analytical cost
model tracks the correlated curve.
"""

import pytest

from repro.bench.reporting import format_series, print_header
from repro.core.cost import scan_cost, sorted_lookup_cost
from repro.core.model import HardwareParameters
from repro.datasets.workloads import tpch_shipdate_query

NUM_DATES = (1, 2, 4, 8, 16, 32, 64, 100)


@pytest.mark.benchmark(group="figure3")
def test_fig3_shipdate_lookups(benchmark, tpch_correlated, tpch_uncorrelated):
    corr_db, rows = tpch_correlated
    uncorr_db, _ = tpch_uncorrelated
    hardware = HardwareParameters.from_disk(corr_db.disk.params)

    corr_table = corr_db.table("lineitem")
    profile = corr_table.table_profile()
    correlation = corr_table.correlation_profile("shipdate")
    table_scan_ms = scan_cost(profile, hardware)

    def run():
        series = {"correlated": [], "uncorrelated": [], "table_scan": [], "cost_model": []}
        for n in NUM_DATES:
            query = tpch_shipdate_query(rows, n, seed=n)
            correlated = corr_db.query(query, force="sorted_index_scan", cold_cache=True)
            uncorrelated = uncorr_db.query(query, force="sorted_index_scan", cold_cache=True)
            series["correlated"].append(round(correlated.elapsed_ms, 1))
            series["uncorrelated"].append(round(uncorrelated.elapsed_ms, 1))
            series["table_scan"].append(round(table_scan_ms, 1))
            series["cost_model"].append(
                round(sorted_lookup_cost(n, correlation, profile, hardware), 1)
            )
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 3: shipdate IN (...) lookups, correlated vs uncorrelated clustering")
    print(format_series(series, x_label="num_shipdates", x_values=list(NUM_DATES)))

    correlated = series["correlated"]
    uncorrelated = series["uncorrelated"]
    model = series["cost_model"]

    # The uncorrelated clustering degenerates to (roughly) a full scan within
    # a handful of ship dates.
    idx_8 = NUM_DATES.index(8)
    assert uncorrelated[idx_8] >= 0.6 * table_scan_ms

    # The correlated clustering stays well below both the uncorrelated curve
    # and the scan cost while the IN-list covers a few percent of the date
    # domain (the paper's regime; at this scale 32+ dates already cover ~10 %
    # or more of the shrunken date domain, so the curves converge by design).
    idx_16 = NUM_DATES.index(16)
    assert correlated[idx_16] < 0.6 * table_scan_ms
    assert correlated[idx_16] < 0.7 * uncorrelated[idx_16]
    idx_32 = NUM_DATES.index(32)
    assert correlated[idx_32] < table_scan_ms
    for small_n in (0, 1, 2, 3):
        assert correlated[small_n] < uncorrelated[small_n]
    idx_100 = NUM_DATES.index(100)
    assert correlated[idx_100] <= uncorrelated[idx_100] * 1.05

    # The cost model tracks the measured correlated curve (same order of
    # magnitude across the sweep; the paper shows a close visual match).
    for measured, predicted in zip(correlated, model):
        assert predicted <= 3.5 * measured + 1.0
        assert measured <= 3.5 * predicted + 1.0
