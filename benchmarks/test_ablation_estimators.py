"""Ablation: cardinality-estimator choices behind the CM Advisor (Section 4.2).

The advisor derives ``c_per_u`` from distinct-value counts.  This ablation
compares the exact counts against Gibbons' Distinct Sampling (single
attributes, full scan) and the sample-based Adaptive Estimator / GEE
(composite keys), on the attributes the advisor actually uses.
"""

import pytest

from repro.bench.reporting import format_table, print_header
from repro.core.composite import CompositeKeySpec
from repro.sampling.adaptive import adaptive_estimate, gee_estimate
from repro.sampling.distinct import distinct_sample_estimate
from repro.sampling.reservoir import ReservoirSampler

ATTRIBUTES = ("fieldid", "psfmag_g", "camcol")
COMPOSITES = (("ra", "dec"), ("fieldid", "type"))
SAMPLE_SIZE = 4_000


@pytest.mark.benchmark(group="ablation")
def test_ablation_estimator_accuracy(benchmark, sdss_rows):
    def run():
        results = []
        for attribute in ATTRIBUTES:
            values = [row[attribute] for row in sdss_rows]
            exact = len(set(values))
            ds = distinct_sample_estimate(values, sample_size=1024, seed=1)
            sample = ReservoirSampler.from_iterable(values, SAMPLE_SIZE, seed=2).sample
            ae = adaptive_estimate(sample, len(values))
            gee = gee_estimate(sample, len(values))
            results.append(
                {
                    "key": attribute,
                    "exact": exact,
                    "distinct_sampling": round(ds),
                    "adaptive_estimator": round(ae),
                    "gee": round(gee),
                }
            )
        for attributes in COMPOSITES:
            spec = CompositeKeySpec.build(attributes)
            keys = [spec.key_of(row) for row in sdss_rows]
            exact = len(set(keys))
            sample = ReservoirSampler.from_iterable(keys, SAMPLE_SIZE, seed=3).sample
            ae = adaptive_estimate(sample, len(keys))
            gee = gee_estimate(sample, len(keys))
            results.append(
                {
                    "key": "(" + ", ".join(attributes) + ")",
                    "exact": exact,
                    "distinct_sampling": "",
                    "adaptive_estimator": round(ae),
                    "gee": round(gee),
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation: cardinality estimators used by the CM Advisor")
    print(format_table(results))

    for row in results:
        exact = row["exact"]
        if row["distinct_sampling"] != "":
            # Distinct Sampling pays a full scan and is tight.
            assert abs(row["distinct_sampling"] - exact) <= 0.35 * exact
        # The sample-based estimators are coarser but stay within a small
        # factor -- enough to rank candidate CM designs.
        assert row["adaptive_estimator"] <= 4 * exact
        assert exact <= 8 * row["adaptive_estimator"]
