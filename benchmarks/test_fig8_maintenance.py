"""Figure 8 (Experiment 3): maintenance cost of CMs vs secondary B+Trees.

Batched inserts are applied to the eBay ITEMS table while 0..10 secondary
structures exist.  Each additional B+Tree dirties more leaf pages than the
buffer pool can hold, so insert time degrades steeply with the number of
B+Trees; CMs are small enough to stay in memory, so their maintenance cost
stays essentially flat.  The paper reports ~900 inserted tuples/s with 10 CMs
vs ~29/s with 10 B+Trees (a ~30x gap).
"""

import pytest

from repro.bench.harness import ExperimentScale, build_ebay_database, ebay_price_bucketer
from repro.bench.reporting import format_table, print_header
from repro.datasets.workloads import ebay_mixed_workload

INDEX_COUNTS = (0, 2, 5, 8, 10)
#: Attributes used for the secondary structures, in creation order.
STRUCTURE_ATTRS = (
    "price", "itemid", "cat1", "cat2", "cat3", "cat4", "cat5", "cat6",
    ("cat2", "cat3"), ("cat4", "cat5"),
)
INSERT_ROWS = 4_000
BATCH_SIZE = 500


def _build(kind: str, num_structures: int, scale: ExperimentScale):
    """A fresh ITEMS database with ``num_structures`` B+Trees or CMs."""
    db, rows = build_ebay_database(
        scale,
        num_categories=150,
        items_per_category=(80, 120),
        buffer_pool_pages=400,
        seed=17,
    )
    for attrs in STRUCTURE_ATTRS[:num_structures]:
        attr_list = [attrs] if isinstance(attrs, str) else list(attrs)
        if kind == "btree":
            db.create_secondary_index("items", attr_list)
        else:
            bucketers = {"price": ebay_price_bucketer(12)} if "price" in attr_list else None
            db.create_correlation_map("items", attr_list, bucketers=bucketers)
    db.drop_caches()
    db.reset_measurements()
    return db, rows


def _insert_batch(rows):
    steps = ebay_mixed_workload(
        rows, num_rounds=1, inserts_per_round=INSERT_ROWS, selects_per_round=0, seed=3
    )
    return steps[0][1]


@pytest.mark.benchmark(group="figure8")
def test_fig8_maintenance_cost(benchmark, experiment_scale):
    def run():
        results = []
        for count in INDEX_COUNTS:
            row = {"num_structures": count}
            for kind in ("btree", "cm"):
                db, rows = _build(kind, count, experiment_scale)
                batch = _insert_batch(rows)
                outcome = db.insert("items", batch, batch_size=BATCH_SIZE)
                row[f"{kind}_minutes"] = round(outcome.elapsed_ms / 60_000, 3)
                row[f"{kind}_rows_per_s"] = round(outcome.rows_per_second, 1)
            results.append(row)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 8: cost of batched insertions vs number of secondary structures")
    print(
        format_table(
            results,
            columns=[
                "num_structures", "btree_minutes", "cm_minutes",
                "btree_rows_per_s", "cm_rows_per_s",
            ],
        )
    )

    by_count = {row["num_structures"]: row for row in results}

    # With no secondary structures the two systems are identical.
    assert by_count[0]["btree_minutes"] == pytest.approx(by_count[0]["cm_minutes"], rel=0.05)

    # B+Tree maintenance degrades steeply with the number of indexes.
    btree_minutes = [by_count[c]["btree_minutes"] for c in INDEX_COUNTS]
    assert all(a <= b * 1.05 for a, b in zip(btree_minutes, btree_minutes[1:]))
    assert by_count[10]["btree_minutes"] > 3 * by_count[0]["btree_minutes"]

    # CM maintenance stays nearly flat.
    assert by_count[10]["cm_minutes"] < 2.0 * max(by_count[0]["cm_minutes"], 1e-6)

    # With 10 structures the CMs sustain a far higher insert rate (the paper
    # reports ~30x; the scaled-down reproduction must show at least ~3x).
    assert by_count[10]["cm_rows_per_s"] > 3 * by_count[10]["btree_rows_per_s"]
