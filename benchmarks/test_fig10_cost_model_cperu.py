"""Figure 10 (Experiment 4): the cost model tracks measured CM runtimes.

The query ``SELECT AVG(Price) FROM ITEMS WHERE CAT5 = X`` is run through a CM
on CAT5 for category values whose ``c_per_u`` (number of co-occurring CATID
values) spans a wide range.  Measured runtime grows with ``c_per_u`` and the
analytical model, fed only the per-value statistics, tracks the measurements.
"""

import pytest

from repro.bench.reporting import format_table, print_header
from repro.core.cost import CMCostInputs, cm_lookup_cost
from repro.core.model import HardwareParameters
from repro.datasets.workloads import ebay_cat_values_by_c_per_u, ebay_category_query

#: Target c_per_u values.  The paper picks CAT5 values whose c_per_u ranges
#: from 4 to 145; the scaled-down hierarchy (400 instead of 24 000
#: categories) provides the same spread across its rollup levels, so values
#: are drawn from CAT2..CAT5 rather than CAT5 alone.
C_PER_U_TARGETS = (2, 4, 8, 16, 32, 64)
CATEGORY_LEVELS = ("cat5", "cat4", "cat3", "cat2")


def _values_across_levels(rows):
    """(attribute, value, c_per_u) candidates closest to each target."""
    candidates = []
    for attribute in CATEGORY_LEVELS:
        populated = [row for row in rows if row[attribute]]
        for value, c_per_u in ebay_cat_values_by_c_per_u(
            populated, attribute, targets=C_PER_U_TARGETS
        ):
            candidates.append((attribute, value, c_per_u))
    chosen = []
    used = set()
    for target in C_PER_U_TARGETS:
        best = min(
            (c for c in candidates if c[1] not in used),
            key=lambda c: abs(c[2] - target),
        )
        chosen.append(best)
        used.add(best[1])
    return sorted(chosen, key=lambda c: c[2])


@pytest.mark.benchmark(group="figure10")
def test_fig10_cost_model_tracks_c_per_u(benchmark, ebay_database):
    db, rows = ebay_database
    table = db.table("items")
    for attribute in CATEGORY_LEVELS:
        if f"cm_{attribute}" not in table.correlation_maps:
            db.create_correlation_map("items", [attribute], name=f"cm_{attribute}")
    hardware = HardwareParameters.from_disk(db.disk.params)
    profile = table.table_profile()
    chosen = _values_across_levels(rows)

    def run():
        results = []
        for attribute, value, c_per_u in chosen:
            cm = table.correlation_maps[f"cm_{attribute}"]
            query = ebay_category_query(attribute, value)
            measured = db.query(query, force="cm_scan", cold_cache=True)
            targets = cm.lookup({attribute: value})
            model_ms = cm_lookup_cost(
                1,
                CMCostInputs(
                    buckets_per_lookup=max(1, len(targets)),
                    pages_per_bucket=float(table.pages_per_bucket or 1),
                    cm_pages=cm.size_pages(),
                ),
                profile,
                hardware,
            )
            results.append(
                {
                    "cat_value": f"{attribute}={str(value)[:24]}",
                    "c_per_u": c_per_u,
                    "measured_ms": round(measured.elapsed_ms, 2),
                    "cost_model_ms": round(model_ms, 2),
                    "rows": measured.rows_matched,
                }
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Figure 10: CM runtime and cost model vs c_per_u (category lookups)")
    print(format_table(results, columns=["cat_value", "c_per_u", "measured_ms", "cost_model_ms"]))

    # The chosen values span a real range of correlation strengths.
    c_per_us = [row["c_per_u"] for row in results]
    assert c_per_us == sorted(c_per_us)
    assert c_per_us[-1] >= 4 * c_per_us[0]

    # Measured runtime grows with c_per_u (weak monotonicity: each step may
    # wobble slightly but the extremes differ clearly).
    measured = [row["measured_ms"] for row in results]
    assert measured[-1] > 1.5 * measured[0]
    assert all(b >= a * 0.7 for a, b in zip(measured, measured[1:]))

    # The analytical model tracks the measurements within a small factor.
    for row in results:
        assert row["cost_model_ms"] <= 3.0 * row["measured_ms"] + 0.5
        assert row["measured_ms"] <= 3.0 * row["cost_model_ms"] + 0.5
