"""Page-parity guard: the batched executor on the Fig. 1 access patterns.

Figure 1 is about *which heap pages* an access method touches -- correlated
lookups sweep a few sequential runs, uncorrelated ones scatter across the
file.  The batched executor must not change a single one of those numbers:
page reads, sequential/random classification, lookups and simulated elapsed
time have to be bit-identical to the row-at-a-time pipeline on exactly
these scenarios (the correlated and uncorrelated shipdate/suppkey lookups,
under every applicable access method).  This is the structural invariant CI
smoke-checks alongside the planner's zero-heap-read guarantee.
"""

import random

import pytest

from repro.engine.executor import DEFAULT_BATCH_SIZE
from repro.engine.predicates import InSet
from repro.engine.query import Query


def _pick_values(rows, attribute, count, seed):
    rng = random.Random(seed)
    return rng.sample(sorted({row[attribute] for row in rows}), count)


def _run_both(db, query, force):
    """Row-at-a-time vs batched execution of one lookup, head reset between."""
    original = db.batch_size
    try:
        db.batch_size = None
        db.reset_measurements()
        row_result = db.run_query(query, force=force, cold_cache=True)
        db.batch_size = DEFAULT_BATCH_SIZE
        db.reset_measurements()
        batched_result = db.run_query(query, force=force, cold_cache=True)
    finally:
        db.batch_size = original
    return row_result, batched_result


@pytest.mark.parametrize("attribute", ["shipdate", "suppkey"])
@pytest.mark.parametrize(
    "layout", ["tpch_correlated", "tpch_uncorrelated"]
)
@pytest.mark.parametrize(
    "force", ["seq_scan", "sorted_index_scan", "pipelined_index_scan"]
)
def test_fig1_lookup_page_parity(request, layout, attribute, force):
    """Both executors touch identical pages on the Fig. 1 lookup patterns."""
    db, rows = request.getfixturevalue(layout)
    values = _pick_values(rows, attribute, 3, seed=1 if attribute == "shipdate" else 2)
    query = Query.select("lineitem", InSet(attribute, values))
    row_result, batched_result = _run_both(db, query, force)

    assert row_result.rows_matched > 0
    assert batched_result.rows_matched == row_result.rows_matched
    assert batched_result.rows == row_result.rows
    assert batched_result.pages_visited == row_result.pages_visited
    assert batched_result.rows_examined == row_result.rows_examined
    assert batched_result.io == row_result.io  # incl. sequential/random split
    assert batched_result.elapsed_ms == pytest.approx(
        row_result.elapsed_ms, abs=1e-9
    )


def test_fig1_cm_lookup_page_parity(experiment_scale):
    """The CM-guided scan keeps page parity too (the paper's central plan).

    Builds its own database: adding a correlation map to the shared
    session-scoped fixture would change which plans later benchmarks get.
    """
    from repro.bench.harness import build_tpch_database

    db, rows = build_tpch_database(experiment_scale, cluster_on="receiptdate")
    db.create_correlation_map("lineitem", ["shipdate"], name="cm_shipdate")
    values = _pick_values(rows, "shipdate", 3, seed=1)
    query = Query.select("lineitem", InSet("shipdate", values))
    row_result, batched_result = _run_both(db, query, "cm_scan")
    assert row_result.rows_matched > 0
    assert batched_result.rows == row_result.rows
    assert batched_result.pages_visited == row_result.pages_visited
    assert batched_result.io == row_result.io
    assert batched_result.rewritten_sql == row_result.rewritten_sql
