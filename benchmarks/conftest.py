"""Shared fixtures for the benchmark suite.

Each fixture builds one of the paper's experimental databases at a laptop
scale (see ``repro.bench.harness``).  Building is done once per session and
shared across the benchmarks that need it; benchmarks that must mutate their
database (maintenance experiments) build their own copies.
"""

import pytest

from repro.bench.harness import (
    ExperimentScale,
    build_ebay_database,
    build_sdss_database,
    build_sdss_rows,
    build_tpch_database,
)


@pytest.fixture(scope="session")
def experiment_scale():
    return ExperimentScale.from_environment()


@pytest.fixture(scope="session")
def tpch_correlated(experiment_scale):
    """lineitem clustered on receiptdate (correlated with shipdate)."""
    db, rows = build_tpch_database(experiment_scale, cluster_on="receiptdate")
    db.create_secondary_index("lineitem", "shipdate")
    db.create_secondary_index("lineitem", "suppkey", name="lineitem__idx_suppkey")
    return db, rows


@pytest.fixture(scope="session")
def tpch_uncorrelated(experiment_scale):
    """lineitem clustered on the primary key (uncorrelated with shipdate)."""
    db, rows = build_tpch_database(experiment_scale, cluster_on="orderkey")
    db.create_secondary_index("lineitem", "shipdate")
    db.create_secondary_index("lineitem", "suppkey", name="lineitem__idx_suppkey")
    return db, rows


@pytest.fixture(scope="session")
def sdss_rows(experiment_scale):
    """Synthetic PhotoObj rows used by the Figure 2 sweep and the advisor."""
    return build_sdss_rows(experiment_scale)


@pytest.fixture(scope="session")
def sdss_database(experiment_scale):
    """PhotoObj-style table clustered on objID (Tables 3, 5, 6, Experiment 5)."""
    return build_sdss_database(experiment_scale)


@pytest.fixture(scope="session")
def ebay_database(experiment_scale):
    """ITEMS clustered on CATID with a Price B+Tree (Experiments 1, 2, 4)."""
    db, rows = build_ebay_database(experiment_scale)
    db.create_secondary_index("items", "price")
    return db, rows
