"""The pipelined join must plan off-heap and stream under LIMIT.

Three guards for the lineitem-orders join workload (counter-based, no wall
clock):

* join *planning* -- order enumeration, inner-strategy costing, join
  cardinality estimation -- performs zero heap page reads, exactly like
  single-table planning (the statistics come from reservoir samples and the
  memory-resident CMs);
* the paper-shaped query (predicate on the correlated attribute ``shipdate``,
  equi-join to orders on ``orderkey``) picks an index-nested-loop plan, and
  under a LIMIT the pipeline stops pulling outer rows instead of exhausting
  the outer scan;
* the index-nested-loop plan beats the forced nested-loop baseline in
  simulated time, and the CM-guided inner path (orders clustered by
  ``orderdate``, CM on the correlated ``orderkey``) is selected when the
  clustered index no longer covers the join key.
"""

import pytest

from repro.bench.harness import ExperimentScale, build_tpch_join_database
from repro.engine.predicates import Between
from repro.engine.query import Query


SHIPDATE_WINDOW = (100, 106)


def join_query(limit=None):
    low, high = SHIPDATE_WINDOW
    return Query.select("lineitem", Between("shipdate", low, high), limit=limit).join(
        "orders", on="orderkey"
    )


@pytest.fixture(scope="module")
def join_database():
    db, lineitem_rows, orders_rows = build_tpch_join_database(ExperimentScale(0.5))
    return db, lineitem_rows, orders_rows


def total_heap_reads(db):
    return sum(table.heap.logical_page_reads for table in db.tables.values())


def test_join_planning_performs_zero_heap_page_reads(join_database):
    db, _lineitem, _orders = join_database
    query = join_query()
    before_reads = total_heap_reads(db)
    before_io = db.disk.snapshot()
    db.planner.candidate_join_plans(db.tables, query)
    db.planner.choose_join(db.tables, query)
    db.planner.choose_join(db.tables, query, force_join="nested_loop_join")
    db.planner.choose_join(db.tables, query, limit=10)
    db.explain(query)
    assert total_heap_reads(db) == before_reads
    assert db.disk.window_since(before_io).pages_read == 0


def test_correlated_predicate_join_picks_index_nested_loop(join_database):
    db, lineitem_rows, orders_rows = join_database
    result = db.run_query(join_query(), cold_cache=True)
    assert result.access_method == "index_nested_loop_join"
    # The merged rows agree with a reference in-memory hash join.
    low, high = SHIPDATE_WINDOW
    orders_by_key = {row["orderkey"]: row for row in orders_rows}
    expected = sum(1 for row in lineitem_rows if low <= row["shipdate"] <= high)
    assert result.rows_matched == expected
    sample = result.rows[0]
    assert sample["orderdate"] == orders_by_key[sample["orderkey"]]["orderdate"]
    # The CM-driven outer path's rewritten SQL surfaces through the join.
    assert result.rewritten_sql is not None


def test_join_limit_streams_without_exhausting_the_outer_scan(join_database):
    db, _lineitem, _orders = join_database
    lineitem = db.table("lineitem")

    # Unforced: LIMIT-aware selection may trade the CM driver for a
    # limit-terminated scan, but either way the outer sweep must stop early.
    before = lineitem.heap.logical_page_reads
    result = db.run_query(join_query(limit=10), cold_cache=True)
    outer_pages_read = lineitem.heap.logical_page_reads - before
    assert result.rows_matched == 10
    assert outer_pages_read < lineitem.num_pages
    assert result.rows_examined < lineitem.num_rows
    # The shared counters cover both inputs: at least one probe per emitted
    # row plus the outer pages swept.
    assert result.pages_visited >= outer_pages_read

    # Forced onto the CM-driven index-nested-loop pipeline, the outer path
    # reads only the handful of bucket pages the 10 rows need.
    before = lineitem.heap.logical_page_reads
    result = db.run_query(
        join_query(limit=10),
        force="cm_scan",
        force_join="index_nested_loop_join",
        cold_cache=True,
    )
    outer_pages_read = lineitem.heap.logical_page_reads - before
    assert result.rows_matched == 10
    assert outer_pages_read < lineitem.num_pages // 10


def test_index_nested_loop_beats_nested_loop_baseline(join_database):
    db, _lineitem, _orders = join_database
    inl = db.run_query(join_query(), force_join="index_nested_loop_join", cold_cache=True)
    nl = db.run_query(join_query(), force_join="nested_loop_join", cold_cache=True)
    assert inl.rows_matched == nl.rows_matched
    assert inl.access_method == "index_nested_loop_join"
    assert nl.access_method == "nested_loop_join"
    assert inl.elapsed_ms < nl.elapsed_ms / 3
    assert inl.pages_visited < nl.pages_visited


def test_cm_guided_inner_path_when_join_key_correlates_with_clustering():
    """Orders clustered by orderdate: the CM on orderkey guides the probes."""
    db, lineitem_rows, _orders = build_tpch_join_database(
        ExperimentScale(0.5), cluster_orders_on="orderdate"
    )
    query = join_query()
    best = db.planner.choose_join(db.tables, query)
    assert best.method == "index_nested_loop_join"
    assert "cm_orderkey" in best.structure
    result = db.run_query(query, cold_cache=True)
    low, high = SHIPDATE_WINDOW
    expected = sum(1 for row in lineitem_rows if low <= row["shipdate"] <= high)
    assert result.rows_matched == expected
