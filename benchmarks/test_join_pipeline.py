"""The pipelined join must plan off-heap, stream under LIMIT, and stay linear.

Guards for the lineitem-orders join workload (counter-based, no wall clock):

* join *planning* -- order enumeration, inner-strategy costing (including
  the hash and sort-merge candidates), join cardinality estimation --
  performs zero heap page reads, exactly like single-table planning (the
  statistics come from reservoir samples and the memory-resident CMs);
* the paper-shaped query (predicate on the correlated attribute ``shipdate``,
  equi-join to orders on ``orderkey``) streams the full result through a
  hash join in O(N + M) pages, and under a LIMIT flips back to the
  index-nested-loop pipeline (streaming probes beat the upfront hash build
  for a handful of rows) without exhausting the outer scan;
* with an *unindexed* inner -- the case that used to fall back to the
  quadratic nested-loop rescan -- the hash join reads O(N + M) heap pages
  where the forced nested-loop baseline reads O(N * M);
* the CM-guided inner path (orders clustered by ``orderdate``, CM on the
  correlated ``orderkey``) is still selected for probe-style plans when the
  clustered index no longer covers the join key.
"""

import pytest

from repro.bench.harness import ExperimentScale, build_tpch_join_database
from repro.engine.predicates import Between
from repro.engine.query import Query


SHIPDATE_WINDOW = (100, 106)


def join_query(limit=None):
    low, high = SHIPDATE_WINDOW
    return Query.select("lineitem", Between("shipdate", low, high), limit=limit).join(
        "orders", on="orderkey"
    )


@pytest.fixture(scope="module")
def join_database():
    db, lineitem_rows, orders_rows = build_tpch_join_database(ExperimentScale(0.5))
    return db, lineitem_rows, orders_rows


@pytest.fixture(scope="module")
def unindexed_join_database():
    """lineitem + a bare-heap orders: no clustering, no index, no CM."""
    db, lineitem_rows, orders_rows = build_tpch_join_database(
        ExperimentScale(0.25), cluster_orders_on=None
    )
    return db, lineitem_rows, orders_rows


def total_heap_reads(db):
    return sum(table.heap.logical_page_reads for table in db.tables.values())


def expected_match_count(lineitem_rows):
    low, high = SHIPDATE_WINDOW
    return sum(1 for row in lineitem_rows if low <= row["shipdate"] <= high)


def test_join_planning_performs_zero_heap_page_reads(join_database):
    db, _lineitem, _orders = join_database
    query = join_query()
    before_reads = total_heap_reads(db)
    before_io = db.disk.snapshot()
    db.planner.candidate_join_plans(db.tables, query)
    db.planner.choose_join(db.tables, query)
    for strategy in ("nested_loop_join", "hash_join", "sort_merge_join"):
        db.planner.choose_join(db.tables, query, force_join=strategy)
    db.planner.choose_join(db.tables, query, limit=10)
    db.explain(query)
    assert total_heap_reads(db) == before_reads
    assert db.disk.window_since(before_io).pages_read == 0


def test_full_result_join_picks_hash_join(join_database):
    db, lineitem_rows, orders_rows = join_database
    result = db.run_query(join_query(), cold_cache=True)
    # The hash build reads each input once, so it beats per-row probing for
    # the full result; probe plans come back under a LIMIT (below).
    assert result.access_method == "hash_join"
    # The merged rows agree with a reference in-memory hash join.
    orders_by_key = {row["orderkey"]: row for row in orders_rows}
    assert result.rows_matched == expected_match_count(lineitem_rows)
    sample = result.rows[0]
    assert sample["orderdate"] == orders_by_key[sample["orderkey"]]["orderdate"]
    # The CM-driven outer path's rewritten SQL surfaces through the join.
    assert result.rewritten_sql is not None
    # One probe per probe-side row lands in the shared counters.
    assert result.join_probes > 0
    # O(N + M): both inputs read at most once.
    assert result.pages_visited <= (
        db.table("lineitem").num_pages + db.table("orders").num_pages
    )


def test_limit_flips_selection_back_to_index_nested_loop(join_database):
    db, _lineitem, _orders = join_database
    # The hash build is upfront work a tiny LIMIT cannot scale away, while
    # the probe pipeline streams -- so selection flips, exactly like the
    # single-table upfront-vs-streaming regression.
    plan = db.planner.choose_join(db.tables, join_query(), limit=10)
    assert plan.method == "index_nested_loop_join"


def test_join_limit_streams_without_exhausting_the_outer_scan(join_database):
    db, _lineitem, _orders = join_database
    lineitem = db.table("lineitem")

    # Unforced: LIMIT-aware selection picks a streaming probe pipeline, and
    # the outer sweep must stop early.
    before = lineitem.heap.logical_page_reads
    result = db.run_query(join_query(limit=10), cold_cache=True)
    outer_pages_read = lineitem.heap.logical_page_reads - before
    assert result.rows_matched == 10
    assert result.rows_emitted == 10
    assert outer_pages_read < lineitem.num_pages
    assert result.rows_examined < lineitem.num_rows
    # The shared counters cover both inputs: at least one probe per emitted
    # row plus the outer pages swept.
    assert result.pages_visited >= outer_pages_read

    # Forced onto the CM-driven index-nested-loop pipeline, the outer path
    # reads only the handful of bucket pages the 10 rows need.
    before = lineitem.heap.logical_page_reads
    result = db.run_query(
        join_query(limit=10),
        force="cm_scan",
        force_join="index_nested_loop_join",
        cold_cache=True,
    )
    outer_pages_read = lineitem.heap.logical_page_reads - before
    assert result.rows_matched == 10
    assert outer_pages_read < lineitem.num_pages // 10


def test_streaming_operators_beat_nested_loop_baseline(join_database):
    db, _lineitem, _orders = join_database
    nl = db.run_query(join_query(), force_join="nested_loop_join", cold_cache=True)
    assert nl.access_method == "nested_loop_join"
    for strategy in ("index_nested_loop_join", "hash_join", "sort_merge_join"):
        result = db.run_query(join_query(), force_join=strategy, cold_cache=True)
        assert result.access_method == strategy
        assert result.rows_matched == nl.rows_matched
        assert result.elapsed_ms < nl.elapsed_ms / 3
        assert result.pages_visited < nl.pages_visited


def test_unindexed_inner_join_reads_linear_not_quadratic_pages(
    unindexed_join_database,
):
    """The ISSUE's acceptance case: O(N + M) pages instead of O(N * M).

    ``orders`` is a bare heap -- no clustered index, no secondary index, no
    CM -- so before the hash/sort-merge operators existed the *only* plan
    was the nested-loop rescan, one full inner sweep per outer row.
    """
    db, lineitem_rows, _orders = unindexed_join_database
    linear_budget = db.table("lineitem").num_pages + db.table("orders").num_pages
    expected = expected_match_count(lineitem_rows)

    # Planning still performs zero heap reads with the new candidates.
    before_reads = total_heap_reads(db)
    plans = db.planner.candidate_join_plans(db.tables, join_query())
    best = db.planner.choose_join(db.tables, join_query())
    assert total_heap_reads(db) == before_reads
    # No probe structure exists, so every candidate is NLJ/HJ/SMJ-shaped.
    assert all("index_nested_loop_join" not in plan.structure for plan in plans)
    assert best.method == "hash_join"

    hash_result = db.run_query(join_query(), cold_cache=True)
    assert hash_result.access_method == "hash_join"
    assert hash_result.rows_matched == expected
    assert hash_result.pages_visited <= linear_budget

    merge_result = db.run_query(
        join_query(), force_join="sort_merge_join", cold_cache=True
    )
    assert merge_result.rows_matched == expected
    assert merge_result.pages_visited <= linear_budget

    nl_result = db.run_query(
        join_query(), force_join="nested_loop_join", cold_cache=True
    )
    assert nl_result.rows_matched == expected
    # The rescan reads the inner once per outer row: quadratic in the sense
    # of O(outer_rows * inner_pages), orders of magnitude past linear.
    assert nl_result.pages_visited > 10 * linear_budget
    assert nl_result.pages_visited > 0.5 * expected * db.table("orders").num_pages
    assert hash_result.elapsed_ms < nl_result.elapsed_ms / 10


def test_cm_guided_inner_path_when_join_key_correlates_with_clustering():
    """Orders clustered by orderdate: the CM on orderkey guides the probes."""
    db, lineitem_rows, _orders = build_tpch_join_database(
        ExperimentScale(0.5), cluster_orders_on="orderdate"
    )
    query = join_query()
    # Among probe-style plans the CM-guided inner wins outright...
    probe_plan = db.planner.choose_join(
        db.tables, query, force_join="index_nested_loop_join"
    )
    assert "cm_orderkey" in probe_plan.structure
    # ...and under a LIMIT the CM-guided probe pipeline wins cost-based
    # selection against the blocking hash build.
    limited = db.planner.choose_join(db.tables, query, limit=10)
    assert limited.method == "index_nested_loop_join"
    assert "cm_orderkey" in limited.structure
    result = db.run_query(query, force_join="index_nested_loop_join", cold_cache=True)
    assert result.rows_matched == expected_match_count(lineitem_rows)
