"""Table 5: CM designs ranked by estimated slowdown vs a secondary B+Tree.

For the SX6 training query the CM Advisor estimates, for every candidate
(composite, bucketed) CM design, its query slowdown relative to an equivalent
secondary B+Tree and its size ratio.  The paper's table shows a spectrum from
"same speed, 100 % of the B+Tree size" down to "+10 %, < 1 % of the size";
the advisor recommends the smallest design within the user's performance
target.
"""

import pytest

from repro.bench.reporting import format_table, print_header
from repro.core.advisor import CMAdvisor
from repro.core.model import TableProfile
from repro.datasets.workloads import sdss_sx6_training_query


@pytest.mark.benchmark(group="table5")
def test_table5_advisor_designs(benchmark, sdss_rows):
    # ~700 candidate designs are evaluated (the paper reports 767 for SX6);
    # a 6 k-row sample keeps the Adaptive Estimator fast while preserving the
    # ranking.
    advisor = CMAdvisor(
        sdss_rows,
        "objid",
        table_profile=TableProfile(total_tups=len(sdss_rows), tups_per_page=20, btree_height=2),
        sample_size=6_000,
        performance_target=0.10,
        seed=5,
    )
    query = sdss_sx6_training_query(n_lookups=2)

    def run():
        recommendation = advisor.recommend(query)
        table_rows = advisor.design_table(query, limit=12)
        return recommendation, table_rows

    recommendation, table_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table 5: CM designs and estimated slowdown vs secondary B+Trees")
    print(format_table(table_rows, columns=["runtime", "cm_design", "size_ratio"]))

    designs = recommendation.designs_by_slowdown()
    assert len(designs) > 20  # the SX6 attributes produce many candidates

    # Designs are reported in non-decreasing slowdown order.
    slowdowns = [design.slowdown for design in designs]
    assert slowdowns == sorted(slowdowns)

    # The best designs match the B+Tree's speed (slowdown ~ 0) and there are
    # compact designs (a few percent of the B+Tree size) further down.
    assert slowdowns[0] <= 0.05
    assert any(design.size_ratio < 0.05 for design in designs)

    # The advisor recommends a design within the 10 % target that is far
    # smaller than the dense secondary index.
    assert recommendation.recommended is not None
    assert recommendation.recommended.slowdown <= 0.10 + 1e-9
    assert recommendation.recommended.size_ratio < 0.2

    # Every design's estimated CM is no larger than the corresponding B+Tree.
    assert all(design.estimated_size_bytes <= design.baseline_size_bytes for design in designs)
