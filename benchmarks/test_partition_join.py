"""Partition-wise joins: heap-page acceptance floor and planner purity.

Pins the PR 10 acceptance criterion: a co-partitioned hash join over a
partitioned table reads **no more** heap pages than the equivalent
flat-table hash join -- partition-wise execution splits the work, it never
re-reads it.  The layout is chosen so partition heaps fill exactly whole
pages (range boundaries splitting ``catid % 64`` evenly, row counts
divisible by ``tups_per_page``), making the comparison exact rather than
page-rounding-tolerant.  Pruning through the join's outer side and the
zero-heap-read purity of join planning (all three shapes) ride along.
"""

import pytest

from repro.engine.database import Database
from repro.engine.partition import PartitionSpec
from repro.engine.predicates import Equals
from repro.engine.query import Aggregate, Query

#: 325 rows per category: each 16-category partition holds 16 * 325 =
#: 5_200 rows = exactly 104 fifty-tuple pages (and the flat heap exactly
#: 416), so the page comparison below is exact.
NUM_ROWS = 20_800
NUM_CATS = 64
#: 4-way range layout splitting ``catid % 64`` into equal quarters.
BOUNDARIES = [16, 32, 48]

#: Pruning floor for a partition-key predicate through the join (one of
#: four partitions survives; headroom for the shared build-side pages).
JOIN_PRUNING_RATIO_FLOOR = 0.30


def build_rows():
    return [
        {
            "itemid": i,
            "catid": i % NUM_CATS,
            "price": float((i * 37) % 10_000),
            "qty": i % 20,
        }
        for i in range(NUM_ROWS)
    ]


def build_cat_rows():
    return [{"catid": c, "label": f"cat{c}"} for c in range(NUM_CATS)]


def _create_tables(db, *, partitioned):
    rows = build_rows()
    cat_rows = build_cat_rows()
    spec = PartitionSpec.by_range("catid", BOUNDARIES) if partitioned else None
    # 20_800 rows / 4 partitions = 5_200 rows = exactly 104 pages each;
    # 64 cats / 4 partitions = 16 rows = exactly one 16-tuple page each.
    db.create_table(
        "items", sample_row=rows[0], tups_per_page=50, partition_by=spec
    )
    db.load("items", rows)
    db.create_table(
        "cats", sample_row=cat_rows[0], tups_per_page=16, partition_by=spec
    )
    db.load("cats", cat_rows)


@pytest.fixture(scope="module")
def databases():
    """The same items + cats rows flat and 4-way range-partitioned."""
    flat = Database(buffer_pool_pages=600)
    _create_tables(flat, partitioned=False)
    part = Database(buffer_pool_pages=600)
    _create_tables(part, partitioned=True)
    return flat, part


JOIN_COUNT = Query.select("items", aggregate=Aggregate.count()).join(
    "cats", on="catid"
)


def test_co_partitioned_join_reads_no_more_pages_than_flat(databases):
    flat, part = databases
    flat.reset_measurements()
    base = flat.run_query(JOIN_COUNT, force_join="hash_join", cold_cache=True)
    part.reset_measurements()
    partitioned = part.run_query(
        JOIN_COUNT, force_join="hash_join", cold_cache=True
    )
    assert partitioned.value == base.value == NUM_ROWS
    assert base.pages_visited > 0
    assert partitioned.pages_visited <= base.pages_visited, (
        f"co-partitioned join read {partitioned.pages_visited} pages, flat "
        f"join read {base.pages_visited}"
    )
    # The layout divides exactly, so the partition-wise join reads the
    # *same* pages the flat join does -- split, never duplicated.
    assert partitioned.pages_visited == base.pages_visited


def test_outer_pruning_flows_through_the_join(databases):
    flat, part = databases
    query = Query.select(
        "items", Equals("catid", 7), aggregate=Aggregate.count()
    ).join("cats", on="catid")
    flat.reset_measurements()
    base = flat.run_query(query, force_join="hash_join", cold_cache=True)
    part.reset_measurements()
    pruned = part.run_query(query, force_join="hash_join", cold_cache=True)
    assert pruned.value == base.value
    ratio = pruned.pages_visited / base.pages_visited
    assert ratio <= JOIN_PRUNING_RATIO_FLOOR, (
        f"pruned join read {pruned.pages_visited}/{base.pages_visited} pages "
        f"(ratio {ratio:.3f} > {JOIN_PRUNING_RATIO_FLOOR})"
    )


def heap_reads(db, name):
    table = db.table(name)
    partitions = getattr(table, "partitions", None)
    if partitions is None:
        return table.heap.logical_page_reads
    return sum(p.heap.logical_page_reads for p in partitions)


def test_partition_join_planning_performs_zero_heap_page_reads(databases):
    _flat, part = databases
    tables = {"items": part.table("items"), "cats": part.table("cats")}
    queries = [
        JOIN_COUNT,
        Query.select("items", Equals("catid", 7)).join("cats", on="catid"),
        Query.select("items", order_by=["-price", "itemid"], limit=10).join(
            "cats", on="catid"
        ),
    ]
    before = heap_reads(part, "items") + heap_reads(part, "cats")
    device_snaps = [
        device.snapshot() for device in part.table("items").devices
    ] + [device.snapshot() for device in part.table("cats").devices]
    for query in queries:
        part.planner.choose_partitioned_join(tables, query, limit=query.limit)
        part.planner.candidate_partitioned_join_plans(
            tables, query, limit=query.limit
        )
        part.explain(query)
    assert heap_reads(part, "items") + heap_reads(part, "cats") == before
    devices = list(part.table("items").devices) + list(part.table("cats").devices)
    for device, snap in zip(devices, device_snaps):
        assert device.window_since(snap).pages_read == 0
