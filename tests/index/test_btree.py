"""Unit and property-based tests for the B+Tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree


def test_order_minimum_enforced():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_empty_tree_search():
    tree = BPlusTree(order=4)
    assert tree.search(10) == []
    assert 10 not in tree
    assert tree.height == 1
    assert tree.num_keys == 0


def test_insert_and_search_single_key():
    tree = BPlusTree(order=4)
    tree.insert(5, "a")
    assert tree.search(5) == ["a"]
    assert 5 in tree


def test_duplicate_keys_accumulate_payloads():
    tree = BPlusTree(order=4)
    tree.insert(5, "a")
    tree.insert(5, "b")
    assert sorted(tree.search(5)) == ["a", "b"]
    assert tree.num_keys == 1
    assert tree.num_entries == 2


def test_splits_grow_height():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert(i, i)
    assert tree.height >= 3
    tree.check_invariants()
    for i in range(100):
        assert tree.search(i) == [i]


def test_reverse_insert_order():
    tree = BPlusTree(order=4)
    for i in reversed(range(50)):
        tree.insert(i, i)
    tree.check_invariants()
    assert list(tree.keys()) == list(range(50))


def test_range_scan_inclusive_bounds():
    tree = BPlusTree(order=4)
    for i in range(20):
        tree.insert(i, i * 10)
    result = [(k, v) for k, v in tree.range_scan(5, 9)]
    assert [k for k, _ in result] == [5, 6, 7, 8, 9]


def test_range_scan_exclusive_bounds():
    tree = BPlusTree(order=4)
    for i in range(10):
        tree.insert(i, i)
    keys = [k for k, _ in tree.range_scan(2, 6, include_low=False, include_high=False)]
    assert keys == [3, 4, 5]


def test_range_scan_open_ended():
    tree = BPlusTree(order=4)
    for i in range(10):
        tree.insert(i, i)
    assert [k for k, _ in tree.range_scan(None, 3)] == [0, 1, 2, 3]
    assert [k for k, _ in tree.range_scan(7, None)] == [7, 8, 9]
    assert [k for k, _ in tree.range_scan()] == list(range(10))


def test_range_scan_between_keys():
    tree = BPlusTree(order=4)
    for i in [10, 20, 30, 40]:
        tree.insert(i, i)
    assert [k for k, _ in tree.range_scan(15, 35)] == [20, 30]


def test_delete_specific_payload():
    tree = BPlusTree(order=4)
    tree.insert(1, "a")
    tree.insert(1, "b")
    tree.delete(1, "a")
    assert tree.search(1) == ["b"]
    tree.delete(1, "b")
    assert tree.search(1) == []
    assert tree.num_keys == 0


def test_delete_missing_key_is_noop():
    tree = BPlusTree(order=4)
    tree.insert(1, "a")
    assert tree.delete(99) == []
    assert tree.delete(1, "zzz") == []
    assert tree.num_entries == 1


def test_search_path_returns_root_to_leaf_pages():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert(i, i)
    values, pages = tree.search_path(42)
    assert values == [42]
    assert len(pages) == tree.height


def test_insert_reports_modified_pages():
    tree = BPlusTree(order=4)
    modified = tree.insert(1, "a")
    assert modified  # at least the root/leaf page


def test_bulk_load_matches_individual_inserts():
    items = [(random.Random(0).randint(0, 1000), i) for i in range(200)]
    loaded = BPlusTree(order=8)
    loaded.bulk_load(items)
    inserted = BPlusTree(order=8)
    for key, payload in items:
        inserted.insert(key, payload)
    assert sorted(
        (k, sorted(v)) for k, v in loaded.items()
    ) == sorted((k, sorted(v)) for k, v in inserted.items())


def test_string_keys():
    tree = BPlusTree(order=4)
    for word in ["delta", "alpha", "charlie", "bravo", "echo"]:
        tree.insert(word, word.upper())
    assert list(tree.keys()) == ["alpha", "bravo", "charlie", "delta", "echo"]
    assert tree.search("charlie") == ["CHARLIE"]


def test_tuple_keys_for_composite_indexes():
    tree = BPlusTree(order=4)
    tree.insert((1, "b"), "x")
    tree.insert((1, "a"), "y")
    tree.insert((0, "z"), "w")
    assert list(tree.keys()) == [(0, "z"), (1, "a"), (1, "b")]


@given(st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=400))
@settings(max_examples=60, deadline=None)
def test_property_tree_matches_sorted_dict(values):
    """The tree behaves like a sorted multimap regardless of insert order."""
    tree = BPlusTree(order=6)
    reference: dict[int, list[int]] = {}
    for position, value in enumerate(values):
        tree.insert(value, position)
        reference.setdefault(value, []).append(position)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(reference)
    for key, payloads in reference.items():
        assert sorted(tree.search(key)) == sorted(payloads)
    assert tree.num_entries == len(values)


@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_deletions_preserve_invariants(values, data):
    tree = BPlusTree(order=6)
    reference: dict[int, list[int]] = {}
    for position, value in enumerate(values):
        tree.insert(value, position)
        reference.setdefault(value, []).append(position)

    to_delete = data.draw(
        st.lists(st.sampled_from(sorted(reference)), max_size=len(values))
    )
    for key in to_delete:
        if reference.get(key):
            payload = reference[key].pop()
            assert tree.delete(key, payload)
            if not reference[key]:
                del reference[key]
    tree.check_invariants()
    assert list(tree.keys()) == sorted(reference)
    for key, payloads in reference.items():
        assert sorted(tree.search(key)) == sorted(payloads)


@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_property_range_scan_matches_filter(values, bound_a, bound_b):
    low, high = min(bound_a, bound_b), max(bound_a, bound_b)
    tree = BPlusTree(order=6)
    for position, value in enumerate(values):
        tree.insert(value, position)
    scanned = [key for key, _ in tree.range_scan(low, high)]
    expected = sorted({v for v in values if low <= v <= high})
    assert scanned == expected
