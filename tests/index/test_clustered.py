"""Tests for the clustered index."""

import pytest

from repro.index.clustered import ClusteredIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel


def make_index(bounds):
    disk = DiskModel()
    pool = BufferPool(disk, capacity_pages=100)
    index = ClusteredIndex("clustered", "k", pool)
    index.build(bounds)
    return disk, pool, index


def test_pages_for_single_value():
    # Pages: [1..5], [5..9], [10..20]
    _disk, _pool, index = make_index([(1, 5), (5, 9), (10, 20)])
    assert index.pages_for_value(3) == [0]
    assert index.pages_for_value(5) == [0, 1]
    assert index.pages_for_value(15) == [2]


def test_pages_for_value_not_present_in_any_range():
    _disk, _pool, index = make_index([(1, 5), (10, 20)])
    # 7 falls between page bounds; the candidate page ends before it.
    assert index.pages_for_value(7) == []
    assert index.pages_for_value(0) == []
    assert index.pages_for_value(25) == []  # beyond the largest stored key


def test_pages_for_range_spans_pages():
    _disk, _pool, index = make_index([(1, 5), (5, 9), (10, 20), (21, 30)])
    assert index.pages_for_range(4, 12) == [0, 1, 2]
    assert index.pages_for_range(None, 6) == [0, 1]
    assert index.pages_for_range(22, None) == [3]


def test_empty_index_returns_no_pages():
    _disk, _pool, index = make_index([])
    assert index.pages_for_value(1) == []
    assert index.pages_for_range(1, 10) == []


def test_lookup_charges_descent_io():
    disk, pool, index = make_index([(i, i) for i in range(1000)])
    index.pages_for_value(3)
    assert pool.stats.accesses == index.btree_height
    assert index.btree_height >= 2


def test_charge_io_can_be_disabled():
    disk, pool, index = make_index([(1, 5)])
    index.pages_for_value(3, charge_io=False)
    assert pool.stats.accesses == 0


def test_bucket_registration_and_lookup():
    _disk, _pool, index = make_index([(1, 5), (5, 9), (10, 20), (21, 30)])
    index.register_bucket(0, 0, 1, 1, 9)
    index.register_bucket(1, 2, 3, 10, 30)
    assert index.pages_for_bucket(0) == [0, 1]
    assert index.pages_for_bucket(1) == [2, 3]
    assert index.pages_for_bucket(99) == []
    assert index.num_buckets == 2
    assert index.bucket_ids() == [0, 1]
    assert index.bucket_key_range(1) == (10, 30)


def test_bucket_range_validation():
    _disk, _pool, index = make_index([(1, 5)])
    with pytest.raises(ValueError):
        index.register_bucket(0, 3, 1, 1, 5)


def test_key_bounds_of_page():
    _disk, _pool, index = make_index([(1, 5), (6, 9)])
    assert index.key_bounds_of_page(1) == (6, 9)


def test_height_grows_with_table_size():
    _d1, _p1, small = make_index([(i, i) for i in range(10)])
    _d2, _p2, large = make_index([(i, i) for i in range(100_000)])
    assert large.btree_height > small.btree_height
