"""Tests for secondary (unclustered) indexes."""

import pytest

from repro.index.secondary import SecondaryIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel
from repro.storage.page import RID


def make_index(attributes=("city",), capacity_pages=1000, order=16):
    disk = DiskModel()
    pool = BufferPool(disk, capacity_pages=capacity_pages)
    return disk, pool, SecondaryIndex("idx", attributes, pool, order=order)


def test_requires_at_least_one_attribute():
    disk = DiskModel()
    pool = BufferPool(disk, capacity_pages=10)
    with pytest.raises(ValueError):
        SecondaryIndex("idx", (), pool)


def test_single_attribute_key_extraction():
    _disk, _pool, index = make_index(("city",))
    assert index.key_of({"city": "Boston", "state": "MA"}) == "Boston"


def test_composite_key_extraction_order():
    _disk, _pool, index = make_index(("ra", "dec"))
    assert index.key_of({"dec": 2.0, "ra": 1.0}) == (1.0, 2.0)


def test_build_and_probe():
    _disk, _pool, index = make_index()
    rows = [
        (RID(0, 0), {"city": "Boston"}),
        (RID(0, 1), {"city": "Springfield"}),
        (RID(1, 0), {"city": "Boston"}),
    ]
    index.build(rows)
    assert sorted(index.probe("Boston")) == [RID(0, 0), RID(1, 0)]
    assert index.probe("Toledo") == []
    assert index.num_entries == 3


def test_build_charges_no_io_but_probe_does():
    disk, pool, index = make_index()
    index.build([(RID(0, i), {"city": f"c{i}"}) for i in range(100)])
    assert disk.counters.pages_read == 0
    index.probe("c42")
    assert pool.stats.accesses >= index.btree_height


def test_insert_dirties_leaf_pages():
    _disk, pool, index = make_index()
    index.insert(RID(0, 0), {"city": "Boston"})
    assert pool.dirty_pages >= 1


def test_delete_removes_one_entry():
    _disk, _pool, index = make_index()
    index.build([(RID(0, 0), {"city": "Boston"}), (RID(0, 1), {"city": "Boston"})])
    index.delete(RID(0, 0), {"city": "Boston"})
    assert index.probe("Boston") == [RID(0, 1)]
    assert index.num_entries == 1


def test_delete_missing_entry_is_noop():
    disk, _pool, index = make_index()
    index.build([(RID(0, 0), {"city": "Boston"})])
    before = index.num_entries
    index.delete(RID(9, 9), {"city": "Toledo"})
    assert index.num_entries == before


def test_probe_range_returns_all_matching_rids():
    _disk, _pool, index = make_index(("price",))
    rows = [(RID(0, i), {"price": i * 10}) for i in range(20)]
    index.build(rows)
    rids = index.probe_range(25, 65)
    prices = sorted(r.slot * 10 for r in rids)
    assert prices == [30, 40, 50, 60]


def test_size_grows_with_entries():
    _disk, _pool, small = make_index()
    small.build([(RID(0, i), {"city": f"c{i}"}) for i in range(10)])
    _disk2, _pool2, large = make_index()
    large.build([(RID(0, i), {"city": f"c{i}"}) for i in range(1000)])
    assert large.size_bytes() > small.size_bytes() * 50
    assert large.size_pages() >= 1


def test_distinct_keys_sorted():
    _disk, _pool, index = make_index(("n",))
    index.build([(RID(0, i), {"n": v}) for i, v in enumerate([3, 1, 2, 1])])
    assert index.distinct_keys() == [1, 2, 3]
