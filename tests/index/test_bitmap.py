"""Tests for page bitmaps."""

import pytest

from repro.index.bitmap import PageBitmap


def test_add_and_iterate_sorted():
    bitmap = PageBitmap([5, 1, 3, 1])
    assert list(bitmap) == [1, 3, 5]
    assert len(bitmap) == 3


def test_negative_pages_rejected():
    with pytest.raises(ValueError):
        PageBitmap([-1])


def test_add_range_inclusive():
    bitmap = PageBitmap()
    bitmap.add_range(3, 6)
    assert bitmap.pages() == [3, 4, 5, 6]
    with pytest.raises(ValueError):
        bitmap.add_range(5, 2)


def test_union_and_intersection():
    a = PageBitmap([1, 2, 3])
    b = PageBitmap([3, 4])
    assert a.union(b).pages() == [1, 2, 3, 4]
    assert a.intersection(b).pages() == [3]


def test_runs_detects_contiguous_groups():
    bitmap = PageBitmap([1, 2, 3, 7, 8, 12])
    assert bitmap.runs() == [(1, 3), (7, 8), (12, 12)]
    assert bitmap.num_runs == 3


def test_empty_bitmap():
    bitmap = PageBitmap()
    assert not bitmap
    assert bitmap.runs() == []
    assert bitmap.num_runs == 0
    assert bitmap.fraction_of(100) == 0.0


def test_fraction_of_table():
    bitmap = PageBitmap(range(25))
    assert bitmap.fraction_of(100) == 0.25
    assert bitmap.fraction_of(0) == 0.0


def test_membership():
    bitmap = PageBitmap([2])
    assert 2 in bitmap
    assert 3 not in bitmap
