"""The top-level package exposes the documented public API."""

import repro


def test_version():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_surface():
    """The names used in the README quickstart are importable from the root."""
    from repro import (
        Aggregate,
        Between,
        CMAdvisor,
        CorrelationMap,
        Database,
        Query,
        WidthBucketer,
    )

    assert callable(Database)
    assert callable(Query.select)
    assert callable(Aggregate.count)
    assert callable(WidthBucketer)
    assert callable(CMAdvisor)
    assert callable(CorrelationMap)
    assert callable(Between)
