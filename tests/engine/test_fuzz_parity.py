"""Differential fuzzer: batched execution must be bit-identical to row-at-a-time.

Each seed derives one random query -- conjunctive predicates, an optional
equi-join, one of three output shapes (plain rows with projection / ORDER BY /
LIMIT, a scalar aggregate, or a grouped aggregate) -- and executes it under
row-at-a-time mode (``batch_size=None``) and several batch sizes between 1
and 4096.  Every mode must produce identical rows (same order), the same
aggregate value, and *bit-identical* simulated counters: rows examined,
pages visited, join probes, the full I/O breakdown and the simulated elapsed
time.  This is the engine's central parity contract (see
``benchmarks/test_batch_parity.py`` for the curated Figure 1 scenarios); the
fuzzer guards the long tail of shape combinations no curated test enumerates.

The tier-1 corpus is small (see ``--fuzz-iterations`` in the root
``conftest.py``); soak runs widen it::

    PYTHONPATH=src python -m pytest tests/engine/test_fuzz_parity.py --fuzz-iterations 500
"""

import math
import random

import pytest

from repro.engine.database import Database
from repro.engine.partition import PartitionSpec
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.query import Aggregate, Query

#: Batch sizes the fuzzer samples from -- degenerate (1-row batches), odd
#: (never page-aligned), the default-ish, and larger-than-the-table.
BATCH_SIZES = (1, 2, 3, 7, 32, 64, 256, 1024, 4096)

NUM_CATEGORIES = 80
NUM_ROWS = 2400


def build_fuzz_rows():
    rng = random.Random(1234)
    rows = []
    for i in range(NUM_ROWS):
        price = rng.uniform(0, 10_000)
        catid = int(price // (10_000 / NUM_CATEGORIES))
        rows.append(
            {
                "itemid": i,
                "catid": catid,
                "cat2": f"group{catid // 10}",
                "price": price,
                "qty": rng.randrange(0, 20),
            }
        )
    return rows


@pytest.fixture(scope="module")
def fuzz_database():
    """items (clustered, price index) plus a cats dimension table for joins."""
    rows = build_fuzz_rows()
    db = Database(buffer_pool_pages=400)
    db.create_table("items", sample_row=rows[0], tups_per_page=40)
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=4)
    db.create_secondary_index("items", "price")
    cat_rows = build_cat_rows()
    db.create_table("cats", sample_row=cat_rows[0], tups_per_page=40)
    db.load("cats", cat_rows)
    db.create_table("catsf", sample_row=cat_rows[0], tups_per_page=40)
    db.load("catsf", cat_rows)
    return db


def build_cat_rows():
    return [
        {"catid": c, "label": f"cat{c}", "region": f"r{c % 5}"}
        for c in range(NUM_CATEGORIES)
    ]


# ---------------------------------------------------------------------------
# Seeded query generation
# ---------------------------------------------------------------------------

def _random_predicates(rng):
    predicates = []
    for _ in range(rng.randrange(0, 3)):
        kind = rng.randrange(5)
        if kind == 0:
            predicates.append(Equals("catid", rng.randrange(NUM_CATEGORIES)))
        elif kind == 1:
            low = rng.uniform(0, 9_000)
            predicates.append(Between("price", low, low + rng.uniform(100, 4_000)))
        elif kind == 2:
            values = rng.sample(range(NUM_CATEGORIES), rng.randrange(1, 6))
            predicates.append(InSet("catid", sorted(values)))
        elif kind == 3:
            low = rng.randrange(0, 15)
            predicates.append(Between("qty", low, low + rng.randrange(1, 6)))
        else:
            predicates.append(Equals("cat2", f"group{rng.randrange(8)}"))
    return predicates


def _random_aggregate(rng):
    return rng.choice(
        [
            Aggregate.count(),
            Aggregate.sum("price"),
            Aggregate.avg("price"),
            Aggregate.count_distinct("catid"),
        ]
    )


def generate_query(seed):
    """One random query (and an optional forced access method) per seed."""
    rng = random.Random(seed)
    predicates = _random_predicates(rng)
    joined = rng.random() < 0.35
    shape = rng.choice(["plain", "plain", "scalar", "grouped"])

    kwargs = {}
    if shape == "scalar":
        kwargs["aggregate"] = _random_aggregate(rng)
    elif shape == "grouped":
        group = rng.choice([("catid",), ("cat2",), ("catid", "cat2")])
        kwargs["aggregate"] = rng.choice(
            [Aggregate.count(), Aggregate.avg("price"), Aggregate.sum("qty")]
        )
        kwargs["group_by"] = group
        if rng.random() < 0.5:
            kwargs["order_by"] = [rng.choice([col, f"-{col}"]) for col in group]
        if rng.random() < 0.4:
            kwargs["limit"] = rng.choice([0, 1, 3, 10])
        if rng.random() < 0.3:
            kwargs["projection"] = group  # drop the aggregate column
    else:
        columns = ["itemid", "catid", "cat2", "price", "qty"]
        if joined:
            columns += ["label", "region"]
        if rng.random() < 0.4:
            kwargs["projection"] = rng.sample(columns, rng.randrange(1, 4))
        if rng.random() < 0.5:
            order_columns = rng.sample(["price", "itemid", "catid", "qty"], 2)
            kwargs["order_by"] = [
                column if rng.random() < 0.5 else f"-{column}"
                for column in order_columns
            ]
        if rng.random() < 0.4:
            kwargs["limit"] = rng.choice([0, 1, 5, 37, 500])

    query = Query.select("items", *predicates, name=f"fuzz_{seed}", **kwargs)
    if joined:
        local = [Equals("region", f"r{rng.randrange(5)}")] if rng.random() < 0.5 else []
        query = query.join("cats", "catid", *local)

    force = "seq_scan" if rng.random() < 0.25 else None
    batch_sizes = rng.sample(BATCH_SIZES, 3)
    return query, force, batch_sizes


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------

def run_mode(db, query, batch_size, force):
    """Execute under one batching mode from an identical cold start."""
    db.batch_size = batch_size
    db.reset_measurements()
    return db.run_query(query, force=force, cold_cache=True)


def assert_bit_identical(reference, candidate, *, context):
    """Rows AND every simulated counter must match exactly -- no tolerance."""
    assert candidate.access_method == reference.access_method, context
    assert candidate.rows == reference.rows, context
    assert candidate.value == reference.value, context
    assert candidate.rows_examined == reference.rows_examined, context
    assert candidate.rows_matched == reference.rows_matched, context
    assert candidate.rows_emitted == reference.rows_emitted, context
    assert candidate.pages_visited == reference.pages_visited, context
    assert candidate.join_probes == reference.join_probes, context
    assert candidate.io == reference.io, context  # incl. sequential/random split
    assert candidate.elapsed_ms == reference.elapsed_ms, context
    assert candidate.rewritten_sql == reference.rewritten_sql, context


def pytest_generate_tests(metafunc):
    if "fuzz_seed" in metafunc.fixturenames:
        iterations = metafunc.config.getoption("--fuzz-iterations")
        metafunc.parametrize("fuzz_seed", range(iterations))


def test_fuzz_batch_parity(fuzz_database, fuzz_seed):
    db = fuzz_database
    query, force, batch_sizes = generate_query(fuzz_seed)
    original = db.batch_size
    try:
        reference = run_mode(db, query, None, force)
        for batch_size in batch_sizes:
            candidate = run_mode(db, query, batch_size, force)
            assert_bit_identical(
                reference,
                candidate,
                context=(
                    f"seed={fuzz_seed} batch_size={batch_size} "
                    f"force={force} query={query.describe()}"
                ),
            )
    finally:
        db.batch_size = original


# ---------------------------------------------------------------------------
# Partitioned storage: the same contract across layouts and execution modes
# ---------------------------------------------------------------------------

#: Partition layouts the partition fuzzer samples -- including the
#: degenerate single partition, on both methods.
PARTITION_LAYOUTS = tuple(
    f"{method}{count}" for method in ("hash", "range") for count in (1, 2, 4, 8)
)


def _partition_spec(label):
    method, count = label.rstrip("0123456789"), int(label.lstrip("hasrnge"))
    if method == "hash":
        return PartitionSpec.by_hash("catid", count)
    boundaries = [NUM_CATEGORIES * i // count for i in range(1, count)]
    return PartitionSpec.by_range("catid", boundaries)


@pytest.fixture(scope="module")
def partitioned_databases():
    """The fuzz tables under every partition layout (plus price index).

    ``cats`` is co-partitioned with ``items`` on ``catid`` (partition-wise
    joins pick the co-partitioned shape); ``catsf`` holds the same rows in a
    single flat heap (joins against it plan broadcast or repartition).  The
    flat reference database carries both names as ordinary flat tables, so
    any generated query runs unchanged on both sides of the differential.
    """
    rows = build_fuzz_rows()
    cat_rows = build_cat_rows()
    databases = {}
    for label in PARTITION_LAYOUTS:
        db = Database(buffer_pool_pages=400)
        db.create_table(
            "items",
            sample_row=rows[0],
            tups_per_page=40,
            partition_by=_partition_spec(label),
        )
        db.load("items", rows)
        db.create_secondary_index("items", "price")
        db.create_table(
            "cats",
            sample_row=cat_rows[0],
            tups_per_page=40,
            partition_by=_partition_spec(label),
        )
        db.load("cats", cat_rows)
        db.create_table("catsf", sample_row=cat_rows[0], tups_per_page=40)
        db.load("catsf", cat_rows)
        databases[label] = db
    return databases


def generate_partition_query(seed):
    """One random query (possibly a join) plus a layout and execution modes."""
    rng = random.Random(seed + 777_000)
    predicates = _random_predicates(rng)
    joined = rng.random() < 0.35
    join_target = rng.choice(["cats", "catsf"])
    shape = rng.choice(["plain", "plain", "scalar", "grouped"])
    kwargs = {}
    if shape == "scalar":
        kwargs["aggregate"] = _random_aggregate(rng)
    elif shape == "grouped":
        group = rng.choice([("catid",), ("cat2",), ("catid", "cat2")])
        kwargs["aggregate"] = rng.choice(
            [Aggregate.count(), Aggregate.avg("price"), Aggregate.sum("qty")]
        )
        kwargs["group_by"] = group
        if rng.random() < 0.4:
            kwargs["limit"] = rng.choice([0, 1, 3, 10])
    else:
        columns = ["itemid", "catid", "cat2", "price", "qty"]
        if joined:
            columns += ["label", "region"]
        if rng.random() < 0.4:
            kwargs["projection"] = rng.sample(columns, rng.randrange(1, 4))
        if rng.random() < 0.5:
            order_columns = rng.sample(["price", "itemid", "catid", "qty"], 2)
            kwargs["order_by"] = [
                column if rng.random() < 0.5 else f"-{column}"
                for column in order_columns
            ]
            # Half the ordered queries get a unique tiebreaker so the order
            # is total and LIMITed rows compare across layouts.
            if "itemid" not in order_columns and rng.random() < 0.5:
                kwargs["order_by"].append("itemid")
        if rng.random() < 0.4:
            kwargs["limit"] = rng.choice([0, 1, 5, 37, 500])
    query = Query.select("items", *predicates, name=f"pfuzz_{seed}", **kwargs)
    if joined:
        local = [Equals("region", f"r{rng.randrange(5)}")] if rng.random() < 0.5 else []
        query = query.join(join_target, "catid", *local)
    label = rng.choice(PARTITION_LAYOUTS)
    batch_sizes = rng.sample(BATCH_SIZES, 2)
    workers = rng.choice([None, 2, 3])
    return query, label, batch_sizes, workers


def _values_close(left, right):
    """Exact for ints/strings/None; last-ulp tolerance for float sums.

    Partitioning (and parallel partial merging) reorders float additions,
    so sums/averages may drift in the last ulps across layouts and
    execution modes -- every *counter* still matches bit for bit.
    """
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)
    return left == right


def _user_columns(row):
    """Drop internal bookkeeping columns (e.g. the clustering ``_cm_bucket``)."""
    return {key: value for key, value in row.items() if not key.startswith("_")}


def _stable_key(row):
    """Deterministic sort key over all columns.

    Non-float columns come first so possibly ulp-drifted float aggregates
    never decide the primary order (grouped rows are already unique on
    their group keys); the float tiebreaker only matters for plain rows,
    whose stored float values are bit-exact across layouts.
    """
    exact = tuple(
        (key, value)
        for key, value in sorted(row.items())
        if not isinstance(value, float)
    )
    floats = tuple(
        (key, repr(value))
        for key, value in sorted(row.items())
        if isinstance(value, float)
    )
    return exact, floats


def _rows_close(left_rows, right_rows, *, same_order):
    if len(left_rows) != len(right_rows):
        return False
    left_rows = [_user_columns(row) for row in left_rows]
    right_rows = [_user_columns(row) for row in right_rows]
    if not same_order:
        left_rows = sorted(left_rows, key=_stable_key)
        right_rows = sorted(right_rows, key=_stable_key)
    for left, right in zip(left_rows, right_rows):
        if sorted(left) != sorted(right):
            return False
        if not all(_values_close(left[column], right[column]) for column in left):
            return False
    return True


def assert_layouts_equivalent(flat, part, *, context):
    """Partitioned result content matches the single-heap run.

    Physical page counts legitimately differ (per-partition heaps round up
    to whole pages; pruning *reduces* rows examined), and row order under a
    partial ORDER BY or no ORDER BY differs, so this asserts result
    equivalence: matched-row count, aggregate value (float-tolerant), and
    the full sorted row multiset.  Under a LIMIT the kept subset is
    layout-dependent *unless* the ordering is total (it names the unique
    ``itemid``), in which case the merged partitioned rows must equal the
    flat rows exactly and in order.
    """
    assert part.rows_matched == flat.rows_matched, context
    assert part.rewritten_sql == flat.rewritten_sql, context
    if flat.query.aggregate is not None and not flat.query.grouping:
        assert _values_close(part.value, flat.value), context
        return
    if flat.query.limit is not None:
        total_order = any(
            column == "itemid" for column, _ascending in flat.query.ordering
        )
        if total_order:
            assert _rows_close(part.rows, flat.rows, same_order=True), context
        return
    assert _rows_close(part.rows, flat.rows, same_order=False), context


def assert_modes_identical(reference, candidate, *, context):
    """Serial/batched/parallel runs of one partitioned layout: bit-identical.

    Everything simulated must match exactly -- counters, the full I/O
    breakdown including the sequential/random split, and elapsed time.
    The single tolerated drift is float aggregate values under parallel
    partial merging (see :func:`_values_close`); rows keep their order.
    """
    assert candidate.access_method == reference.access_method, context
    assert candidate.rows_examined == reference.rows_examined, context
    assert candidate.rows_matched == reference.rows_matched, context
    assert candidate.rows_emitted == reference.rows_emitted, context
    assert candidate.pages_visited == reference.pages_visited, context
    assert candidate.join_probes == reference.join_probes, context
    assert candidate.io == reference.io, context
    assert candidate.elapsed_ms == reference.elapsed_ms, context
    assert candidate.rewritten_sql == reference.rewritten_sql, context
    assert _values_close(candidate.value, reference.value), context
    assert _rows_close(candidate.rows, reference.rows, same_order=True), context


def run_partitioned(db, query, batch_size, *, parallel=None):
    """Execute one partitioned mode from an identical cold start."""
    db.batch_size = batch_size
    db.reset_measurements()
    return db.run_query(query, cold_cache=True, parallel=parallel)


def test_fuzz_partition_parity(fuzz_database, partitioned_databases, fuzz_seed):
    query, label, batch_sizes, workers = generate_partition_query(fuzz_seed)
    flat = fuzz_database
    part = partitioned_databases[label]
    flat_original, part_original = flat.batch_size, part.batch_size
    try:
        flat_reference = run_mode(flat, query, None, None)
        reference = run_partitioned(part, query, None)
        context = (
            f"seed={fuzz_seed} layout={label} workers={workers} "
            f"query={query.describe()}"
        )
        assert_layouts_equivalent(flat_reference, reference, context=context)
        for batch_size in batch_sizes:
            candidate = run_partitioned(part, query, batch_size)
            assert_modes_identical(
                reference, candidate, context=f"{context} batch_size={batch_size}"
            )
        if workers is not None:
            for batch_size in (None, batch_sizes[0]):
                candidate = run_partitioned(
                    part, query, batch_size, parallel=workers
                )
                assert_modes_identical(
                    reference,
                    candidate,
                    context=f"{context} parallel batch_size={batch_size}",
                )
    finally:
        flat.batch_size = flat_original
        part.batch_size = part_original


def test_partition_corpus_covers_every_shape():
    """The partition corpus keeps exercising layouts, parallelism and shapes."""
    counters = {
        "hash": 0,
        "range": 0,
        "multiway": 0,
        "parallel": 0,
        "scalar": 0,
        "grouped": 0,
        "pruning_predicate": 0,
        "join_co_partitioned": 0,
        "join_flat_build": 0,
        "ordered": 0,
        "ordered_total_limit": 0,
    }
    for seed in range(24):
        query, label, _batch_sizes, workers = generate_partition_query(seed)
        if label.startswith("hash"):
            counters["hash"] += 1
        if label.startswith("range"):
            counters["range"] += 1
        if int(label.lstrip("hasrnge")) > 1:
            counters["multiway"] += 1
        if workers is not None:
            counters["parallel"] += 1
        if query.aggregate is not None and not query.grouping:
            counters["scalar"] += 1
        if query.grouping:
            counters["grouped"] += 1
        if query.predicates.on_attribute("catid"):
            counters["pruning_predicate"] += 1
        targets = {spec.table for spec in query.joins}
        if "cats" in targets:
            counters["join_co_partitioned"] += 1
        if "catsf" in targets:
            counters["join_flat_build"] += 1
        if query.ordering:
            counters["ordered"] += 1
        if query.limit is not None and any(
            column == "itemid" for column, _ascending in query.ordering
        ):
            counters["ordered_total_limit"] += 1
    missing = [shape for shape, count in counters.items() if count == 0]
    assert not missing, f"partition corpus never generates: {missing}"


def test_corpus_covers_every_shape():
    """The default corpus must keep exercising joins, aggregates and sorts.

    Guards the generator itself: a refactor that silently degenerates the
    corpus (e.g. every seed producing a bare scan) would leave the parity
    contract unguarded while the suite stays green.
    """
    shapes = {"join": 0, "scalar": 0, "grouped": 0, "ordered": 0, "limited": 0}
    for seed in range(24):
        query, _force, _batch_sizes = generate_query(seed)
        if query.joins:
            shapes["join"] += 1
        if query.aggregate is not None and not query.grouping:
            shapes["scalar"] += 1
        if query.grouping:
            shapes["grouped"] += 1
        if query.ordering:
            shapes["ordered"] += 1
        if query.limit is not None:
            shapes["limited"] += 1
    missing = [shape for shape, count in shapes.items() if count == 0]
    assert not missing, f"default corpus never generates: {missing}"
