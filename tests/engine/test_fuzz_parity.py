"""Differential fuzzer: batched execution must be bit-identical to row-at-a-time.

Each seed derives one random query -- conjunctive predicates, an optional
equi-join, one of three output shapes (plain rows with projection / ORDER BY /
LIMIT, a scalar aggregate, or a grouped aggregate) -- and executes it under
row-at-a-time mode (``batch_size=None``) and several batch sizes between 1
and 4096.  Every mode must produce identical rows (same order), the same
aggregate value, and *bit-identical* simulated counters: rows examined,
pages visited, join probes, the full I/O breakdown and the simulated elapsed
time.  This is the engine's central parity contract (see
``benchmarks/test_batch_parity.py`` for the curated Figure 1 scenarios); the
fuzzer guards the long tail of shape combinations no curated test enumerates.

The tier-1 corpus is small (see ``--fuzz-iterations`` in the root
``conftest.py``); soak runs widen it::

    PYTHONPATH=src python -m pytest tests/engine/test_fuzz_parity.py --fuzz-iterations 500
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.query import Aggregate, Query

#: Batch sizes the fuzzer samples from -- degenerate (1-row batches), odd
#: (never page-aligned), the default-ish, and larger-than-the-table.
BATCH_SIZES = (1, 2, 3, 7, 32, 64, 256, 1024, 4096)

NUM_CATEGORIES = 80
NUM_ROWS = 2400


def build_fuzz_rows():
    rng = random.Random(1234)
    rows = []
    for i in range(NUM_ROWS):
        price = rng.uniform(0, 10_000)
        catid = int(price // (10_000 / NUM_CATEGORIES))
        rows.append(
            {
                "itemid": i,
                "catid": catid,
                "cat2": f"group{catid // 10}",
                "price": price,
                "qty": rng.randrange(0, 20),
            }
        )
    return rows


@pytest.fixture(scope="module")
def fuzz_database():
    """items (clustered, price index) plus a cats dimension table for joins."""
    rows = build_fuzz_rows()
    db = Database(buffer_pool_pages=400)
    db.create_table("items", sample_row=rows[0], tups_per_page=40)
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=4)
    db.create_secondary_index("items", "price")
    cat_rows = [
        {"catid": c, "label": f"cat{c}", "region": f"r{c % 5}"}
        for c in range(NUM_CATEGORIES)
    ]
    db.create_table("cats", sample_row=cat_rows[0], tups_per_page=40)
    db.load("cats", cat_rows)
    return db


# ---------------------------------------------------------------------------
# Seeded query generation
# ---------------------------------------------------------------------------

def _random_predicates(rng):
    predicates = []
    for _ in range(rng.randrange(0, 3)):
        kind = rng.randrange(5)
        if kind == 0:
            predicates.append(Equals("catid", rng.randrange(NUM_CATEGORIES)))
        elif kind == 1:
            low = rng.uniform(0, 9_000)
            predicates.append(Between("price", low, low + rng.uniform(100, 4_000)))
        elif kind == 2:
            values = rng.sample(range(NUM_CATEGORIES), rng.randrange(1, 6))
            predicates.append(InSet("catid", sorted(values)))
        elif kind == 3:
            low = rng.randrange(0, 15)
            predicates.append(Between("qty", low, low + rng.randrange(1, 6)))
        else:
            predicates.append(Equals("cat2", f"group{rng.randrange(8)}"))
    return predicates


def _random_aggregate(rng):
    return rng.choice(
        [
            Aggregate.count(),
            Aggregate.sum("price"),
            Aggregate.avg("price"),
            Aggregate.count_distinct("catid"),
        ]
    )


def generate_query(seed):
    """One random query (and an optional forced access method) per seed."""
    rng = random.Random(seed)
    predicates = _random_predicates(rng)
    joined = rng.random() < 0.35
    shape = rng.choice(["plain", "plain", "scalar", "grouped"])

    kwargs = {}
    if shape == "scalar":
        kwargs["aggregate"] = _random_aggregate(rng)
    elif shape == "grouped":
        group = rng.choice([("catid",), ("cat2",), ("catid", "cat2")])
        kwargs["aggregate"] = rng.choice(
            [Aggregate.count(), Aggregate.avg("price"), Aggregate.sum("qty")]
        )
        kwargs["group_by"] = group
        if rng.random() < 0.5:
            kwargs["order_by"] = [rng.choice([col, f"-{col}"]) for col in group]
        if rng.random() < 0.4:
            kwargs["limit"] = rng.choice([0, 1, 3, 10])
        if rng.random() < 0.3:
            kwargs["projection"] = group  # drop the aggregate column
    else:
        columns = ["itemid", "catid", "cat2", "price", "qty"]
        if joined:
            columns += ["label", "region"]
        if rng.random() < 0.4:
            kwargs["projection"] = rng.sample(columns, rng.randrange(1, 4))
        if rng.random() < 0.5:
            order_columns = rng.sample(["price", "itemid", "catid", "qty"], 2)
            kwargs["order_by"] = [
                column if rng.random() < 0.5 else f"-{column}"
                for column in order_columns
            ]
        if rng.random() < 0.4:
            kwargs["limit"] = rng.choice([0, 1, 5, 37, 500])

    query = Query.select("items", *predicates, name=f"fuzz_{seed}", **kwargs)
    if joined:
        local = [Equals("region", f"r{rng.randrange(5)}")] if rng.random() < 0.5 else []
        query = query.join("cats", "catid", *local)

    force = "seq_scan" if rng.random() < 0.25 else None
    batch_sizes = rng.sample(BATCH_SIZES, 3)
    return query, force, batch_sizes


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------

def run_mode(db, query, batch_size, force):
    """Execute under one batching mode from an identical cold start."""
    db.batch_size = batch_size
    db.reset_measurements()
    return db.run_query(query, force=force, cold_cache=True)


def assert_bit_identical(reference, candidate, *, context):
    """Rows AND every simulated counter must match exactly -- no tolerance."""
    assert candidate.access_method == reference.access_method, context
    assert candidate.rows == reference.rows, context
    assert candidate.value == reference.value, context
    assert candidate.rows_examined == reference.rows_examined, context
    assert candidate.rows_matched == reference.rows_matched, context
    assert candidate.rows_emitted == reference.rows_emitted, context
    assert candidate.pages_visited == reference.pages_visited, context
    assert candidate.join_probes == reference.join_probes, context
    assert candidate.io == reference.io, context  # incl. sequential/random split
    assert candidate.elapsed_ms == reference.elapsed_ms, context
    assert candidate.rewritten_sql == reference.rewritten_sql, context


def pytest_generate_tests(metafunc):
    if "fuzz_seed" in metafunc.fixturenames:
        iterations = metafunc.config.getoption("--fuzz-iterations")
        metafunc.parametrize("fuzz_seed", range(iterations))


def test_fuzz_batch_parity(fuzz_database, fuzz_seed):
    db = fuzz_database
    query, force, batch_sizes = generate_query(fuzz_seed)
    original = db.batch_size
    try:
        reference = run_mode(db, query, None, force)
        for batch_size in batch_sizes:
            candidate = run_mode(db, query, batch_size, force)
            assert_bit_identical(
                reference,
                candidate,
                context=(
                    f"seed={fuzz_seed} batch_size={batch_size} "
                    f"force={force} query={query.describe()}"
                ),
            )
    finally:
        db.batch_size = original


def test_corpus_covers_every_shape():
    """The default corpus must keep exercising joins, aggregates and sorts.

    Guards the generator itself: a refactor that silently degenerates the
    corpus (e.g. every seed producing a bare scan) would leave the parity
    contract unguarded while the suite stays green.
    """
    shapes = {"join": 0, "scalar": 0, "grouped": 0, "ordered": 0, "limited": 0}
    for seed in range(24):
        query, _force, _batch_sizes = generate_query(seed)
        if query.joins:
            shapes["join"] += 1
        if query.aggregate is not None and not query.grouping:
            shapes["scalar"] += 1
        if query.grouping:
            shapes["grouped"] += 1
        if query.ordering:
            shapes["ordered"] += 1
        if query.limit is not None:
            shapes["limited"] += 1
    missing = [shape for shape, count in shapes.items() if count == 0]
    assert not missing, f"default corpus never generates: {missing}"
