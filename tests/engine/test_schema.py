"""Tests for table schemas."""

import pytest

from repro.engine.schema import TableSchema


def test_requires_columns():
    with pytest.raises(ValueError):
        TableSchema(name="t", columns=())


def test_rejects_duplicate_columns():
    with pytest.raises(ValueError):
        TableSchema.from_columns("t", ["a", "a"])


def test_rejects_unknown_column_bytes():
    with pytest.raises(ValueError):
        TableSchema.from_columns("t", ["a"], {"b": 4})


def test_from_columns_and_has_column():
    schema = TableSchema.from_columns("t", ["a", "b"])
    assert schema.has_column("a")
    assert not schema.has_column("z")


def test_infer_from_sample_row():
    schema = TableSchema.infer("items", {"id": 1, "name": "Boston", "price": 9.5, "flag": True})
    assert schema.columns == ("id", "name", "price", "flag")
    assert schema.column_bytes["name"] >= 7
    assert schema.column_bytes["flag"] == 1


def test_row_bytes_includes_overhead():
    schema = TableSchema.from_columns("t", ["a", "b"], {"a": 8, "b": 8})
    assert schema.row_bytes() == 16 + 28


def test_tups_per_page():
    schema = TableSchema.from_columns("t", ["a"], {"a": 8})
    assert schema.tups_per_page(8192) == 8192 // 36
    # A very wide row still fits at least one tuple per page.
    wide = TableSchema.from_columns("w", ["blob"], {"blob": 100_000})
    assert wide.tups_per_page(8192) == 1


def test_with_column_adds_once():
    schema = TableSchema.from_columns("t", ["a"])
    extended = schema.with_column("_cm_bucket", 4)
    assert extended.has_column("_cm_bucket")
    assert extended.with_column("_cm_bucket") is extended
    # The original is unchanged (schemas are immutable values).
    assert not schema.has_column("_cm_bucket")
