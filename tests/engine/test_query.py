"""Tests for query descriptions, aggregates and results."""

import pytest

from repro.engine.predicates import Equals, PredicateSet
from repro.engine.query import Aggregate, Query, QueryResult


ROWS = [
    {"cat": "a", "price": 10.0},
    {"cat": "a", "price": 30.0},
    {"cat": "b", "price": 50.0},
]


def test_aggregate_count():
    assert Aggregate.count().compute(ROWS) == 3


def test_aggregate_count_distinct():
    assert Aggregate.count_distinct("cat").compute(ROWS) == 2


def test_aggregate_sum_and_avg():
    assert Aggregate.sum("price").compute(ROWS) == 90.0
    assert Aggregate.avg("price").compute(ROWS) == pytest.approx(30.0)
    assert Aggregate.avg("price").compute([]) is None


def test_aggregate_with_expression_callable():
    agg = Aggregate.avg(lambda row: row["price"] * 2)
    assert agg.compute(ROWS) == pytest.approx(60.0)


def test_aggregate_validation():
    with pytest.raises(ValueError):
        Aggregate("median", "price")
    with pytest.raises(ValueError):
        Aggregate("avg")


def test_query_select_builder():
    query = Query.select("items", Equals("cat", "a"), aggregate=Aggregate.count())
    assert query.table == "items"
    assert isinstance(query.predicates, PredicateSet)
    assert "COUNT" in query.describe()
    assert "cat = 'a'" in query.describe()


def test_query_accepts_predicate_list():
    query = Query(table="items", predicates=[Equals("cat", "a")])
    assert isinstance(query.predicates, PredicateSet)


def test_query_result_summary_and_properties():
    query = Query.select("items", Equals("cat", "a"))
    result = QueryResult(
        query=query,
        access_method="cm_scan",
        rows=[ROWS[0]],
        rows_examined=10,
        rows_matched=1,
        pages_visited=3,
        elapsed_ms=1500.0,
    )
    assert result.elapsed_seconds == pytest.approx(1.5)
    assert result.false_positive_rows == 9
    assert "cm_scan" in result.summary()
    assert "3 pages" in result.summary()
