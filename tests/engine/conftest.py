"""Shared fixtures: a small synthetic table with a strong soft FD.

The ``items`` table mimics the eBay data set's structure at toy scale:
``price`` is strongly correlated with the clustered attribute ``catid``
(each category owns a contiguous price band), ``cat2`` is a coarser rollup of
``catid``, and ``noise`` is uncorrelated with everything.
"""

import random

import pytest

from repro.core.bucketing import WidthBucketer
from repro.engine.database import Database


def make_rows(n=5000, seed=0):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        price = rng.uniform(0, 10_000)
        catid = int(price // 100)          # 100 categories, price-determined
        rows.append(
            {
                "itemid": i,
                "catid": catid,
                "cat2": f"group{catid // 10}",
                "price": price,
                "noise": rng.randrange(1000),
            }
        )
    return rows


@pytest.fixture
def item_rows():
    return make_rows()


@pytest.fixture
def database(item_rows):
    db = Database(buffer_pool_pages=400)
    db.create_table("items", sample_row=item_rows[0], tups_per_page=50)
    db.load("items", item_rows)
    db.cluster("items", "catid", pages_per_bucket=4)
    return db


@pytest.fixture
def indexed_database(database):
    """Database with a secondary B+Tree and a CM on price, plus one on cat2."""
    database.create_secondary_index("items", "price")
    database.create_correlation_map(
        "items", ["price"], bucketers={"price": WidthBucketer(64)}, name="cm_price"
    )
    database.create_correlation_map("items", ["cat2"], name="cm_cat2")
    return database
