"""Tests for access paths: all methods must agree on results; their I/O
patterns must differ in the way the paper describes."""

import pytest

from repro.engine.predicates import Between, Equals, ExpressionPredicate, InSet, PredicateSet
from repro.engine.query import Aggregate, Query


def run(db, query, force):
    return db.query(query, force=force, cold_cache=True)


def reference_answer(db, predicates):
    table = db.table("items")
    return [row for row in table.all_rows() if predicates.matches(row)]


class TestResultCorrectness:
    """Every access method returns exactly the rows a naive filter returns."""

    @pytest.mark.parametrize(
        "force", ["seq_scan", "sorted_index_scan", "pipelined_index_scan", "cm_scan"]
    )
    def test_range_predicate_all_methods_agree(self, indexed_database, force):
        predicates = PredicateSet.of(Between("price", 1000, 1100))
        expected = reference_answer(indexed_database, predicates)
        query = Query(table="items", predicates=predicates)
        result = run(indexed_database, query, force)
        assert result.rows_matched == len(expected)
        assert sorted(r["itemid"] for r in result.rows) == sorted(
            r["itemid"] for r in expected
        )

    @pytest.mark.parametrize("force", ["seq_scan", "cm_scan"])
    def test_equality_on_cat2(self, indexed_database, force):
        predicates = PredicateSet.of(Equals("cat2", "group4"))
        expected = reference_answer(indexed_database, predicates)
        query = Query(table="items", predicates=predicates)
        result = run(indexed_database, query, force)
        assert result.rows_matched == len(expected)

    def test_clustered_index_scan_on_catid(self, indexed_database):
        predicates = PredicateSet.of(InSet("catid", [3, 57, 91]))
        expected = reference_answer(indexed_database, predicates)
        query = Query(table="items", predicates=predicates)
        result = run(indexed_database, query, "clustered_index_scan")
        assert result.rows_matched == len(expected)

    def test_additional_residual_predicates_applied(self, indexed_database):
        predicates = PredicateSet.of(
            Between("price", 1000, 2000),
            ExpressionPredicate("odd", lambda row: row["itemid"] % 2 == 1),
        )
        expected = reference_answer(indexed_database, predicates)
        query = Query(table="items", predicates=predicates)
        for force in ["seq_scan", "sorted_index_scan", "cm_scan"]:
            assert run(indexed_database, query, force).rows_matched == len(expected)

    def test_empty_result(self, indexed_database):
        predicates = PredicateSet.of(Equals("price", -1.0))
        query = Query(table="items", predicates=predicates)
        for force in ["seq_scan", "sorted_index_scan", "cm_scan"]:
            assert run(indexed_database, query, force).rows_matched == 0

    def test_aggregate_value_matches(self, indexed_database):
        predicates = PredicateSet.of(Between("price", 500, 700))
        expected = reference_answer(indexed_database, predicates)
        query = Query(
            table="items", predicates=predicates, aggregate=Aggregate.avg("price")
        )
        result = run(indexed_database, query, "cm_scan")
        assert result.value == pytest.approx(
            sum(r["price"] for r in expected) / len(expected)
        )


class TestIOPatterns:
    def test_seq_scan_reads_every_page(self, indexed_database):
        table = indexed_database.table("items")
        query = Query.select("items", Between("price", 1000, 1100))
        result = run(indexed_database, query, "seq_scan")
        assert result.pages_visited == table.num_pages
        assert result.rows_examined == table.num_rows

    def test_sorted_scan_touches_few_pages_when_correlated(self, indexed_database):
        table = indexed_database.table("items")
        query = Query.select("items", Between("price", 1000, 1100))
        result = run(indexed_database, query, "sorted_index_scan")
        assert result.pages_visited < table.num_pages / 10

    def test_cm_scan_reads_superset_of_btree_pages(self, indexed_database):
        """Figure 4: the CM scans a superset of the B+Tree's heap pages."""
        query = Query.select("items", Between("price", 1000, 1100))
        btree = run(indexed_database, query, "sorted_index_scan")
        cm = run(indexed_database, query, "cm_scan")
        assert cm.pages_visited >= btree.pages_visited
        assert cm.rows_examined >= btree.rows_examined
        assert cm.rows_matched == btree.rows_matched
        assert cm.false_positive_rows >= 0

    def test_cm_scan_far_cheaper_than_seq_scan(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1100))
        seq = run(indexed_database, query, "seq_scan")
        cm = run(indexed_database, query, "cm_scan")
        assert cm.elapsed_ms < seq.elapsed_ms

    def test_pipelined_scan_costs_more_seeks_than_sorted(self, indexed_database):
        query = Query.select("items", InSet("price", []))
        # Use a set of existing price values for a fair comparison.
        prices = sorted({row["price"] for row in indexed_database.table("items").all_rows()})
        some = prices[:: len(prices) // 40][:40]
        query = Query.select("items", InSet("price", some))
        pipelined = run(indexed_database, query, "pipelined_index_scan")
        sorted_scan = run(indexed_database, query, "sorted_index_scan")
        assert pipelined.rows_matched == sorted_scan.rows_matched
        assert pipelined.io.seeks >= sorted_scan.io.seeks

    def test_cm_rewrite_sql_exposed(self, indexed_database):
        query = Query.select("items", Equals("cat2", "group2"))
        result = run(indexed_database, query, "cm_scan")
        assert result.rewritten_sql is not None
        assert "_cm_bucket IN" in result.rewritten_sql

    def test_uncorrelated_attribute_cm_reads_mostly_false_positives(self, indexed_database):
        """A CM on an uncorrelated attribute fetches far more rows than match.

        Each ``noise`` value occurs only a handful of times but is scattered
        across unrelated clustered buckets, so the CM scan reads whole buckets
        of false positives -- the behaviour that makes CMs unattractive
        without a correlation (Section 5.3).
        """
        indexed_database.create_correlation_map("items", ["noise"], name="cm_noise")
        query = Query.select("items", Equals("noise", 123))
        result = run(indexed_database, query, "cm_scan")
        assert result.pages_visited > 10
        assert result.rows_examined > 20 * max(1, result.rows_matched)


class TestTailCorrectness:
    """Rows inserted after clustering are still found by every method."""

    def test_all_methods_see_tail_rows(self, indexed_database):
        new_rows = [
            {"itemid": 10_000 + i, "catid": 5, "cat2": "group0", "price": 550.0 + i, "noise": 0}
            for i in range(20)
        ]
        indexed_database.insert("items", new_rows)
        predicates = PredicateSet.of(Between("price", 550.0, 570.0))
        expected = reference_answer(indexed_database, predicates)
        query = Query(table="items", predicates=predicates)
        for force in ["seq_scan", "sorted_index_scan", "cm_scan"]:
            result = run(indexed_database, query, force)
            assert result.rows_matched == len(expected), force
