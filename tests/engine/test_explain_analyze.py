"""EXPLAIN ANALYZE: per-node estimated vs actual counters over the plan tree.

The satellite's acceptance check lives here: each node's ``actual`` counters
cover only that node's own work, so summing them over the tree reproduces
both the ``QueryResult`` totals and the heaps' independent
``logical_page_reads`` deltas.
"""

import pytest

from repro.engine.database import Database
from repro.engine.executor import PlanNode
from repro.engine.predicates import Between
from repro.engine.query import Aggregate, Query


@pytest.fixture
def join_db():
    db = Database(buffer_pool_pages=300)
    db.create_table("orders", columns=["orderid", "custid", "amount"], tups_per_page=10)
    db.create_table("customers", columns=["custid", "name"], tups_per_page=10)
    db.load(
        "orders",
        [{"orderid": i, "custid": i % 20, "amount": float(i)} for i in range(300)],
    )
    db.load("customers", [{"custid": c, "name": f"c{c}"} for c in range(20)])
    return db


class TestNodeCounters:
    def test_node_counters_sum_to_result_totals(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 2000)).order_by("price")
        result = indexed_database.run_query(query, limit=5)
        assert isinstance(result.plan, PlanNode)
        nodes = list(result.plan.walk())
        assert sum(n.actual.pages_visited for n in nodes) == result.pages_visited
        assert sum(n.actual.rows_examined for n in nodes) == result.rows_examined
        assert result.rows_emitted == result.plan.actual.rows_out == 5

    def test_node_pages_match_the_heaps_logical_reads(self, join_db):
        orders_heap = join_db.table("orders").heap
        customers_heap = join_db.table("customers").heap
        before = orders_heap.logical_page_reads + customers_heap.logical_page_reads
        query = Query.select("orders").join("customers", on="custid")
        result = join_db.run_query(query, force_join="hash_join")
        delta = (
            orders_heap.logical_page_reads
            + customers_heap.logical_page_reads
            - before
        )
        nodes = list(result.plan.walk())
        assert sum(n.actual.pages_visited for n in nodes) == delta == result.pages_visited

    def test_probe_join_work_lands_on_the_probe_leaf(self, join_db):
        join_db.cluster("customers", "custid")
        customers_heap = join_db.table("customers").heap
        before = customers_heap.logical_page_reads
        query = Query.select("orders").join("customers", on="custid")
        result = join_db.run_query(query, force_join="index_nested_loop_join")
        probe_pages = customers_heap.logical_page_reads - before
        from repro.engine.executor import ProbeNode
        from repro.engine.plan import find_node

        probe = find_node(result.plan, ProbeNode)
        assert probe is not None
        assert probe.actual.pages_visited == probe_pages
        assert probe.actual.rows_out == result.rows_matched

    def test_estimates_are_stamped_on_every_planned_node(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 2000)).order_by("price")
        result = indexed_database.run_query(query, limit=5)
        for node in result.plan.walk():
            assert node.est_rows is not None
        assert result.plan.estimated_cost_ms == result.estimated_cost_ms


class TestExplainAnalyzeRendering:
    def test_one_line_per_node_with_est_and_act(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 2000)).order_by(
            "price"
        ).with_limit(5)
        report = indexed_database.explain_analyze(query, force="cm_scan")
        lines = report.splitlines()
        # topk -> cm_scan + totals footer.
        assert len(lines) == 3
        assert lines[0].startswith("topk[price, k=5]")
        assert "cm_scan(items: cm_price)" in lines[1]
        assert all("rows est=" in line and "act=" in line for line in lines[:2])
        assert lines[-1].startswith("totals:")

    def test_join_tree_renders_all_inputs(self, join_db):
        query = Query.select("orders").join("customers", on="custid")
        report = join_db.explain_analyze(query, force_join="hash_join")
        assert "hash_join" in report
        assert "seq_scan(orders: heap)" in report
        assert "seq_scan(customers: heap)" in report
        # Tree guides mark the two children of the join.
        assert "├─" in report and "└─" in report

    def test_act_rows_match_an_independent_run(self, indexed_database):
        query = Query.select(
            "items", Between("price", 1000, 2000), aggregate=Aggregate.count()
        )
        reference = indexed_database.run_query(query)
        report = indexed_database.explain_analyze(query)
        assert f"act={reference.rows_matched}" in report
        assert "aggregate[count]" in report

    def test_explain_analyze_validates_like_run_query(self, join_db):
        query = Query.select("orders").join("customers", on="kundennummer")
        with pytest.raises(ValueError):
            join_db.explain_analyze(query)
