"""Tests for the batch-at-a-time executor.

The batched protocol's contract is *bit-identical simulated statistics*:
for any query, executing through ``iter_batches`` must produce the same
rows, the same per-node actual counters, the same I/O breakdown and the
same simulated elapsed time as the row-at-a-time pipeline -- while doing
far less interpreter work.  These tests pin that contract on every access
method, every join strategy, the decorator stack, and the batch-boundary
edge cases (LIMIT/TopK stopping mid-batch, empty batches from selective
filters, extreme batch sizes).
"""

import pytest

from repro.engine.executor import (
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
    RowBatch,
)
from repro.engine.plan import LimitNode, SortNode
from repro.engine.predicates import Between, Equals
from repro.engine.query import Aggregate, Query


ALL_METHODS = [
    "seq_scan",
    "sorted_index_scan",
    "pipelined_index_scan",
    "clustered_index_scan",
    "cm_scan",
]

JOIN_STRATEGIES = [
    "nested_loop_join",
    "index_nested_loop_join",
    "hash_join",
    "sort_merge_join",
]


def run_both(db, query, **kwargs):
    """Execute ``query`` row-at-a-time and batched; restore the default.

    The disk head position is reset before each run: the classification of
    a run's *first* page read depends on wherever the previous query left
    the head, which would otherwise leak between the two runs and obscure
    the comparison.
    """
    original = db.batch_size
    try:
        db.batch_size = None
        db.reset_measurements()
        row_result = db.run_query(query, cold_cache=True, **kwargs)
        db.batch_size = original or DEFAULT_BATCH_SIZE
        db.reset_measurements()
        batched_result = db.run_query(query, cold_cache=True, **kwargs)
    finally:
        db.batch_size = original
    return row_result, batched_result


def assert_parity(row_result, batched_result):
    """The full parity contract between the two executors."""
    assert batched_result.rows == row_result.rows
    assert batched_result.value == row_result.value
    assert batched_result.rows_matched == row_result.rows_matched
    assert batched_result.rows_examined == row_result.rows_examined
    assert batched_result.pages_visited == row_result.pages_visited
    assert batched_result.join_probes == row_result.join_probes
    assert batched_result.rows_emitted == row_result.rows_emitted
    assert batched_result.io == row_result.io
    assert batched_result.elapsed_ms == pytest.approx(
        row_result.elapsed_ms, abs=1e-9
    )
    # Per-node actual counters (the EXPLAIN ANALYZE surface) match node by
    # node, not just in total.
    row_nodes = list(row_result.plan.walk())
    batched_nodes = list(batched_result.plan.walk())
    assert len(row_nodes) == len(batched_nodes)
    for row_node, batched_node in zip(row_nodes, batched_nodes):
        assert row_node.label() == batched_node.label()
        assert batched_node.actual.rows_out == row_node.actual.rows_out
        assert batched_node.actual.rows_examined == row_node.actual.rows_examined
        assert batched_node.actual.pages_visited == row_node.actual.pages_visited
        assert batched_node.actual.lookups == row_node.actual.lookups
        assert batched_node.actual.join_probes == row_node.actual.join_probes


class TestAccessMethodParity:
    @pytest.mark.parametrize("force", ALL_METHODS)
    def test_filtered_scan_parity(self, indexed_database, force):
        if force == "clustered_index_scan":
            query = Query.select("items", Equals("catid", 42))
        else:
            query = Query.select("items", Between("price", 1000, 2500))
        row_result, batched_result = run_both(indexed_database, query, force=force)
        assert row_result.rows_matched > 0
        assert_parity(row_result, batched_result)

    def test_unfiltered_scan_parity(self, indexed_database):
        query = Query.select("items")
        row_result, batched_result = run_both(indexed_database, query)
        assert batched_result.rows_matched == 5000
        assert_parity(row_result, batched_result)

    def test_projection_parity(self, indexed_database):
        query = Query.select(
            "items", Between("price", 1000, 2500), projection=("itemid", "price")
        )
        row_result, batched_result = run_both(indexed_database, query)
        assert all(set(row) == {"itemid", "price"} for row in batched_result.rows)
        assert_parity(row_result, batched_result)

    def test_batched_rows_are_private_copies(self, indexed_database):
        query = Query.select("items", Equals("catid", 42))
        result = indexed_database.run_query(query)
        result.rows[0]["itemid"] = -1
        again = indexed_database.run_query(query)
        assert again.rows[0]["itemid"] != -1


class TestDecoratorParity:
    @pytest.mark.parametrize(
        "query",
        [
            Query.select("items", Between("price", 0, 5000), limit=13),
            Query.select("items", Between("price", 1000, 2500), aggregate=Aggregate.count()),
            Query.select("items", aggregate=Aggregate.sum("price")),
            Query.select("items", aggregate=Aggregate.avg("price")),
            Query.select("items", aggregate=Aggregate.count_distinct("catid")),
            Query.select(
                "items", aggregate=Aggregate.count(alias="n")
            ).group_by("catid"),
            Query.select(
                "items", aggregate=Aggregate.sum("price", alias="s")
            ).group_by("cat2", "catid"),
            Query.select("items", Between("price", 4000, 4400)).order_by("-price"),
            Query.select("items", Between("price", 0, 5000))
            .order_by("-price")
            .with_limit(7),
            Query.select(
                "items", aggregate=Aggregate.count(alias="n")
            )
            .group_by("catid")
            .order_by("-n")
            .with_limit(3),
        ],
        ids=[
            "limit",
            "count",
            "sum",
            "avg",
            "count_distinct",
            "group_by",
            "group_by_multi",
            "order_by",
            "top_k",
            "group_order_limit",
        ],
    )
    def test_decorated_query_parity(self, indexed_database, query):
        row_result, batched_result = run_both(indexed_database, query)
        assert_parity(row_result, batched_result)


@pytest.fixture
def join_database(indexed_database, item_rows):
    """items plus a categories table joinable on catid."""
    categories = [
        {"catid": catid, "label": f"cat-{catid}", "floor": catid * 100.0}
        for catid in range(101)
    ]
    indexed_database.create_table(
        "categories", sample_row=categories[0], tups_per_page=50
    )
    indexed_database.load("categories", categories)
    return indexed_database


class TestJoinParity:
    @pytest.mark.parametrize("force_join", JOIN_STRATEGIES)
    def test_join_strategy_parity(self, join_database, force_join):
        query = Query.select("items", Between("price", 1000, 2500)).join(
            "categories", on="catid"
        )
        if force_join == "index_nested_loop_join":
            join_database.cluster("categories", "catid")
        row_result, batched_result = run_both(
            join_database, query, force_join=force_join
        )
        assert row_result.rows_matched > 0
        assert_parity(row_result, batched_result)

    @pytest.mark.parametrize("force_join", ["hash_join", "index_nested_loop_join"])
    def test_join_with_limit_parity(self, join_database, force_join):
        join_database.cluster("categories", "catid")
        query = Query.select("items", Between("price", 0, 5000)).join(
            "categories", on="catid"
        )
        row_result, batched_result = run_both(
            join_database, query, force_join=force_join, limit=9
        )
        assert batched_result.rows_matched == 9
        assert_parity(row_result, batched_result)

    def test_join_aggregate_parity(self, join_database):
        query = Query.select(
            "items", Between("price", 0, 5000), aggregate=Aggregate.count()
        ).join("categories", on="catid")
        row_result, batched_result = run_both(join_database, query)
        assert batched_result.value == row_result.value
        assert_parity(row_result, batched_result)


class TestBatchBoundaries:
    def test_limit_stops_mid_batch_without_extra_page_reads(self, indexed_database):
        """A LIMIT satisfied mid-batch must not read past the stopping page."""
        table = indexed_database.table("items")
        query = Query.select("items", Between("price", 0, 10_000), limit=5)

        indexed_database.batch_size = None
        before = table.heap.logical_page_reads
        indexed_database.run_query(query, force="seq_scan", cold_cache=True)
        row_reads = table.heap.logical_page_reads - before

        indexed_database.batch_size = DEFAULT_BATCH_SIZE
        before = table.heap.logical_page_reads
        result = indexed_database.run_query(query, force="seq_scan", cold_cache=True)
        batched_reads = table.heap.logical_page_reads - before

        assert result.rows_matched == 5
        assert batched_reads == row_reads
        assert batched_reads < table.num_pages

    def test_limit_zero_reads_nothing(self, indexed_database):
        query = Query.select("items", Between("price", 0, 10_000), limit=0)
        result = indexed_database.run_query(query, force="seq_scan")
        assert result.rows_matched == 0
        assert result.pages_visited == 0

    def test_topk_reads_no_extra_pages_over_plain_scan(self, indexed_database):
        """The k-heap consumes batched input without extra page reads."""
        plain = indexed_database.run_query(
            Query.select("items", Between("price", 0, 10_000)),
            force="seq_scan",
            cold_cache=True,
        )
        topk = indexed_database.run_query(
            Query.select("items", Between("price", 0, 10_000))
            .order_by("-price")
            .with_limit(5),
            force="seq_scan",
            cold_cache=True,
        )
        assert topk.pages_visited == plain.pages_visited
        assert len(topk.rows) == 5

    def test_highly_selective_filter_yields_no_empty_batches(self, indexed_database):
        """Pages without matches contribute no batches, never empty ones."""
        query = Query.select("items", Equals("itemid", 4321))
        plan = indexed_database.planner.choose(
            indexed_database.table("items"), query, force="seq_scan"
        )
        batches = list(plan.iter_batches(ExecutionContext(), 64))
        assert all(len(batch) > 0 for batch in batches)
        assert sum(len(batch) for batch in batches) == 1

    def test_no_match_filter_yields_nothing_but_sweeps_all_pages(
        self, indexed_database
    ):
        query = Query.select("items", Equals("price", -1.0))
        row_result, batched_result = run_both(
            indexed_database, query, force="seq_scan"
        )
        assert batched_result.rows == []
        assert_parity(row_result, batched_result)

    @pytest.mark.parametrize("batch_size", [1, 7, 10_000])
    def test_batch_size_equivalence_on_joins_and_group_by(
        self, join_database, batch_size
    ):
        """Batch size 1 vs 10k: same rows, same counters, same simulated I/O."""
        join_query = Query.select("items", Between("price", 1000, 2500)).join(
            "categories", on="catid"
        )
        grouped = Query.select(
            "items", Between("price", 0, 3000), aggregate=Aggregate.count(alias="n")
        ).group_by("catid")
        for query in (join_query, grouped):
            join_database.batch_size = DEFAULT_BATCH_SIZE
            reference = join_database.run_query(query, cold_cache=True)
            join_database.batch_size = batch_size
            result = join_database.run_query(query, cold_cache=True)
            join_database.batch_size = DEFAULT_BATCH_SIZE
            assert result.rows == reference.rows
            assert result.pages_visited == reference.pages_visited
            assert result.rows_examined == reference.rows_examined
            assert result.io == reference.io
            assert result.elapsed_ms == pytest.approx(reference.elapsed_ms)

    def test_scan_batches_are_page_aligned(self, database):
        """Unfiltered scan batches cover whole pages (50 tuples each here)."""
        plan = database.planner.choose(
            database.table("items"), Query.select("items"), force="seq_scan"
        )
        batches = list(plan.iter_batches(ExecutionContext(), 256))
        tups_per_page = database.table("items").tups_per_page
        for batch in batches[:-1]:
            assert len(batch) % tups_per_page == 0


class TestBatchProtocol:
    def test_iter_batches_rejects_bad_batch_size(self, database):
        plan = database.planner.choose(
            database.table("items"), Query.select("items"), force="seq_scan"
        )
        with pytest.raises(ValueError):
            next(plan.iter_batches(ExecutionContext(), 0))

    def test_database_rejects_bad_batch_size(self):
        from repro.engine.database import Database

        with pytest.raises(ValueError):
            Database(batch_size=0)

    def test_demand_truncates_and_stops(self, database):
        plan = database.planner.choose(
            database.table("items"), Query.select("items"), force="seq_scan"
        )
        batches = list(plan.iter_batches(ExecutionContext(), 64, demand=10))
        assert sum(len(batch) for batch in batches) == 10
        assert plan.actual.rows_out == 10

    def test_limit_over_sort_truncates_blocking_output(self, database):
        """A blocking Sort under a Limit emits exactly k rows in both modes.

        The planner fuses ORDER BY + LIMIT into a TopK, so the Limit-over-
        Sort shape is exercised on a hand-built tree: the Sort must drain
        and sort its whole input, yet report only the consumed rows out.
        """
        from repro.engine.access import SeqScan
        from repro.engine.executor import ScanNode
        from repro.engine.predicates import PredicateSet

        table = database.table("items")

        def build():
            scan = ScanNode(SeqScan(table, PredicateSet()))
            sort = SortNode(scan, (("price", True),))
            return sort, LimitNode(sort, 4)

        sort, limit = build()
        batched_rows = [
            dict(row)
            for batch in limit.iter_batches(ExecutionContext(), 32)
            for row in batch
        ]
        assert len(batched_rows) == 4
        assert limit.actual.rows_out == 4
        assert sort.actual.rows_out == 4
        assert sort.rows_in == table.num_rows

        row_sort, row_limit = build()
        row_rows = [dict(row) for row in row_limit.iter_rows(ExecutionContext())]
        assert row_rows == batched_rows
        assert row_sort.actual.rows_out == 4

    def test_batches_are_row_batches(self, database):
        plan = database.planner.choose(
            database.table("items"), Query.select("items"), force="seq_scan"
        )
        batch = next(plan.iter_batches(ExecutionContext()))
        assert isinstance(batch, RowBatch)
        assert isinstance(batch, list)

    def test_stream_batches_surface(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1500))
        streamed = [
            row
            for batch in indexed_database.stream_batches(query)
            for row in batch
        ]
        reference = indexed_database.run_query(query)
        assert streamed == reference.rows

    def test_stream_batches_abandoned_early_stops_reading(self, indexed_database):
        table = indexed_database.table("items")
        before = table.heap.logical_page_reads
        batches = indexed_database.stream_batches(
            Query.select("items", Between("price", 0, 10_000)), force="seq_scan",
            batch_size=50,
        )
        next(batches)
        batches.close()
        assert table.heap.logical_page_reads - before < table.num_pages

    def test_stream_batches_rejects_scalar_aggregates(self, indexed_database):
        query = Query.select("items", aggregate=Aggregate.count())
        with pytest.raises(ValueError):
            indexed_database.stream_batches(query)

    def test_add_batch_matches_per_row_adds(self):
        rows = [{"x": value} for value in (1.5, 2.25, -3.0, 0.125)]
        for aggregate in (
            Aggregate.count(),
            Aggregate.sum("x"),
            Aggregate.avg("x"),
            Aggregate.count_distinct("x"),
        ):
            per_row = aggregate.make_accumulator()
            for row in rows:
                per_row.add(row)
            batched = aggregate.make_accumulator()
            batched.add_batch(rows[:2])
            batched.add_batch(rows[2:])
            assert batched.result() == per_row.result()
