"""Tests for the Database facade: DDL, DML, maintenance accounting."""

import pytest

from repro.core.bucketing import WidthBucketer
from repro.engine.database import Database
from repro.engine.predicates import Between, Equals
from repro.engine.query import Aggregate, Query
from tests.engine.conftest import make_rows


class TestDDL:
    def test_create_table_variants(self):
        db = Database()
        db.create_table("a", columns=["x", "y"])
        db.create_table("b", sample_row={"x": 1, "name": "s"})
        from repro.engine.schema import TableSchema

        db.create_table("c", schema=TableSchema.from_columns("c", ["z"]))
        assert set(db.tables) == {"a", "b", "c"}

    def test_create_table_requires_some_definition(self):
        db = Database()
        with pytest.raises(ValueError):
            db.create_table("t")

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", columns=["x"])
        with pytest.raises(ValueError):
            db.create_table("t", columns=["x"])

    def test_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(KeyError):
            db.table("missing")
        with pytest.raises(KeyError):
            db.load("missing", [])

    def test_drop_table(self):
        db = Database()
        db.create_table("t", columns=["x"])
        db.drop_table("t")
        assert "t" not in db.tables


class TestQueries:
    def test_query_returns_value_and_io(self, indexed_database):
        query = Query.select(
            "items", Between("price", 1000, 1100), aggregate=Aggregate.count()
        )
        result = indexed_database.query(query, cold_cache=True)
        assert result.value == result.rows_matched
        assert result.io.pages_read > 0
        assert result.elapsed_ms > 0
        assert result.estimated_cost_ms is not None

    def test_cold_cache_flag_affects_io(self, indexed_database):
        query = Query.select("items", Equals("cat2", "group1"), aggregate=Aggregate.count())
        warm_first = indexed_database.query(query, force="cm_scan", cold_cache=True)
        warm_second = indexed_database.query(query, force="cm_scan")
        assert warm_second.io.pages_read <= warm_first.io.pages_read
        cold_again = indexed_database.query(query, force="cm_scan", cold_cache=True)
        assert cold_again.io.pages_read == warm_first.io.pages_read

    def test_explain_lists_costs(self, indexed_database):
        query = Query.select("items", Between("price", 0, 100))
        plans = indexed_database.explain(query)
        assert len(plans) >= 2
        assert all("estimated_cost_ms" in plan for plan in plans)


class TestMaintenance:
    def test_insert_updates_query_results(self, indexed_database):
        before = indexed_database.query(
            Query.select("items", Equals("cat2", "group0"), aggregate=Aggregate.count()),
            force="seq_scan",
        ).value
        rows = [
            {"itemid": 50_000 + i, "catid": 1, "cat2": "group0", "price": 150.0, "noise": 0}
            for i in range(10)
        ]
        outcome = indexed_database.insert("items", rows)
        assert outcome.rows_affected == 10
        assert outcome.elapsed_ms > 0
        after = indexed_database.query(
            Query.select("items", Equals("cat2", "group0"), aggregate=Aggregate.count()),
            force="seq_scan",
        ).value
        assert after == before + 10

    def test_insert_batches_flush_log_per_batch(self, indexed_database):
        rows = make_rows(n=100, seed=9)
        outcome = indexed_database.insert("items", rows, batch_size=25)
        # 4 batches, two-phase commit: 2 flushes each.
        assert outcome.log_flushes == 8

    def test_insert_single_phase_commit(self, indexed_database):
        rows = make_rows(n=10, seed=9)
        outcome = indexed_database.insert("items", rows, two_phase_commit=False)
        assert outcome.log_flushes == 1

    def test_more_indexes_cost_more_to_maintain(self, item_rows):
        """The Figure 8 mechanism: extra B+Trees slow down inserts."""

        def build(num_indexes):
            db = Database(buffer_pool_pages=300)
            db.create_table("items", sample_row=item_rows[0], tups_per_page=50)
            db.load("items", item_rows)
            db.cluster("items", "catid", pages_per_bucket=4)
            attrs = ["price", "noise", "itemid", "cat2"][:num_indexes]
            for attr in attrs:
                db.create_secondary_index("items", attr)
            db.drop_caches()
            db.reset_measurements()
            return db

        light = build(1)
        heavy = build(4)
        batch = make_rows(n=500, seed=3)
        light_cost = light.insert("items", batch).elapsed_ms
        heavy_cost = heavy.insert("items", batch).elapsed_ms
        assert heavy_cost > light_cost

    def test_cm_maintenance_cheaper_than_btree_maintenance(self, item_rows):
        """The headline maintenance result at toy scale: CMs beat B+Trees."""

        def build(kind):
            db = Database(buffer_pool_pages=300)
            db.create_table("items", sample_row=item_rows[0], tups_per_page=50)
            db.load("items", item_rows)
            db.cluster("items", "catid", pages_per_bucket=4)
            for attr in ["price", "noise", "itemid"]:
                if kind == "btree":
                    db.create_secondary_index("items", attr)
                else:
                    db.create_correlation_map(
                        "items",
                        [attr],
                        bucketers={attr: WidthBucketer(64)} if attr != "cat2" else None,
                    )
            db.drop_caches()
            db.reset_measurements()
            return db

        btree_db = build("btree")
        cm_db = build("cm")
        batch = make_rows(n=500, seed=4)
        btree_cost = btree_db.insert("items", batch).elapsed_ms
        cm_cost = cm_db.insert("items", batch).elapsed_ms
        assert cm_cost < btree_cost

    def test_delete_removes_rows_everywhere(self, indexed_database):
        outcome = indexed_database.delete("items", [Equals("cat2", "group9")])
        assert outcome.rows_affected > 0
        count = indexed_database.query(
            Query.select("items", Equals("cat2", "group9"), aggregate=Aggregate.count()),
            force="seq_scan",
        ).value
        assert count == 0
        # The CM no longer maps the deleted category.
        cm = indexed_database.table("items").correlation_maps["cm_cat2"]
        assert cm.lookup({"cat2": "group9"}) == []

    def test_maintenance_result_rates(self):
        from repro.engine.database import MaintenanceResult

        result = MaintenanceResult(rows_affected=100, elapsed_ms=2000.0)
        assert result.rows_per_second == pytest.approx(50.0)
        assert MaintenanceResult(rows_affected=1, elapsed_ms=0).rows_per_second == float("inf")


class TestMeasurementControl:
    def test_reset_and_elapsed(self, indexed_database):
        indexed_database.reset_measurements()
        assert indexed_database.elapsed_ms() == 0
        indexed_database.query(
            Query.select("items", Equals("cat2", "group1")), force="seq_scan"
        )
        assert indexed_database.elapsed_ms() > 0

    def test_checkpoint_flushes_dirty_pages(self, indexed_database):
        indexed_database.insert("items", make_rows(n=50, seed=11))
        written = indexed_database.checkpoint()
        assert written >= 0
        assert indexed_database.buffer_pool.dirty_pages == 0
