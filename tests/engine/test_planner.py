"""Tests for cost-based access-path selection."""

import pytest

from repro.engine.access import CorrelationMapScan, SeqScan, SortedIndexScan
from repro.engine.planner import FORCE_METHODS, Planner
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.query import Query


def test_candidate_plans_include_all_applicable_structures(indexed_database):
    query = Query.select("items", Between("price", 1000, 1100))
    plans = indexed_database.explain(query)
    methods = {plan["method"] for plan in plans}
    assert "seq_scan" in methods
    assert "sorted_index_scan" in methods
    assert "cm_scan" in methods


def test_inapplicable_structures_are_skipped(indexed_database):
    # noise has no index and no CM: only the seq scan qualifies.
    query = Query.select("items", Equals("noise", 5))
    plans = indexed_database.explain(query)
    assert {plan["method"] for plan in plans} == {"seq_scan"}


def test_clustered_attribute_predicate_offers_clustered_scan(indexed_database):
    query = Query.select("items", Equals("catid", 42))
    methods = {plan["method"] for plan in indexed_database.explain(query)}
    assert "clustered_index_scan" in methods


def test_selective_query_does_not_choose_seq_scan(indexed_database):
    query = Query.select("items", Equals("cat2", "group7"))
    table = indexed_database.table("items")
    plan = indexed_database.planner.choose(table, query)
    assert plan.method != "seq_scan" or plan.estimated_cost_ms <= min(
        p["estimated_cost_ms"] for p in indexed_database.explain(query)
    )
    result = indexed_database.query(query)
    assert result.access_method in {"cm_scan", "sorted_index_scan", "clustered_index_scan"}


def test_force_methods_all_supported(indexed_database):
    query = Query.select("items", Between("price", 1000, 1050))
    for force in ["seq_scan", "sorted_index_scan", "pipelined_index_scan", "cm_scan"]:
        assert force in FORCE_METHODS
        result = indexed_database.query(query, force=force)
        assert result.access_method == force


def test_force_unknown_method_rejected(indexed_database):
    query = Query.select("items", Between("price", 1000, 1050))
    with pytest.raises(ValueError):
        indexed_database.query(query, force="hash_join")


def test_force_inapplicable_method_rejected(indexed_database):
    query = Query.select("items", Equals("noise", 1))
    with pytest.raises(ValueError):
        indexed_database.query(query, force="sorted_index_scan")
    with pytest.raises(ValueError):
        indexed_database.query(query, force="pipelined_index_scan")


def test_estimated_costs_are_positive_and_ordered(indexed_database):
    query = Query.select("items", InSet("price", [10.0, 20.0, 30.0]))
    plans = indexed_database.explain(query)
    assert all(plan["estimated_cost_ms"] > 0 for plan in plans)
    assert plans == sorted(plans, key=lambda p: p["estimated_cost_ms"])


def test_n_lookups_estimation(indexed_database):
    planner = indexed_database.planner
    table = indexed_database.table("items")
    from repro.engine.predicates import PredicateSet

    assert planner._estimate_n_lookups(table, PredicateSet.of(Equals("price", 5.0)), ["price"]) == 1
    assert (
        planner._estimate_n_lookups(
            table, PredicateSet.of(InSet("price", [1.0, 2.0, 3.0])), ["price"]
        )
        == 3
    )
    range_est = planner._estimate_n_lookups(
        table, PredicateSet.of(Between("price", 0, 5000)), ["price"]
    )
    assert range_est > 100  # about half the distinct prices
    assert (
        planner._estimate_n_lookups(table, PredicateSet.of(Equals("noise", 1)), ["price"]) == 1
    )


def test_cm_lookup_estimation_counts_buckets(indexed_database):
    planner = indexed_database.planner
    table = indexed_database.table("items")
    cm = table.correlation_maps["cm_price"]
    from repro.engine.predicates import PredicateSet

    narrow = planner._estimate_cm_lookups(cm, PredicateSet.of(Between("price", 1000, 1100)))
    wide = planner._estimate_cm_lookups(cm, PredicateSet.of(Between("price", 1000, 5000)))
    assert 1 <= narrow <= 5
    assert wide > narrow


class TestLimitAwareSelection:
    """Regression for the ROADMAP gap: selection used to ignore the LIMIT."""

    @pytest.fixture()
    def priced_database(self):
        from repro.bench.harness import ExperimentScale, build_ebay_database

        db, _rows = build_ebay_database(ExperimentScale(0.25))
        db.create_secondary_index("items", "price")
        return db

    QUERY_ARGS = (Between("price", 100_000, 110_000),)

    def test_tiny_limit_flips_the_plan_to_a_terminated_scan(self, priced_database):
        db = priced_database
        table = db.table("items")
        query = Query.select("items", *self.QUERY_ARGS)
        unlimited = db.planner.choose(table, query)
        limited = db.planner.choose(table, query, limit=1)
        # Unlimited, the index plan wins; for one row, its upfront descents
        # cost more than the fraction of a scan that produces one match.
        assert unlimited.method == "sorted_index_scan"
        assert limited.method == "seq_scan"
        assert limited.estimated_cost_ms < unlimited.estimated_cost_ms

    def test_run_query_passes_the_limit_into_selection(self, priced_database):
        db = priced_database
        query = Query.select("items", *self.QUERY_ARGS)
        result = db.run_query(query, limit=1)
        assert result.access_method == "seq_scan"
        assert result.rows_matched == 1
        # A limit larger than the result keeps the unlimited choice.
        roomy = db.run_query(query, limit=10_000_000)
        assert roomy.access_method == "sorted_index_scan"

    def test_explain_reflects_the_query_limit(self, priced_database):
        db = priced_database
        unlimited = db.explain(Query.select("items", *self.QUERY_ARGS))
        limited = db.explain(Query.select("items", *self.QUERY_ARGS, limit=1))
        assert unlimited[0]["method"] == "sorted_index_scan"
        assert limited[0]["method"] == "seq_scan"

    def test_limit_costing_scales_with_the_limit(self, priced_database):
        db = priced_database
        table = db.table("items")
        query = Query.select("items", *self.QUERY_ARGS)
        costs = [
            db.planner.choose(table, query, limit=limit, force="seq_scan").estimated_cost_ms
            for limit in (1, 10, 100)
        ]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_zero_estimated_matches_keeps_full_costing(self, priced_database):
        # A LIMIT that can never be satisfied terminates nothing: candidates
        # must be costed as if the whole table were swept.
        db = priced_database
        table = db.table("items")
        query = Query.select("items", Between("price", -500, -100))
        limited = db.planner.choose(table, query, limit=1, force="seq_scan")
        unlimited = db.planner.choose(table, query, force="seq_scan")
        assert limited.estimated_cost_ms == unlimited.estimated_cost_ms
