"""Tests for cost-based access-path selection."""

import pytest

from repro.engine.access import CorrelationMapScan, SeqScan, SortedIndexScan
from repro.engine.planner import FORCE_METHODS, Planner
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.query import Query


def test_candidate_plans_include_all_applicable_structures(indexed_database):
    query = Query.select("items", Between("price", 1000, 1100))
    plans = indexed_database.explain(query)
    methods = {plan["method"] for plan in plans}
    assert "seq_scan" in methods
    assert "sorted_index_scan" in methods
    assert "cm_scan" in methods


def test_inapplicable_structures_are_skipped(indexed_database):
    # noise has no index and no CM: only the seq scan qualifies.
    query = Query.select("items", Equals("noise", 5))
    plans = indexed_database.explain(query)
    assert {plan["method"] for plan in plans} == {"seq_scan"}


def test_clustered_attribute_predicate_offers_clustered_scan(indexed_database):
    query = Query.select("items", Equals("catid", 42))
    methods = {plan["method"] for plan in indexed_database.explain(query)}
    assert "clustered_index_scan" in methods


def test_selective_query_does_not_choose_seq_scan(indexed_database):
    query = Query.select("items", Equals("cat2", "group7"))
    table = indexed_database.table("items")
    plan = indexed_database.planner.choose(table, query)
    assert plan.method != "seq_scan" or plan.estimated_cost_ms <= min(
        p["estimated_cost_ms"] for p in indexed_database.explain(query)
    )
    result = indexed_database.query(query)
    assert result.access_method in {"cm_scan", "sorted_index_scan", "clustered_index_scan"}


def test_force_methods_all_supported(indexed_database):
    query = Query.select("items", Between("price", 1000, 1050))
    for force in ["seq_scan", "sorted_index_scan", "pipelined_index_scan", "cm_scan"]:
        assert force in FORCE_METHODS
        result = indexed_database.query(query, force=force)
        assert result.access_method == force


def test_force_unknown_method_rejected(indexed_database):
    query = Query.select("items", Between("price", 1000, 1050))
    with pytest.raises(ValueError):
        indexed_database.query(query, force="hash_join")


def test_force_inapplicable_method_rejected(indexed_database):
    query = Query.select("items", Equals("noise", 1))
    with pytest.raises(ValueError):
        indexed_database.query(query, force="sorted_index_scan")
    with pytest.raises(ValueError):
        indexed_database.query(query, force="pipelined_index_scan")


def test_estimated_costs_are_positive_and_ordered(indexed_database):
    query = Query.select("items", InSet("price", [10.0, 20.0, 30.0]))
    plans = indexed_database.explain(query)
    assert all(plan["estimated_cost_ms"] > 0 for plan in plans)
    assert plans == sorted(plans, key=lambda p: p["estimated_cost_ms"])


def test_n_lookups_estimation(indexed_database):
    planner = indexed_database.planner
    table = indexed_database.table("items")
    from repro.engine.predicates import PredicateSet

    assert planner._estimate_n_lookups(table, PredicateSet.of(Equals("price", 5.0)), ["price"]) == 1
    assert (
        planner._estimate_n_lookups(
            table, PredicateSet.of(InSet("price", [1.0, 2.0, 3.0])), ["price"]
        )
        == 3
    )
    range_est = planner._estimate_n_lookups(
        table, PredicateSet.of(Between("price", 0, 5000)), ["price"]
    )
    assert range_est > 100  # about half the distinct prices
    assert (
        planner._estimate_n_lookups(table, PredicateSet.of(Equals("noise", 1)), ["price"]) == 1
    )


def test_cm_lookup_estimation_counts_buckets(indexed_database):
    planner = indexed_database.planner
    table = indexed_database.table("items")
    cm = table.correlation_maps["cm_price"]
    from repro.engine.predicates import PredicateSet

    narrow = planner._estimate_cm_lookups(cm, PredicateSet.of(Between("price", 1000, 1100)))
    wide = planner._estimate_cm_lookups(cm, PredicateSet.of(Between("price", 1000, 5000)))
    assert 1 <= narrow <= 5
    assert wide > narrow
