"""Tests for the columnar batch kernels.

The columnar pass replaced per-row interior loops with compiled/C-driven
batch kernels: ``PredicateSet.batch_kernel`` (one eval-compiled
filter+project comprehension), ``columnar_sort`` (multi-pass
decorate-sort-undecorate), the top-k candidate merge, the grouped
aggregation kernels of ``GroupedAccumulators``, and the sort-merge join's
vectorized merge.  These tests pin each kernel against its row-at-a-time
reference -- same survivors, same order, same values (bit-identical floats)
-- including the edge cases: empty predicate sets, all-rows-filtered
batches, NULLs in predicate and sort columns, and descending non-negatable
types.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.executor import DEFAULT_BATCH_SIZE, _ordering_key_getter, _sorted_with_keys
from repro.engine.plan import (
    SortKey,
    _encode_sort_column,
    columnar_sort,
    sort_key_function,
)
from repro.engine.predicates import (
    Between,
    Equals,
    ExpressionPredicate,
    InSet,
    PredicateSet,
)
from repro.engine.query import Aggregate, Query

from test_batched_executor import assert_parity, run_both


def _rows_with_nulls(n=200, seed=3):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(
            {
                "id": i,
                "name": rng.choice(["ada", "bob", "cid", "dot"]),
                "price": None if rng.random() < 0.2 else rng.uniform(0, 100),
                "qty": rng.randrange(5),
            }
        )
    return rows


class TestBatchFilter:
    def test_empty_predicate_set_returns_rows_unchanged(self):
        rows = [{"a": 1}, {"a": 2}]
        assert PredicateSet().batch_filter(rows) is rows

    def test_all_rows_filtered(self):
        rows = [{"a": value} for value in range(10)]
        assert PredicateSet.of(Equals("a", -1)).batch_filter(rows) == []

    def test_null_values_in_predicate_columns(self):
        rows = [{"a": None}, {"a": 1}, {"a": None}, {"a": 2}]
        assert PredicateSet.of(Equals("a", 1)).batch_filter(rows) == [{"a": 1}]
        assert PredicateSet.of(Equals("a", None)).batch_filter(rows) == [
            {"a": None},
            {"a": None},
        ]
        assert PredicateSet.of(InSet("a", [2, None])).batch_filter(rows) == [
            {"a": None},
            {"a": None},
            {"a": 2},
        ]

    @pytest.mark.parametrize(
        "predicates",
        [
            (Equals("name", "ada"),),
            (InSet("name", ["bob", "cid"]),),
            (Between("qty", 1, 3),),
            (Between("qty", None, 2),),
            (Between("qty", 2, None),),
            (ExpressionPredicate("qty+id", lambda row: (row["qty"] + row["id"]) % 3 == 0),),
            (Between("qty", 1, 4), InSet("name", ["ada", "dot"]), Equals("qty", 2)),
        ],
    )
    def test_compiled_kernel_matches_selectors_and_matches(self, predicates):
        rows = [
            {key: value for key, value in row.items() if key != "price"}
            for row in _rows_with_nulls()
        ]
        predicate_set = PredicateSet(predicates)
        expected = [row for row in rows if predicate_set.matches(row)]
        via_selectors = rows
        for predicate in predicates:
            select = predicate.selector()
            via_selectors = [row for row in via_selectors if select(row)]
        assert predicate_set.batch_filter(rows) == expected
        assert via_selectors == expected

    def test_kernel_with_projection_filters_then_projects(self):
        rows = [{"a": i, "b": i * 10, "c": i * 100} for i in range(6)]
        kernel = PredicateSet.of(Between("a", 2, 4)).batch_kernel(("b", "c"))
        assert kernel(rows) == [
            {"b": 20, "c": 200},
            {"b": 30, "c": 300},
            {"b": 40, "c": 400},
        ]

    def test_projection_only_kernel_from_empty_set(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        assert PredicateSet().batch_kernel(("a",))(rows) == [{"a": 1}, {"a": 3}]

    def test_kernels_are_cached_per_projection(self):
        predicate_set = PredicateSet.of(Equals("a", 1))
        assert predicate_set.batch_kernel() is predicate_set.batch_kernel()
        assert predicate_set.batch_kernel(("a",)) is predicate_set.batch_kernel(("a",))
        assert predicate_set.batch_kernel() is not predicate_set.batch_kernel(("a",))


ORDERINGS = [
    (("price", True),),
    (("price", False),),
    (("name", False),),
    (("name", True), ("price", False)),
    (("qty", False), ("name", True), ("id", True)),
]


class TestColumnarSort:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_matches_sortkey_reference(self, ordering):
        rows = _rows_with_nulls()
        reference = sorted(rows, key=sort_key_function(ordering))
        columnar = list(rows)
        columnar_sort(columnar, ordering)
        assert columnar == reference

    def test_stability_on_ties(self):
        rows = [{"k": value % 2, "seq": i} for i, value in enumerate(range(20))]
        for ascending in (True, False):
            ordered = list(rows)
            columnar_sort(ordered, [("k", ascending)])
            expected = sorted(rows, key=sort_key_function([("k", ascending)]))
            assert ordered == expected

    def test_encode_column_orders_like_sortkey(self):
        for values in ([3, 1, 2], [3.5, None, 1.0], ["b", "a", "c"], [True, False]):
            for ascending in (True, False):
                encoded = _encode_sort_column(list(values), ascending)
                wrapped = [SortKey(value, ascending) for value in values]
                # Compare pairwise ordering decisions instead of sharing a
                # sort: encodings must rank every pair exactly as SortKey.
                for i in range(len(values)):
                    for j in range(len(values)):
                        assert (encoded[i] == encoded[j]) == (wrapped[i] == wrapped[j])
                        assert (encoded[i] < encoded[j]) == (wrapped[i] < wrapped[j])

    def test_sorted_with_keys_matches_ordering_key_getter(self):
        rows = _rows_with_nulls()
        for columns in (["price"], ["name", "qty"], ["price", "id"]):
            keys, ordered = _sorted_with_keys(list(rows), columns)
            key_of = _ordering_key_getter(columns)
            assert ordered == sorted(rows, key=key_of)
            assert keys == [key_of(row) for row in ordered]
        assert _sorted_with_keys([], ["price"]) == ([], [])


def _null_database(batch_size=DEFAULT_BATCH_SIZE):
    rows = _rows_with_nulls(400)
    db = Database(buffer_pool_pages=200, batch_size=batch_size)
    db.create_table("t", sample_row=rows[0], tups_per_page=16)
    db.load("t", rows)
    return db


class TestEndToEndColumnarParity:
    """Whole-query parity on shapes the columnar kernels own, with NULLs."""

    @pytest.mark.parametrize(
        "order_by", [("price",), ("-price",), ("name", "-price"), ("-name", "qty", "id")]
    )
    def test_order_by_with_nulls(self, order_by):
        db = _null_database()
        query = Query.select("t").order_by(*order_by)
        row_result, batched_result = run_both(db, query)
        assert_parity(row_result, batched_result)

    @pytest.mark.parametrize("limit", [1, 7, 100, 1000])
    def test_top_k_with_nulls_and_duplicate_keys(self, limit):
        db = _null_database()
        query = Query.select("t").order_by("-price", "name").with_limit(limit)
        row_result, batched_result = run_both(db, query)
        assert_parity(row_result, batched_result)

    @pytest.mark.parametrize("batch_size", [1, 7, DEFAULT_BATCH_SIZE])
    def test_top_k_across_batch_boundaries(self, batch_size):
        db = _null_database(batch_size=batch_size)
        query = Query.select("t").order_by("qty", "-id").with_limit(13)
        row_result, batched_result = run_both(db, query)
        assert_parity(row_result, batched_result)

    @pytest.mark.parametrize(
        "aggregate",
        [
            Aggregate.count(alias="v"),
            Aggregate.sum("price", alias="v"),
            Aggregate.avg("price", alias="v"),
            Aggregate.count_distinct("price", alias="v"),
        ],
    )
    def test_grouped_aggregates_bit_identical(self, aggregate):
        # price has no NULLs here (sum over None raises in both paths);
        # float sums must come out bit-identical, so == not approx.
        rows = [
            {"id": i, "g": i % 7, "h": i % 3, "price": (i * 0.17) % 13.0}
            for i in range(500)
        ]
        db = Database(buffer_pool_pages=200)
        db.create_table("t", sample_row=rows[0], tups_per_page=16)
        db.load("t", rows)
        for grouping in (["g"], ["g", "h"]):
            query = Query.select("t", aggregate=aggregate).group_by(*grouping)
            row_result, batched_result = run_both(db, query)
            assert_parity(row_result, batched_result)
            assert batched_result.rows == row_result.rows

    def test_fused_projection_over_each_scan_shape(self, indexed_database):
        for force in ("seq_scan", "sorted_index_scan", "pipelined_index_scan"):
            query = Query.select(
                "items", Between("price", 1000, 2500), projection=("itemid", "price")
            )
            row_result, batched_result = run_both(
                indexed_database, query, force=force
            )
            assert row_result.rows_matched > 0
            assert all(set(row) == {"itemid", "price"} for row in batched_result.rows)
            assert_parity(row_result, batched_result)


class TestSortMergeJoinVectorized:
    def _join_db(self, n_outer=300, n_inner=120, batch_size=DEFAULT_BATCH_SIZE):
        rng = random.Random(11)
        outer = [
            {"okey": rng.randrange(60), "opayload": i} for i in range(n_outer)
        ]
        inner = [
            {"ikey": rng.randrange(60), "ipayload": i} for i in range(n_inner)
        ]
        db = Database(buffer_pool_pages=200, batch_size=batch_size)
        db.create_table("outer_t", sample_row=outer[0], tups_per_page=16)
        db.load("outer_t", outer)
        db.create_table("inner_t", sample_row=inner[0], tups_per_page=16)
        db.load("inner_t", inner)
        return db

    def test_duplicate_key_cross_products(self):
        db = self._join_db()
        query = Query.select("outer_t").join("inner_t", on=("okey", "ikey"))
        row_result, batched_result = run_both(
            db, query, force="seq_scan", force_join="sort_merge_join"
        )
        assert row_result.rows_matched > 0
        assert_parity(row_result, batched_result)

    def test_inner_exhausted_before_outer(self):
        # All inner keys sort below the tail of the outer key range, so the
        # row merge abandons the remaining outer groups mid-stream; the
        # vectorized merge must charge identically.
        outer = [{"okey": i % 50, "opayload": i} for i in range(200)]
        inner = [{"ikey": i % 10, "ipayload": i} for i in range(80)]
        db = Database(buffer_pool_pages=200)
        db.create_table("outer_t", sample_row=outer[0], tups_per_page=16)
        db.load("outer_t", outer)
        db.create_table("inner_t", sample_row=inner[0], tups_per_page=16)
        db.load("inner_t", inner)
        query = Query.select("outer_t").join("inner_t", on=("okey", "ikey"))
        row_result, batched_result = run_both(
            db, query, force="seq_scan", force_join="sort_merge_join"
        )
        assert_parity(row_result, batched_result)

    def test_empty_outer_never_reads_inner(self):
        db = self._join_db()
        query = Query.select("outer_t", Equals("okey", -1)).join(
            "inner_t", on=("okey", "ikey")
        )
        row_result, batched_result = run_both(
            db, query, force="seq_scan", force_join="sort_merge_join"
        )
        assert row_result.rows_matched == 0
        assert_parity(row_result, batched_result)

    def test_null_join_keys_match_like_row_path(self):
        outer = [{"okey": None if i % 4 == 0 else i % 9, "o": i} for i in range(80)]
        inner = [{"ikey": None if i % 5 == 0 else i % 9, "i": i} for i in range(60)]
        db = Database(buffer_pool_pages=200)
        db.create_table("outer_t", sample_row={"okey": 0, "o": 0}, tups_per_page=16)
        db.load("outer_t", outer)
        db.create_table("inner_t", sample_row={"ikey": 0, "i": 0}, tups_per_page=16)
        db.load("inner_t", inner)
        query = Query.select("outer_t").join("inner_t", on=("okey", "ikey"))
        row_result, batched_result = run_both(
            db, query, force="seq_scan", force_join="sort_merge_join"
        )
        assert_parity(row_result, batched_result)
