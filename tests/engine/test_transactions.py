"""Tests for transactional logging of maintenance operations."""

import pytest

from repro.engine.transactions import ABORTED, COMMITTED, TransactionManager
from repro.storage.disk import DiskModel
from repro.storage.wal import WriteAheadLog


def make_manager():
    disk = DiskModel()
    wal = WriteAheadLog(disk)
    return disk, wal, TransactionManager(wal)


def test_xids_are_unique_and_increasing():
    _disk, _wal, manager = make_manager()
    t1 = manager.begin()
    t2 = manager.begin()
    assert t2.xid > t1.xid


def test_log_records_tagged_with_xid():
    _disk, wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("insert", {"table": "items"})
    assert wal.records[-1].payload["xid"] == transaction.xid
    assert wal.records[-1].payload["table"] == "items"


def test_two_phase_commit_costs_two_flushes():
    disk, _wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("cm_update")
    transaction.commit(two_phase=True)
    assert disk.counters.log_flushes == 2
    assert manager.stats.transactions == 1
    assert manager.stats.flushes == 2


def test_single_phase_commit_costs_one_flush():
    disk, _wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("insert")
    transaction.commit(two_phase=False)
    assert disk.counters.log_flushes == 1


def test_closed_transaction_rejects_further_use():
    _disk, _wal, manager = make_manager()
    transaction = manager.begin()
    transaction.commit()
    with pytest.raises(RuntimeError):
        transaction.log("insert")
    with pytest.raises(RuntimeError):
        transaction.commit()


def test_abort_closes_without_flush():
    disk, wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("insert")
    transaction.abort()
    assert disk.counters.log_flushes == 0
    assert wal.records[-1].kind == "abort"
    with pytest.raises(RuntimeError):
        transaction.abort()


def test_stats_accumulate_across_transactions():
    _disk, _wal, manager = make_manager()
    for _ in range(3):
        transaction = manager.begin()
        transaction.log("insert")
        transaction.commit(two_phase=False)
    assert manager.stats.transactions == 3
    assert manager.stats.records_logged == 3
    assert manager.stats.flushes == 3


def test_abort_counts_into_stats():
    """Regression: aborts must show up in the transaction totals.

    Historically only commits incremented ``stats.transactions``, so an
    abort-heavy (e.g. conflict-retry) workload under-reported its activity.
    """
    _disk, _wal, manager = make_manager()
    committed = manager.begin()
    committed.log("insert")
    committed.commit()
    for _ in range(2):
        aborted = manager.begin()
        aborted.log("insert")
        aborted.abort()
    assert manager.stats.transactions == 3
    assert manager.stats.aborts == 2
    assert manager.stats.commits == 1


def test_manager_tracks_active_and_final_status():
    _disk, _wal, manager = make_manager()
    t1 = manager.begin()
    t2 = manager.begin()
    assert manager.active == {t1.xid, t2.xid}
    t1.commit()
    t2.abort()
    assert manager.active == set()
    assert manager.status[t1.xid] == COMMITTED
    assert manager.status[t2.xid] == ABORTED


def test_snapshot_visibility_rules():
    _disk, _wal, manager = make_manager()
    committed = manager.begin()
    committed.commit()
    in_flight = manager.begin()
    snapshot = manager.snapshot()
    # Committed before the snapshot: visible.  In flight at snapshot time:
    # invisible, even after it later commits.  Born after: invisible.
    assert snapshot.sees_xid(committed.xid)
    assert not snapshot.sees_xid(in_flight.xid)
    in_flight.commit()
    assert not snapshot.sees_xid(in_flight.xid)
    late = manager.begin()
    late.commit()
    assert not snapshot.sees_xid(late.xid)


def test_own_transaction_sees_itself():
    _disk, _wal, manager = make_manager()
    transaction = manager.begin()
    assert transaction.snapshot.sees_xid(transaction.xid)
    assert not manager.snapshot().sees_xid(transaction.xid)


def test_row_version_visibility():
    _disk, _wal, manager = make_manager()
    writer = manager.begin()
    row = {"k": 1, "_xmin": writer.xid}
    assert not manager.snapshot().visible(row)
    writer.commit()
    assert manager.snapshot().visible(row)
    deleter = manager.begin()
    row["_xmax"] = deleter.xid
    before_delete = manager.snapshot()
    deleter.commit()
    assert before_delete.visible(row)
    assert not manager.snapshot().visible(row)
    # Unversioned (bulk-loaded) rows are visible to everyone.
    assert manager.snapshot().visible({"k": 2})


def test_aborted_versions_stay_invisible_without_undo():
    _disk, _wal, manager = make_manager()
    writer = manager.begin()
    row = {"k": 1, "_xmin": writer.xid}
    writer.abort()
    assert not manager.snapshot().visible(row)
    # A deletion by an aborted transaction is as good as no deletion.
    deleter = manager.begin()
    survivor = {"k": 2, "_xmax": deleter.xid}
    deleter.abort()
    assert manager.snapshot().visible(survivor)


def test_wal_records_for_xid_reconstruct_one_transaction():
    _disk, wal, manager = make_manager()
    first = manager.begin()
    second = manager.begin()
    first.log("insert_version", {"table": "items"})
    second.log("delete_version", {"table": "items"})
    first.commit()  # 2PC: prepare + commit_prepared, both tagged
    second.abort()
    assert [r.kind for r in wal.records_for_xid(first.xid)] == [
        "insert_version",
        "prepare",
        "commit_prepared",
    ]
    assert [r.kind for r in wal.records_for_xid(second.xid)] == [
        "delete_version",
        "abort",
    ]


def test_conflict_detection_is_first_updater_wins():
    _disk, _wal, manager = make_manager()
    first = manager.begin()
    second = manager.begin()
    # A deletion by a live or committed concurrent transaction conflicts;
    # one's own deletion and an aborted one's do not.
    assert manager.is_conflicting(first.xid, against=second.xid)
    assert not manager.is_conflicting(first.xid, against=first.xid)
    first.commit()
    assert manager.is_conflicting(first.xid, against=second.xid)
    second.abort()
    assert not manager.is_conflicting(second.xid, against=first.xid)
