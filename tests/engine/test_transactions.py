"""Tests for transactional logging of maintenance operations."""

import pytest

from repro.engine.transactions import TransactionManager
from repro.storage.disk import DiskModel
from repro.storage.wal import WriteAheadLog


def make_manager():
    disk = DiskModel()
    wal = WriteAheadLog(disk)
    return disk, wal, TransactionManager(wal)


def test_xids_are_unique_and_increasing():
    _disk, _wal, manager = make_manager()
    t1 = manager.begin()
    t2 = manager.begin()
    assert t2.xid > t1.xid


def test_log_records_tagged_with_xid():
    _disk, wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("insert", {"table": "items"})
    assert wal.records[-1].payload["xid"] == transaction.xid
    assert wal.records[-1].payload["table"] == "items"


def test_two_phase_commit_costs_two_flushes():
    disk, _wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("cm_update")
    transaction.commit(two_phase=True)
    assert disk.counters.log_flushes == 2
    assert manager.stats.transactions == 1
    assert manager.stats.flushes == 2


def test_single_phase_commit_costs_one_flush():
    disk, _wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("insert")
    transaction.commit(two_phase=False)
    assert disk.counters.log_flushes == 1


def test_closed_transaction_rejects_further_use():
    _disk, _wal, manager = make_manager()
    transaction = manager.begin()
    transaction.commit()
    with pytest.raises(RuntimeError):
        transaction.log("insert")
    with pytest.raises(RuntimeError):
        transaction.commit()


def test_abort_closes_without_flush():
    disk, wal, manager = make_manager()
    transaction = manager.begin()
    transaction.log("insert")
    transaction.abort()
    assert disk.counters.log_flushes == 0
    assert wal.records[-1].kind == "abort"
    with pytest.raises(RuntimeError):
        transaction.abort()


def test_stats_accumulate_across_transactions():
    _disk, _wal, manager = make_manager()
    for _ in range(3):
        transaction = manager.begin()
        transaction.log("insert")
        transaction.commit(two_phase=False)
    assert manager.stats.transactions == 3
    assert manager.stats.records_logged == 3
    assert manager.stats.flushes == 3
