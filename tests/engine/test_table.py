"""Tests for Table: clustering, bucket assignment, index/CM lifecycle."""

import pytest

from repro.core.bucketing import WidthBucketer
from repro.engine.database import Database
from repro.engine.table import BUCKET_COLUMN, TAIL_BUCKET
from tests.engine.conftest import make_rows


def test_load_and_row_counts(database):
    table = database.table("items")
    assert table.num_rows == 5000
    assert table.num_pages == 100  # 5000 rows at 50 per page
    assert "items" in table.describe()


def test_cluster_orders_heap_physically(database):
    table = database.table("items")
    catids = [row["catid"] for row in table.all_rows()]
    assert catids == sorted(catids)
    assert table.is_clustered
    assert table.clustered_attribute == "catid"
    assert not table.tail_pages()


def test_cluster_on_unknown_column_raises(database):
    with pytest.raises(KeyError):
        database.cluster("items", "nope")


def test_bucket_column_assigned_to_every_row(database):
    table = database.table("items")
    assert table.has_clustered_buckets
    assert table.schema.has_column(BUCKET_COLUMN)
    bucket_ids = [row[BUCKET_COLUMN] for row in table.all_rows()]
    assert all(isinstance(b, int) and b >= 0 for b in bucket_ids)
    # Bucket ids are non-decreasing in physical order and start at zero.
    assert bucket_ids == sorted(bucket_ids)
    assert bucket_ids[0] == 0
    # ~4 pages of 50 tuples per bucket.
    buckets = max(bucket_ids) + 1
    assert 20 <= buckets <= 30


def test_no_clustered_value_spans_two_buckets(database):
    table = database.table("items")
    value_to_buckets = {}
    for row in table.all_rows():
        value_to_buckets.setdefault(row["catid"], set()).add(row[BUCKET_COLUMN])
    assert all(len(buckets) == 1 for buckets in value_to_buckets.values())


def test_bucket_for_value(database):
    table = database.table("items")
    sample = next(iter(table.all_rows()))
    assert table.bucket_for_value(sample["catid"]) == sample[BUCKET_COLUMN]
    assert table.bucket_for_value(10_000_000) == TAIL_BUCKET


def test_cluster_without_buckets(item_rows):
    db = Database(buffer_pool_pages=200)
    db.create_table("items", sample_row=item_rows[0], tups_per_page=50)
    db.load("items", item_rows)
    db.cluster("items", "catid")
    table = db.table("items")
    assert table.is_clustered
    assert not table.has_clustered_buckets
    assert not table.schema.has_column(BUCKET_COLUMN)


def test_create_secondary_index_and_duplicate_rejected(database):
    table = database.table("items")
    index = table.create_secondary_index("price")
    assert index.num_entries == table.num_rows
    with pytest.raises(ValueError):
        table.create_secondary_index("price")
    with pytest.raises(KeyError):
        table.create_secondary_index("nope")


def test_create_cm_requires_clustering(item_rows):
    db = Database(buffer_pool_pages=200)
    db.create_table("items", sample_row=item_rows[0])
    db.load("items", item_rows)
    with pytest.raises(RuntimeError):
        db.create_correlation_map("items", ["price"])


def test_create_cm_maps_to_bucket_ids(database):
    table = database.table("items")
    cm = table.create_correlation_map(["cat2"])
    assert table.cm_uses_buckets(cm.name)
    targets = cm.lookup({"cat2": "group3"})
    assert targets
    assert all(isinstance(t, int) for t in targets)


def test_create_cm_with_raw_clustered_values(database):
    table = database.table("items")
    cm = table.create_correlation_map(["cat2"], use_clustered_buckets=False, name="raw")
    assert not table.cm_uses_buckets("raw")
    targets = cm.lookup({"cat2": "group3"})
    # group3 rolls up catids 30..39.
    assert targets == list(range(30, 40))


def test_cm_duplicate_and_unknown_column_rejected(database):
    table = database.table("items")
    table.create_correlation_map(["price"], name="cm1")
    with pytest.raises(ValueError):
        table.create_correlation_map(["price"], name="cm1")
    with pytest.raises(KeyError):
        table.create_correlation_map(["nope"])


def test_drop_structures(database):
    table = database.table("items")
    table.create_secondary_index("price", name="idx")
    table.create_correlation_map(["price"], name="cm")
    table.drop_secondary_index("idx")
    table.drop_correlation_map("cm")
    assert not table.secondary_indexes
    assert not table.correlation_maps


def test_insert_row_maintains_all_structures(database):
    table = database.table("items")
    index = table.create_secondary_index("price")
    cm = table.create_correlation_map(["price"], bucketers={"price": WidthBucketer(64)})
    new_row = {"itemid": 99999, "catid": 5, "cat2": "group0", "price": 550.0, "noise": 1}
    before_entries = index.num_entries
    rid = table.insert_row(new_row)
    assert table.num_rows == 5001
    assert index.num_entries == before_entries + 1
    assert rid.page_no in table.tail_pages()
    # The CM saw the row under the tail bucket.
    assert TAIL_BUCKET in cm.lookup({"price": 550.0})


def test_delete_row_maintains_all_structures(database):
    table = database.table("items")
    index = table.create_secondary_index("price")
    cm = table.create_correlation_map(["cat2"])
    rid, row = next(iter(table.heap.scan(charge_io=False)))
    assert table.delete_row(rid) == row
    assert table.num_rows == 4999
    assert index.num_entries == 4999
    assert table.delete_row(rid) is None  # already gone


def test_row_moving_across_bucket_boundary_updates_cm(database):
    """Delete + re-insert (the engine's update) moves a row's CM target from
    its old clustered bucket to the tail bucket; a lone key is evicted."""
    table = database.table("items")
    cm = table.create_correlation_map(["itemid"])
    rid, row = next(iter(table.heap.scan(charge_io=False)))
    old_bucket = row[BUCKET_COLUMN]
    assert cm.lookup({"itemid": row["itemid"]}) == [old_bucket]
    moved = dict(table.delete_row(rid))
    # itemid is unique, so dropping its only co-occurrence evicts the key.
    assert cm.lookup({"itemid": moved["itemid"]}) == []
    table.insert_row({k: v for k, v in moved.items() if k != BUCKET_COLUMN})
    assert cm.lookup({"itemid": moved["itemid"]}) == [TAIL_BUCKET]


def test_statistics_follow_inserts_and_deletes(database):
    table = database.table("items")
    stats = table.statistics
    assert stats.total_rows == table.num_rows
    assert stats.sample_is_complete
    low, high = table.attribute_range("price")
    assert low <= high
    rid = table.insert_row(
        {"itemid": 777_777, "catid": 5, "cat2": "group0", "price": 99_999.0, "noise": 0}
    )
    assert stats.total_rows == table.num_rows
    assert table.attribute_range("price")[1] == 99_999.0
    table.delete_row(rid)
    assert stats.total_rows == table.num_rows
    assert stats.sample_is_complete


def test_reclustering_rebuilds_indexes_and_cms(database):
    table = database.table("items")
    index = table.create_secondary_index("price")
    cm = table.create_correlation_map(["cat2"])
    table.cluster_on("itemid", pages_per_bucket=4)
    # Structures were rebuilt against the new physical layout.
    rebuilt_index = table.secondary_indexes[index.name]
    assert rebuilt_index.num_entries == table.num_rows
    rebuilt_cm = table.correlation_maps[cm.name]
    assert rebuilt_cm.clustered_attribute == "itemid"
    assert rebuilt_cm.total_rows_represented == table.num_rows


def test_table_profile_and_correlation_profile(database):
    table = database.table("items")
    profile = table.table_profile()
    assert profile.total_tups == 5000
    assert profile.tups_per_page == 50
    corr = table.correlation_profile("price")
    assert corr.c_per_u == pytest.approx(1.0, abs=0.01)  # price determines catid
    weak = table.correlation_profile("noise")
    assert weak.c_per_u > 3
    assert table.attribute_cardinality("cat2") == 10


def test_pages_for_targets_value_mode_includes_tail(database):
    table = database.table("items")
    table.insert_row(
        {"itemid": 1_000_000, "catid": 7, "cat2": "group0", "price": 1.0, "noise": 0}
    )
    pages = table.pages_for_targets([7], uses_buckets=False)
    assert set(table.tail_pages()) <= set(pages)
