"""Partitioned tables: spec validation, routing, pruning, execution parity.

The differential fuzzer (``test_fuzz_parity.py::test_fuzz_partition_parity``)
guards the long tail of random shapes; this suite pins the curated corners:
the :class:`PartitionSpec` contract, row routing, static pruning decisions,
the exchange plan (rendering, early termination under LIMIT), DML routing,
and bit-identical counters across serial / batched / scheduler / parallel
execution of one partitioned layout.
"""

import pytest

from repro.engine.database import Database
from repro.engine.parallel import FORK_AVAILABLE, parallel_supported
from repro.engine.partition import PartitionSpec, stable_partition_hash
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Aggregate, Query

NUM_ROWS = 1_200
NUM_CATS = 40


def build_rows():
    rows = []
    for i in range(NUM_ROWS):
        rows.append(
            {
                "itemid": i,
                "catid": (i * 7) % NUM_CATS,
                "price": float((i * 37) % 1000),
                "qty": i % 15,
            }
        )
    return rows


def build_database(spec=None, **kwargs):
    rows = build_rows()
    db = Database(buffer_pool_pages=200, **kwargs)
    db.create_table("items", sample_row=rows[0], tups_per_page=40, partition_by=spec)
    db.load("items", rows)
    return db


# ---------------------------------------------------------------------------
# PartitionSpec validation and routing
# ---------------------------------------------------------------------------

class TestPartitionSpec:
    def test_range_boundaries_must_match_partition_count(self):
        with pytest.raises(ValueError, match="num_partitions - 1"):
            PartitionSpec(key="k", method="range", num_partitions=3, boundaries=(10,))

    def test_range_boundaries_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            PartitionSpec.by_range("k", [10, 10])
        with pytest.raises(ValueError, match="ascending"):
            PartitionSpec.by_range("k", [20, 10])

    def test_hash_takes_no_boundaries(self):
        with pytest.raises(ValueError, match="no boundaries"):
            PartitionSpec(key="k", method="hash", num_partitions=2, boundaries=(1,))

    def test_unknown_method_and_empty_key_rejected(self):
        with pytest.raises(ValueError, match="method"):
            PartitionSpec(key="k", method="round_robin", num_partitions=2)
        with pytest.raises(ValueError, match="key"):
            PartitionSpec.by_hash("", 2)

    def test_at_least_one_partition(self):
        with pytest.raises(ValueError, match="at least 1"):
            PartitionSpec(key="k", method="hash", num_partitions=0)

    def test_partition_key_must_be_a_column(self):
        rows = build_rows()
        db = Database()
        with pytest.raises(KeyError, match="nope"):
            db.create_table(
                "items",
                sample_row=rows[0],
                partition_by=PartitionSpec.by_hash("nope", 4),
            )

    def test_range_routing_follows_boundaries(self):
        spec = PartitionSpec.by_range("catid", [10, 20, 30])
        assert spec.partition_of(-5) == 0
        assert spec.partition_of(9) == 0
        assert spec.partition_of(10) == 1  # boundary value goes right
        assert spec.partition_of(29) == 2
        assert spec.partition_of(30) == 3
        assert spec.partition_of(999) == 3

    def test_hash_routing_is_process_stable(self):
        # CRC32 over repr: fixed values pin the routing across processes
        # and Python versions (PYTHONHASHSEED must not matter).
        assert stable_partition_hash(7) == stable_partition_hash(7)
        spec = PartitionSpec.by_hash("catid", 4)
        routed = {value: spec.partition_of(value) for value in range(NUM_CATS)}
        assert set(routed.values()) == {0, 1, 2, 3}  # all shards populated

    def test_single_partition_degenerate_specs(self):
        assert PartitionSpec.by_range("k", []).num_partitions == 1
        assert PartitionSpec.by_hash("k", 1).partition_of("anything") == 0


class TestRouting:
    def test_load_routes_every_row_to_its_partition(self):
        spec = PartitionSpec.by_range("catid", [10, 20, 30])
        db = build_database(spec)
        table = db.table("items")
        assert table.num_rows == NUM_ROWS
        for index, partition in enumerate(table.partitions):
            for row in partition.all_rows():
                assert spec.partition_of(row["catid"]) == index

    def test_insert_and_delete_route_by_key(self):
        spec = PartitionSpec.by_hash("catid", 4)
        db = build_database(spec)
        table = db.table("items")
        target = spec.partition_of(NUM_CATS + 1)
        before = table.partitions[target].num_rows
        db.insert("items", [{"itemid": 10_000, "catid": NUM_CATS + 1,
                             "price": 1.0, "qty": 1}])
        assert table.partitions[target].num_rows == before + 1
        result = db.delete("items", [Equals("catid", NUM_CATS + 1)])
        assert result.rows_affected == 1
        assert table.partitions[target].num_rows == before
        assert table.num_rows == NUM_ROWS


# ---------------------------------------------------------------------------
# Static pruning
# ---------------------------------------------------------------------------

class TestPruning:
    RANGE = PartitionSpec.by_range("catid", [10, 20, 30])
    HASH = PartitionSpec.by_hash("catid", 4)

    def test_equals_pins_one_partition(self):
        assert self.RANGE.prune(PredicateSet([Equals("catid", 15)])) == (1,)
        expected = (self.HASH.partition_of(15),)
        assert self.HASH.prune(PredicateSet([Equals("catid", 15)])) == expected

    def test_inset_unions_partitions(self):
        assert self.RANGE.prune(PredicateSet([InSet("catid", [5, 35])])) == (0, 3)
        survivors = self.HASH.prune(PredicateSet([InSet("catid", [5, 35])]))
        assert survivors == tuple(
            sorted({self.HASH.partition_of(5), self.HASH.partition_of(35)})
        )

    def test_between_prunes_range_to_the_span(self):
        assert self.RANGE.prune(
            PredicateSet([Between("catid", 12, 25)])
        ) == (1, 2)

    def test_between_cannot_prune_hash(self):
        assert self.HASH.prune(
            PredicateSet([Between("catid", 12, 25)])
        ) == (0, 1, 2, 3)

    def test_non_key_predicates_keep_every_partition(self):
        assert self.RANGE.prune(PredicateSet([Equals("qty", 3)])) == (0, 1, 2, 3)
        assert self.RANGE.prune(PredicateSet([])) == (0, 1, 2, 3)

    def test_unorderable_bounds_fall_back_to_all(self):
        assert self.RANGE.prune(
            PredicateSet([Between("catid", "a", "b")])
        ) == (0, 1, 2, 3)


# ---------------------------------------------------------------------------
# The exchange plan
# ---------------------------------------------------------------------------

class TestExchangePlans:
    def test_pruned_query_reads_only_surviving_partitions(self):
        db = build_database(PartitionSpec.by_range("catid", [10, 20, 30]))
        table = db.table("items")
        result = db.run_query(
            Query.select("items", Equals("catid", 15), aggregate=Aggregate.count()),
            cold_cache=True,
        )
        survivor = table.partitions[1]
        assert result.pages_visited == survivor.num_pages
        # Only the survivor's device saw I/O.
        for index, device in enumerate(table.devices):
            expected = survivor.num_pages if index == 1 else 0
            assert device.snapshot().pages_read == expected

    def test_explain_analyze_renders_exchange_counts(self):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        pruned = db.explain_analyze(
            Query.select("items", Equals("catid", 3), aggregate=Aggregate.count()),
            cold_cache=True,
        )
        assert "exchange[hash(catid), partitions scanned est=1 act=1, pruned=3/4]" in pruned
        full = db.explain_analyze(
            Query.select("items", aggregate=Aggregate.count()), cold_cache=True
        )
        assert "partitions scanned est=4 act=4, pruned=0/4" in full
        assert full.count("seq_scan(items::p") == 4

    def test_limit_stops_the_exchange_early(self):
        db = build_database(PartitionSpec.by_range("catid", [10, 20, 30]))
        result = db.run_query(
            Query.select("items", limit=5), cold_cache=True
        )
        exchange = result.plan
        while exchange is not None and exchange.name != "exchange":
            exchange = exchange.children[0] if exchange.children else None
        assert exchange is not None
        assert exchange.partitions_scanned == 1  # 5 rows from the first partition
        assert len(result.rows) == 5

    def test_explain_lists_partitioned_candidates(self):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        plans = db.explain(Query.select("items", Equals("catid", 3)))
        assert plans, "no partitioned candidates"
        assert any("exchange" in plan["structure"] for plan in plans)

    def test_order_by_limit_uses_merge_exchange(self):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        flat = build_database()
        query = Query.select("items", order_by=["price", "itemid"], limit=10)
        expected = flat.run_query(query, cold_cache=True).rows
        result = db.run_query(query, cold_cache=True)
        assert result.rows == expected
        rendered = db.explain_analyze(query, cold_cache=True)
        assert "merge_exchange[" in rendered
        assert "topk" in rendered


# ---------------------------------------------------------------------------
# Partition-wise joins
# ---------------------------------------------------------------------------

def build_join_database(items_spec=None, cats_spec=None):
    db = build_database(items_spec)
    cats = [{"catid": c, "label": f"c{c}"} for c in range(NUM_CATS)]
    db.create_table(
        "cats", sample_row=cats[0], tups_per_page=40, partition_by=cats_spec
    )
    db.load("cats", cats)
    return db


JOIN_QUERY = Query.select("items", order_by=["itemid"]).join("cats", on="catid")


class TestPartitionJoins:
    def expected_rows(self):
        return build_join_database().run_query(JOIN_QUERY, cold_cache=True).rows

    def test_co_partitioned_join_matches_flat(self):
        spec = PartitionSpec.by_hash("catid", 4)
        db = build_join_database(spec, spec)
        result = db.run_query(JOIN_QUERY, cold_cache=True)
        assert result.rows == self.expected_rows()
        plans = db.explain(JOIN_QUERY)
        assert any(
            "co-partitioned with cats" in plan["structure"] for plan in plans
        )

    def test_flat_build_side_offers_broadcast_and_repartition(self):
        db = build_join_database(PartitionSpec.by_hash("catid", 4))
        result = db.run_query(JOIN_QUERY, cold_cache=True)
        assert result.rows == self.expected_rows()
        structures = [plan["structure"] for plan in db.explain(JOIN_QUERY)]
        assert any("broadcast cats" in s for s in structures)
        assert any("repartition cats" in s for s in structures)

    def test_repartition_bridges_incompatible_layouts(self):
        db = build_join_database(
            PartitionSpec.by_hash("catid", 4),
            PartitionSpec.by_range("catid", [10, 20, 30]),
        )
        result = db.run_query(JOIN_QUERY, cold_cache=True)
        assert result.rows == self.expected_rows()
        structures = [plan["structure"] for plan in db.explain(JOIN_QUERY)]
        assert any("repartition cats" in s for s in structures)

    def test_incompatible_layouts_with_repartition_disabled_raise(self):
        db = build_join_database(
            PartitionSpec.by_hash("catid", 4),
            PartitionSpec.by_range("catid", [10, 20, 30]),
        )
        db.enable_repartition = False
        with pytest.raises(ValueError, match="enable_repartition"):
            db.run_query(JOIN_QUERY)
        with pytest.raises(ValueError, match="enable_repartition"):
            db.explain(JOIN_QUERY)

    def test_join_off_the_partition_key_needs_a_flat_build_side(self):
        # Joining on a non-key column cannot route a repartition, and the
        # build side is itself partitioned: genuinely unsupported.
        db = build_join_database(
            PartitionSpec.by_hash("itemid", 4),
            PartitionSpec.by_hash("catid", 2),
        )
        with pytest.raises(ValueError, match="partition key"):
            db.run_query(Query.select("items").join("cats", on="catid"))

    def test_three_way_joins_over_partitioned_tables_are_rejected(self):
        db = build_join_database(PartitionSpec.by_hash("catid", 4))
        labels = [{"label": f"c{c}", "note": f"n{c}"} for c in range(NUM_CATS)]
        db.create_table("labels", sample_row=labels[0], tups_per_page=40)
        db.load("labels", labels)
        query = (
            Query.select("items").join("cats", on="catid").join("labels", on="label")
        )
        with pytest.raises(ValueError, match="exactly two tables"):
            db.run_query(query)

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_parallel_join_matches_serial(self):
        spec = PartitionSpec.by_hash("catid", 4)
        for cats_spec in (spec, None):
            db = build_join_database(spec, cats_spec)
            reference = run_cold(db, JOIN_QUERY)
            candidate = run_cold(db, JOIN_QUERY, parallel=2)
            context = f"join cats_spec={cats_spec!r}"
            assert_identical_stats(reference, candidate, context=context)
            assert candidate.rows == reference.rows

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_parallel_ordered_limit_join_matches_serial(self):
        spec = PartitionSpec.by_hash("catid", 4)
        db = build_join_database(spec, spec)
        query = Query.select(
            "items", order_by=["-price", "itemid"], limit=7
        ).join("cats", on="catid")
        reference = run_cold(db, query)
        candidate = run_cold(db, query, parallel=2)
        assert_identical_stats(reference, candidate, context="ordered limit join")
        assert candidate.rows == reference.rows
        assert len(candidate.rows) == 7


# ---------------------------------------------------------------------------
# Execution-mode parity (curated; the fuzzer widens this)
# ---------------------------------------------------------------------------

PARITY_QUERIES = [
    Query.select("items", aggregate=Aggregate.sum("qty"), name="sum_all"),
    Query.select("items", Between("qty", 3, 9), name="rows", order_by=["itemid"]),
    Query.select(
        "items", aggregate=Aggregate.count(alias="n"), group_by=["catid"], name="grp"
    ),
]


def run_cold(db, query, *, batch_size=-1, parallel=None):
    if batch_size != -1:
        db.batch_size = batch_size
    db.reset_measurements()
    return db.run_query(query, cold_cache=True, parallel=parallel)


def assert_identical_stats(reference, candidate, *, context):
    assert candidate.rows_examined == reference.rows_examined, context
    assert candidate.rows_matched == reference.rows_matched, context
    assert candidate.pages_visited == reference.pages_visited, context
    assert candidate.io == reference.io, context
    assert candidate.elapsed_ms == reference.elapsed_ms, context


class TestExecutionParity:
    @pytest.mark.parametrize("query", PARITY_QUERIES, ids=lambda q: q.name)
    def test_batched_matches_serial(self, query):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        reference = run_cold(db, query, batch_size=None)
        for batch_size in (1, 7, 256):
            candidate = run_cold(db, query, batch_size=batch_size)
            assert_identical_stats(
                reference, candidate, context=f"{query.name} batch={batch_size}"
            )
            assert candidate.rows == reference.rows
            assert candidate.value == reference.value

    @pytest.mark.parametrize("query", PARITY_QUERIES, ids=lambda q: q.name)
    def test_scheduler_matches_serial(self, query):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        reference = run_cold(db, query)
        db.reset_measurements()
        db.drop_caches()
        (candidate,) = db.run_concurrent([query])
        assert_identical_stats(reference, candidate, context=f"{query.name} scheduled")
        assert candidate.rows == reference.rows
        assert candidate.value == reference.value

    def test_interleaved_disjoint_queries_match_solo_runs(self):
        spec = PartitionSpec.by_range("catid", [10, 20, 30])
        db = build_database(spec)
        left = Query.select(
            "items", Between("catid", 0, 9), aggregate=Aggregate.count(), name="left"
        )
        right = Query.select(
            "items", Between("catid", 21, 29), aggregate=Aggregate.count(), name="right"
        )
        solo = [run_cold(db, query) for query in (left, right)]
        db.reset_measurements()
        db.drop_caches()
        together = db.run_concurrent([left, right], max_concurrent=2)
        for reference, candidate in zip(solo, together):
            assert_identical_stats(
                reference, candidate, context=candidate.query.name
            )
            assert candidate.value == reference.value

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    @pytest.mark.parametrize("query", PARITY_QUERIES, ids=lambda q: q.name)
    def test_parallel_matches_serial(self, query):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        reference = run_cold(db, query)
        candidate = run_cold(db, query, parallel=2)
        assert_identical_stats(reference, candidate, context=f"{query.name} parallel")
        assert candidate.rows_emitted == reference.rows_emitted
        # qty sums are integer, group counts are integer: exact even merged
        # from per-partition partials.
        assert candidate.value == reference.value
        assert candidate.rows == reference.rows

    @pytest.mark.skipif(not FORK_AVAILABLE, reason="fork start method unavailable")
    def test_parallel_declines_limits_and_single_partitions(self):
        db = build_database(PartitionSpec.by_hash("catid", 4))
        overrides = dict(force=None, force_join=None, limit=None, projection=None)
        limited = db._prepare(Query.select("items", limit=5), **overrides)
        assert not parallel_supported(limited)
        pinned = db._prepare(Query.select("items", Equals("catid", 3)), **overrides)
        assert not parallel_supported(pinned)
        full = db._prepare(Query.select("items"), **overrides)
        assert parallel_supported(full)
