"""Tests for selection predicates."""

import pytest

from repro.engine.predicates import (
    Between,
    Equals,
    ExpressionPredicate,
    InSet,
    PredicateSet,
)


ROW = {"city": "Boston", "price": 120, "g": 10, "rho": 14}


def test_equals():
    predicate = Equals("city", "Boston")
    assert predicate.matches(ROW)
    assert not predicate.matches({"city": "Toledo"})
    assert predicate.lookup_values == ("Boston",)
    assert predicate.constraint().matches("Boston")
    assert "city" in predicate.describe()


def test_in_set():
    predicate = InSet("city", ["Boston", "Springfield"])
    assert predicate.matches(ROW)
    assert not predicate.matches({"city": "Toledo"})
    assert predicate.lookup_values == ("Boston", "Springfield")
    assert predicate.constraint().matches("Springfield")


def test_in_set_accepts_any_iterable():
    predicate = InSet("price", range(3))
    assert predicate.values == (0, 1, 2)


def test_between_inclusive():
    predicate = Between("price", 100, 120)
    assert predicate.matches(ROW)
    assert predicate.matches({"price": 100})
    assert not predicate.matches({"price": 99})
    assert not predicate.matches({"price": 121})


def test_between_open_bounds():
    assert Between("price", low=100).matches({"price": 1_000_000})
    assert Between("price", high=100).matches({"price": -5})
    with pytest.raises(ValueError):
        Between("price")


def test_expression_predicate():
    predicate = ExpressionPredicate("g + rho", lambda row: 23 <= row["g"] + row["rho"] <= 25)
    assert predicate.matches(ROW)
    assert not predicate.matches({"g": 1, "rho": 1})
    # Expression predicates are residual-only: unconstrained at the CM level.
    assert predicate.constraint().matches("anything")


def test_predicate_set_conjunction():
    predicates = PredicateSet.of(Equals("city", "Boston"), Between("price", 100, 200))
    assert predicates.matches(ROW)
    assert not predicates.matches({"city": "Boston", "price": 999})
    assert predicates.attributes == ("city", "price")
    assert len(predicates) == 2
    assert bool(predicates)


def test_empty_predicate_set_matches_everything():
    predicates = PredicateSet()
    assert predicates.matches(ROW)
    assert not predicates
    assert predicates.describe() == "TRUE"


def test_indexable_excludes_expressions():
    predicates = PredicateSet.of(
        Equals("city", "Boston"),
        ExpressionPredicate("expr", lambda row: True),
    )
    assert [p.attribute for p in predicates.indexable_predicates()] == ["city"]
    assert set(predicates.constraints()) == {"city"}


def test_on_attribute():
    predicates = PredicateSet.of(Equals("city", "Boston"), Between("price", 1, 2))
    assert isinstance(predicates.on_attribute("price"), Between)
    assert predicates.on_attribute("missing") is None


def test_describe_mentions_all_predicates():
    predicates = PredicateSet.of(Equals("a", 1), InSet("b", [1, 2]), Between("c", 0, 9))
    text = predicates.describe()
    assert "a = 1" in text and "b IN" in text and "BETWEEN" in text
