"""Tests for the streaming executor: iter_rows, LIMIT early termination,
projection, and the Database.run_query / stream entry points."""

import pytest

from repro.engine.executor import ExecutionContext
from repro.engine.predicates import Between, Equals, PredicateSet
from repro.engine.query import Aggregate, Query


ALL_METHODS = ["seq_scan", "sorted_index_scan", "pipelined_index_scan", "cm_scan"]


def planned_path(db, query, force):
    table = db.table(query.table)
    return db.planner.choose(table, query, force=force).path


class TestIterRows:
    @pytest.mark.parametrize("force", ALL_METHODS + ["clustered_index_scan"])
    def test_iter_rows_agrees_with_execute(self, indexed_database, force):
        if force == "clustered_index_scan":
            query = Query.select("items", Equals("catid", 42))
        else:
            query = Query.select("items", Between("price", 1000, 1100))
        path = planned_path(indexed_database, query, force)
        streamed = sorted(r["itemid"] for r in path.iter_rows())
        path2 = planned_path(indexed_database, query, force)
        materialised = sorted(r["itemid"] for r in path2.execute().rows)
        assert streamed == materialised
        assert streamed

    def test_execute_counters_match_context(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1100))
        path = planned_path(indexed_database, query, "sorted_index_scan")
        context = ExecutionContext()
        result = path.execute(context)
        assert result.rows_examined == context.counters.rows_examined
        assert result.pages_visited == context.counters.pages_visited
        assert result.lookups == context.counters.lookups
        assert context.counters.rows_emitted == len(result.rows)


class TestLimit:
    def test_seq_scan_limit_stops_sweeping(self, indexed_database):
        table = indexed_database.table("items")
        query = Query.select("items", Between("price", 0, 20_000), limit=5)
        result = indexed_database.run_query(query, force="seq_scan")
        assert result.rows_matched == 5
        assert result.pages_visited < table.num_pages
        assert result.rows_examined < table.num_rows

    @pytest.mark.parametrize("force", ALL_METHODS)
    def test_limit_caps_rows_for_every_method(self, indexed_database, force):
        query = Query.select("items", Between("price", 1000, 1100))
        full = indexed_database.run_query(query, force=force, cold_cache=True)
        assert full.rows_matched > 3
        limited = indexed_database.run_query(
            query, force=force, cold_cache=True, limit=3
        )
        assert limited.rows_matched == 3
        assert limited.pages_visited <= full.pages_visited

    def test_limit_zero_reads_nothing(self, indexed_database):
        query = Query.select("items", Between("price", 0, 20_000), limit=0)
        result = indexed_database.run_query(query, force="seq_scan")
        assert result.rows_matched == 0
        assert result.pages_visited == 0

    def test_limit_beyond_matches_returns_all(self, indexed_database):
        query = Query.select("items", Equals("catid", 42))
        full = indexed_database.run_query(query)
        limited = indexed_database.run_query(query, limit=10_000_000)
        assert limited.rows_matched == full.rows_matched

    def test_query_level_limit_and_describe(self, indexed_database):
        query = Query.select("items", Equals("catid", 42), limit=2)
        assert query.describe().endswith("LIMIT 2")
        result = indexed_database.run_query(query)
        assert result.rows_matched == 2

    def test_limit_with_aggregate_rejected(self):
        with pytest.raises(ValueError):
            Query.select("items", Equals("catid", 1), aggregate=Aggregate.count(), limit=3)

    def test_run_query_override_with_aggregate_rejected(self, indexed_database):
        query = Query.select("items", Equals("catid", 1), aggregate=Aggregate.count())
        with pytest.raises(ValueError):
            indexed_database.run_query(query, limit=3)
        with pytest.raises(ValueError):
            indexed_database.run_query(query, projection=("catid",))


class TestProjection:
    def test_projection_trims_columns(self, indexed_database):
        query = Query.select(
            "items", Between("price", 1000, 1100), projection=("itemid", "price")
        )
        result = indexed_database.run_query(query, force="seq_scan")
        assert result.rows_matched > 0
        assert all(set(row) == {"itemid", "price"} for row in result.rows)

    def test_unknown_projection_column_rejected_up_front(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1100))
        with pytest.raises(ValueError, match="unknown column"):
            indexed_database.run_query(query, projection=("pricee",))
        with pytest.raises(ValueError, match="unknown column"):
            indexed_database.stream(query, projection=("nope",))

    def test_residual_predicates_see_unprojected_columns(self, indexed_database):
        # The predicate is on price, the projection drops it.
        query = Query.select("items", Between("price", 1000, 1100), projection=("itemid",))
        result = indexed_database.run_query(query, force="cm_scan")
        reference = indexed_database.run_query(
            Query.select("items", Between("price", 1000, 1100)), force="cm_scan"
        )
        assert result.rows_matched == reference.rows_matched
        assert all(set(row) == {"itemid"} for row in result.rows)


class TestStream:
    def test_stream_yields_matching_rows(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1100))
        streamed = sorted(r["itemid"] for r in indexed_database.stream(query))
        reference = indexed_database.run_query(query)
        assert streamed == sorted(r["itemid"] for r in reference.rows)

    def test_abandoned_stream_reads_fewer_pages(self, indexed_database):
        table = indexed_database.table("items")
        query = Query.select("items", Between("price", 0, 20_000))
        before = table.heap.logical_page_reads
        iterator = indexed_database.stream(query, force="seq_scan")
        for _ in range(3):
            next(iterator)
        iterator.close()
        assert table.heap.logical_page_reads - before < table.num_pages

    def test_abandoned_stream_still_charges_cpu_for_examined_rows(self, indexed_database):
        db = indexed_database
        query = Query.select("items", Between("price", 0, 20_000))
        before = db.disk.snapshot()
        iterator = db.stream(query, force="seq_scan")
        for _ in range(3):
            next(iterator)
        iterator.close()
        window = db.disk.window_since(before)
        assert window.cpu_tuples >= 3

    def test_stream_rejects_aggregates(self, indexed_database):
        query = Query.select("items", Equals("catid", 1), aggregate=Aggregate.count())
        with pytest.raises(ValueError):
            indexed_database.stream(query)


class TestContext:
    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext(limit=-1)

    def test_emit_counts_and_projects(self):
        context = ExecutionContext(projection=("a",))
        row = context.emit({"a": 1, "b": 2})
        assert row == {"a": 1}
        assert context.counters.rows_emitted == 1
