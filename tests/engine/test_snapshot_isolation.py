"""Isolation-anomaly suite: snapshot isolation under deterministic interleavings.

The classic anomalies -- dirty read, non-repeatable read, lost update -- are
each driven twice: once through the synchronous transaction API, and once
*mid-scan* through :meth:`QueryScheduler.step`, which interleaves a reader's
batch pulls with writer transactions committing between quanta.  The
scheduler is deterministic (no wall clock, no randomness), so every
interleaving here is a replayable script; the randomized scenario replays
bit-identically from its seed and is run under 50 seeds in tier-1.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.predicates import Between
from repro.engine.query import Aggregate, Query
from repro.engine.scheduler import QueryScheduler
from repro.engine.transactions import SerializationError


def make_database(num_rows=120, *, tups_per_page=10):
    db = Database(buffer_pool_pages=200)
    db.create_table(
        "items",
        sample_row={"itemid": 0, "catid": 0, "price": 0.0},
        tups_per_page=tups_per_page,
    )
    db.load(
        "items",
        [
            {"itemid": i, "catid": i % 7, "price": float(i)}
            for i in range(num_rows)
        ],
    )
    return db


def count_rows(db, *, transaction=None, snapshot=None):
    query = Query.select("items", aggregate=Aggregate.count())
    return db.run_query(
        query, force="seq_scan", transaction=transaction, snapshot=snapshot
    ).value


ALL_ROWS = Query.select("items", name="reader")


# ---------------------------------------------------------------------------
# Dirty reads
# ---------------------------------------------------------------------------

def test_no_dirty_read_of_uncommitted_insert():
    db = make_database(50)
    writer = db.begin_transaction()
    db.tx_insert(writer, "items", [{"itemid": 1000, "catid": 0, "price": 1.0}])
    assert count_rows(db) == 50  # uncommitted version invisible outside
    assert count_rows(db, transaction=writer) == 51  # but visible to its writer
    writer.commit()
    assert count_rows(db) == 51


def test_no_dirty_read_of_uncommitted_delete():
    db = make_database(50)
    writer = db.begin_transaction()
    assert db.tx_delete(writer, "items", [Between("itemid", 0, 9)]) == 10
    assert count_rows(db) == 50  # delete stamps are invisible until commit
    assert count_rows(db, transaction=writer) == 40
    writer.abort()
    assert count_rows(db) == 50  # aborted delete never takes effect


def test_no_dirty_read_mid_scan():
    """A scheduled reader never sees a commit that lands between its quanta."""
    db = make_database(120)
    scheduler = QueryScheduler(db, batch_size=16)
    entry = scheduler.submit(ALL_ROWS, force="seq_scan")
    scheduler.step()  # reader is mid-scan now
    writer = db.begin_transaction()
    db.tx_insert(
        writer, "items", [{"itemid": 2000 + i, "catid": 0, "price": 0.5} for i in range(30)]
    )
    writer.commit()  # commits *ahead of* the scan position
    scheduler.run()
    assert entry.result.rows_matched == 120


# ---------------------------------------------------------------------------
# Non-repeatable reads
# ---------------------------------------------------------------------------

def test_repeatable_reads_within_a_transaction():
    db = make_database(60)
    reader = db.begin_transaction()
    first = count_rows(db, transaction=reader)
    deleter = db.begin_transaction()
    db.tx_delete(deleter, "items", [Between("itemid", 0, 19)])
    deleter.commit()
    assert count_rows(db, transaction=reader) == first  # same rows, twice
    reader.commit()
    assert count_rows(db) == 40  # a fresh snapshot does see the delete


def test_pinned_snapshot_is_stable_across_update():
    db = make_database(60)
    snapshot = db.transactions.snapshot()
    before = count_rows(db, snapshot=snapshot)
    updater = db.begin_transaction()
    assert db.tx_update(
        updater, "items", [Between("itemid", 0, 9)], {"price": 999.0}
    ) == 10
    updater.commit()
    # The update replaced 10 versions; the pinned snapshot still counts the
    # old ones and never sees the new ones -- no double counting either.
    assert count_rows(db, snapshot=snapshot) == before
    assert count_rows(db) == before


def test_no_phantom_rows_mid_scan_delete():
    """Deleting ahead of a scheduled reader's position changes nothing it sees."""
    db = make_database(120)
    scheduler = QueryScheduler(db, batch_size=16)
    entry = scheduler.submit(ALL_ROWS, force="seq_scan")
    scheduler.step()
    deleter = db.begin_transaction()
    db.tx_delete(deleter, "items", [Between("itemid", 100, 119)])
    deleter.commit()
    scheduler.run()
    assert entry.result.rows_matched == 120
    late = scheduler_count(db)
    assert late == 100


def scheduler_count(db):
    """Row count as a freshly admitted scheduled reader sees it."""
    scheduler = QueryScheduler(db, batch_size=16)
    entry = scheduler.submit(ALL_ROWS, force="seq_scan")
    scheduler.run()
    return entry.result.rows_matched


# ---------------------------------------------------------------------------
# Lost updates
# ---------------------------------------------------------------------------

def test_lost_update_raises_serialization_error():
    db = make_database(30)
    first = db.begin_transaction()
    second = db.begin_transaction()
    db.tx_update(first, "items", [Between("itemid", 5, 5)], {"price": 1.0})
    with pytest.raises(SerializationError):
        db.tx_update(second, "items", [Between("itemid", 5, 5)], {"price": 2.0})
    # First-updater-wins holds whether the first updater is live or committed.
    first.commit()
    third = db.begin_transaction()  # snapshot predates nothing -- sees v2
    db.tx_update(third, "items", [Between("itemid", 5, 5)], {"price": 3.0})
    third.commit()


def test_lost_delete_raises_and_abort_releases_the_row():
    db = make_database(30)
    first = db.begin_transaction()
    second = db.begin_transaction()
    db.tx_delete(first, "items", [Between("itemid", 7, 7)])
    with pytest.raises(SerializationError):
        db.tx_delete(second, "items", [Between("itemid", 7, 7)])
    first.abort()
    # The aborted stamp no longer conflicts; the retry goes through.
    assert db.tx_delete(second, "items", [Between("itemid", 7, 7)]) == 1
    second.commit()
    assert count_rows(db) == 29


def test_conflicting_update_leaves_no_partial_writes():
    db = make_database(30)
    first = db.begin_transaction()
    db.tx_update(first, "items", [Between("itemid", 10, 10)], {"price": 1.0})
    second = db.begin_transaction()
    # Target range overlaps one already-stamped row: the conflict is checked
    # for every target *before* any write, so nothing of this survives.
    with pytest.raises(SerializationError):
        db.tx_update(second, "items", [Between("itemid", 8, 12)], {"price": 2.0})
    second.abort()
    first.abort()
    assert count_rows(db) == 30
    prices = {
        row["itemid"]: row["price"]
        for row in db.run_query(
            Query.select("items", Between("itemid", 8, 12)), force="seq_scan"
        ).rows
    }
    assert prices == {i: float(i) for i in range(8, 13)}


# ---------------------------------------------------------------------------
# Randomized, replayable interleavings
# ---------------------------------------------------------------------------

def run_random_scenario(seed, *, num_rows=120, readers=5, writer_actions=8):
    """One seeded reader/writer interleaving; returns its full trace.

    Readers are scheduled streaming scans; writer transactions (insert,
    delete, update, with occasional aborts) run between scheduling quanta.
    A side model tracks the committed-live row count so every reader's
    result can be checked against the model state at its admission.
    """
    rng = random.Random(seed)
    db = make_database(num_rows)
    scheduler = QueryScheduler(db, batch_size=16, max_concurrent=readers + 1)
    live = set(range(num_rows))  # committed-live itemids (the model)
    next_itemid = 10_000
    expected = {}
    entries = []
    trace = []

    def submit_reader(label):
        expected[label] = len(live)  # snapshot is pinned inside submit()
        entries.append(
            scheduler.submit(ALL_ROWS, label=label, force="seq_scan")
        )

    def writer_action():
        nonlocal next_itemid
        action = rng.choice(["insert", "delete", "update"])
        tx = db.begin_transaction()
        touched = set()
        if action == "insert":
            count = rng.randrange(1, 20)
            db.tx_insert(
                tx,
                "items",
                [
                    {"itemid": next_itemid + i, "catid": 0, "price": 1.0}
                    for i in range(count)
                ],
            )
            touched = set(range(next_itemid, next_itemid + count))
            next_itemid += count
        else:
            low = rng.randrange(0, num_rows)
            high = low + rng.randrange(0, 30)
            targets = {i for i in live if low <= i <= high}
            if action == "delete":
                db.tx_delete(tx, "items", [Between("itemid", low, high)])
                touched = targets
            else:
                db.tx_update(
                    tx, "items", [Between("itemid", low, high)], {"price": -1.0}
                )
        if rng.random() < 0.25:
            tx.abort()
            trace.append((action, "abort"))
            return
        tx.commit()
        trace.append((action, "commit"))
        if action == "insert":
            live.update(touched)
        elif action == "delete":
            live.difference_update(touched)
        # an update keeps the live count: one version out, one version in

    submitted = 0
    actions_left = writer_actions
    while submitted < readers or actions_left or scheduler.active:
        move = rng.random()
        if submitted < readers and move < 0.35:
            submit_reader(f"reader_{submitted}")
            submitted += 1
        elif actions_left and move < 0.6:
            writer_action()
            actions_left -= 1
        else:
            report = scheduler.step()
            if report is not None:
                trace.append(
                    (report.label, report.batches, report.rows, report.pages)
                )
    scheduler.run()
    results = {entry.label: entry.result.rows_matched for entry in entries}
    return results, expected, trace


@pytest.mark.parametrize("seed", range(50))
def test_randomized_interleavings_preserve_snapshot_counts(seed):
    results, expected, _trace = run_random_scenario(seed)
    assert results == expected, f"seed={seed}"


def test_scenarios_replay_bit_identically_from_their_seed():
    for seed in (3, 17):
        first = run_random_scenario(seed)
        second = run_random_scenario(seed)
        assert first == second  # results, expectations, and the full trace
