"""Tests for the pipelined join layer: operators, planning and edge cases.

A small orders/customers pair keeps the reference joins checkable by hand;
the conftest ``items`` fixtures stay single-table.  Counter assertions lean
on ``HeapFile.logical_page_reads`` (per-input reads) versus the shared
``ExecutionCounters`` (whole-plan totals).
"""

import pytest

from repro.engine.database import Database
from repro.engine.predicates import Equals, Between
from repro.engine.query import Aggregate, JoinSpec, Query


def reference_join(outer_rows, inner_rows, key):
    merged = []
    for outer in outer_rows:
        for inner in inner_rows:
            if outer[key] == inner[key]:
                merged.append({**outer, **inner})
    return merged


@pytest.fixture
def join_db():
    db = Database(buffer_pool_pages=200)
    db.create_table("orders", columns=["orderid", "custid", "amount"], tups_per_page=10)
    db.create_table("customers", columns=["custid", "name", "region"], tups_per_page=10)
    orders = [
        {"orderid": i, "custid": i % 25, "amount": float(i)} for i in range(200)
    ]
    customers = [
        {"custid": c, "name": f"c{c}", "region": f"r{c % 4}"} for c in range(25)
    ]
    db.load("orders", orders)
    db.load("customers", customers)
    return db, orders, customers


class TestJoinCorrectness:
    def test_unindexed_join_picks_hash_join_and_matches_reference(self, join_db):
        # Neither table offers a probe structure; the planner used to fall
        # back to the quadratic nested-loop rescan, now it hashes one side.
        db, orders, customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query)
        expected = reference_join(orders, customers, "custid")
        assert result.access_method == "hash_join"
        assert result.rows_matched == len(expected)
        assert sorted(r["orderid"] for r in result.rows) == sorted(
            r["orderid"] for r in expected
        )
        assert all("name" in row and "amount" in row for row in result.rows)

    def test_nested_loop_join_matches_reference(self, join_db):
        db, orders, customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, force_join="nested_loop_join")
        expected = reference_join(orders, customers, "custid")
        assert result.access_method == "nested_loop_join"
        assert result.rows_matched == len(expected)
        assert sorted(r["orderid"] for r in result.rows) == sorted(
            r["orderid"] for r in expected
        )

    def test_hash_and_sort_merge_agree_with_nested_loop(self, join_db):
        db, orders, customers = join_db
        query = Query.select("orders", Between("orderid", 0, 99)).join(
            "customers", on="custid"
        )
        reference = db.run_query(query, force_join="nested_loop_join")
        for strategy in ("hash_join", "sort_merge_join"):
            result = db.run_query(query, force_join=strategy)
            assert result.access_method == strategy
            assert sorted(r["orderid"] for r in result.rows) == sorted(
                r["orderid"] for r in reference.rows
            )

    def test_index_nested_loop_agrees_with_nested_loop(self, join_db):
        db, orders, customers = join_db
        db.cluster("customers", "custid")
        query = Query.select("orders", Between("orderid", 0, 99)).join(
            "customers", on="custid"
        )
        inl = db.run_query(query, force_join="index_nested_loop_join")
        nl = db.run_query(query, force_join="nested_loop_join")
        assert inl.access_method == "index_nested_loop_join"
        assert sorted(r["orderid"] for r in inl.rows) == sorted(
            r["orderid"] for r in nl.rows
        )
        assert inl.rows_matched == 100

    def test_local_range_on_the_join_key_does_not_shadow_the_probe(self, join_db):
        # A local Between on the inner clustered join key must not hijack the
        # clustered-index lookup: the bound per-row equality is tighter and
        # drives the probe, the range stays a residual filter.
        db, orders, customers = join_db
        db.cluster("customers", "custid")
        inner_heap = db.table("customers").heap
        query = Query.select("orders").join(
            "customers", "custid", Between("custid", 5, 14)
        )
        before = inner_heap.logical_page_reads
        result = db.run_query(query, force_join="index_nested_loop_join")
        probe_pages = inner_heap.logical_page_reads - before
        expected = [o for o in orders if 5 <= o["custid"] <= 14]
        assert result.rows_matched == len(expected)
        # One probe per outer row, each touching ~1 page -- not a range sweep
        # of the whole customers band per probe.
        assert probe_pages <= len(orders) * 2

    def test_joined_table_predicates_filter_inner_rows(self, join_db):
        db, orders, customers = join_db
        query = Query.select("orders").join(
            "customers", "custid", Equals("region", "r1")
        )
        result = db.run_query(query)
        expected = [
            row
            for row in reference_join(orders, customers, "custid")
            if row["region"] == "r1"
        ]
        assert result.rows_matched == len(expected) > 0

    def test_explicit_pair_and_mapping_forms(self, join_db):
        db, orders, customers = join_db
        by_pair = Query.select("orders").join("customers", on=("custid", "custid"))
        by_map = Query.select("orders").join("customers", on={"custid": "custid"})
        assert (
            db.run_query(by_pair).rows_matched
            == db.run_query(by_map).rows_matched
            == len(orders)
        )

    def test_two_element_list_keeps_using_semantics(self):
        # Only a *tuple* of two strings is a (left, right) pair; a list of
        # two names means two same-named join keys, like any other arity.
        as_pair = Query.select("orders").join("lineitem", on=("orderkey", "linenumber"))
        assert as_pair.joins[0].on == (("orderkey", "linenumber"),)
        as_using = Query.select("orders").join("lineitem", on=["orderkey", "linenumber"])
        assert as_using.joins[0].on == (
            ("orderkey", "orderkey"),
            ("linenumber", "linenumber"),
        )


class TestJoinEdgeCases:
    def test_empty_inner_table_produces_no_rows(self, join_db):
        db, orders, _customers = join_db
        db.create_table("coupons", columns=["custid", "percent"], tups_per_page=10)
        query = Query.select("orders").join("coupons", on="custid")
        result = db.run_query(query)
        assert result.rows_matched == 0
        assert result.rows == []

    def test_empty_outer_never_probes_the_inner(self, join_db):
        db, _orders, _customers = join_db
        inner_heap = db.table("customers").heap
        before = inner_heap.logical_page_reads
        query = Query.select("orders", Equals("custid", 999)).join(
            "customers", on="custid"
        )
        result = db.run_query(query)
        assert result.rows_matched == 0
        assert inner_heap.logical_page_reads == before

    def test_duplicate_join_keys_fan_out(self, join_db):
        db, orders, _customers = join_db
        db.create_table("payments", columns=["custid", "method"], tups_per_page=10)
        payments = [
            {"custid": c, "method": m} for c in range(25) for m in ("card", "cash")
        ]
        db.load("payments", payments)
        query = Query.select("orders", Between("orderid", 0, 49)).join(
            "payments", on="custid"
        )
        result = db.run_query(query)
        assert result.rows_matched == 50 * 2
        methods = {row["method"] for row in result.rows}
        assert methods == {"card", "cash"}

    def test_join_limit_stops_the_outer_sweep(self, join_db):
        db, _orders, _customers = join_db
        outer_heap = db.table("orders").heap
        before = outer_heap.logical_page_reads
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, limit=3)
        outer_pages_read = outer_heap.logical_page_reads - before
        assert result.rows_matched == 3
        assert outer_pages_read < db.table("orders").num_pages

    def test_counters_account_for_both_inputs(self, join_db):
        db, orders, customers = join_db
        orders_heap = db.table("orders").heap
        customers_heap = db.table("customers").heap
        before_orders = orders_heap.logical_page_reads
        before_customers = customers_heap.logical_page_reads
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, force_join="nested_loop_join")
        orders_delta = orders_heap.logical_page_reads - before_orders
        customers_delta = customers_heap.logical_page_reads - before_customers
        # Every page read by either input lands in the one shared counter set.
        assert result.pages_visited == orders_delta + customers_delta
        # The planner reorders the chain so the small table drives: customers
        # is swept once, orders is rescanned once per customer.
        assert customers_delta == db.table("customers").num_pages
        assert orders_delta == len(customers) * db.table("orders").num_pages
        assert result.rows_examined == len(customers) + len(customers) * len(orders)

    def test_limit_zero_join_reads_nothing(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, limit=0)
        assert result.rows_matched == 0
        assert result.pages_visited == 0


class TestJoinQuerySurface:
    def test_projection_spans_both_tables(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        rows = list(db.stream(query, projection=["orderid", "name"]))
        assert rows and all(set(row) == {"orderid", "name"} for row in rows)

    def test_unknown_projection_column_rejected(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        with pytest.raises(ValueError, match="unknown column"):
            db.run_query(query, projection=["orderid", "nachname"])

    def test_aggregate_over_join(self, join_db):
        db, orders, customers = join_db
        query = Query.select(
            "orders", aggregate=Aggregate.sum("amount")
        ).join("customers", "custid", Equals("region", "r0"))
        result = db.run_query(query)
        expected = sum(
            row["amount"]
            for row in reference_join(orders, customers, "custid")
            if row["region"] == "r0"
        )
        assert result.value == pytest.approx(expected)

    def test_three_table_chain(self, join_db):
        db, orders, customers = join_db
        db.create_table("regions", columns=["region", "zone"], tups_per_page=10)
        db.load("regions", [{"region": f"r{i}", "zone": i % 2} for i in range(4)])
        query = (
            Query.select("orders", Between("orderid", 0, 19))
            .join("customers", on="custid")
            .join("regions", on="region")
        )
        result = db.run_query(query)
        assert result.rows_matched == 20
        assert all("zone" in row for row in result.rows)

    def test_join_returns_a_new_query(self):
        base = Query.select("orders")
        joined = base.join("customers", on="custid")
        assert base.joins == ()
        assert [spec.table for spec in joined.joins] == ["customers"]
        assert joined.tables == ("orders", "customers")

    def test_duplicate_table_in_chain_rejected(self):
        query = Query.select("orders").join("customers", on="custid")
        with pytest.raises(ValueError, match="already appears"):
            query.join("customers", on="custid")
        with pytest.raises(ValueError, match="already appears"):
            query.join("orders", on="custid")

    def test_describe_renders_joins(self):
        query = Query.select("orders", Equals("custid", 7)).join(
            "customers", on="custid"
        )
        assert (
            query.describe()
            == "SELECT * FROM orders JOIN customers USING (custid) WHERE custid = 7"
        )
        renamed = Query.select("orders").join("customers", on=("custid", "id"))
        assert "JOIN customers ON custid = customers.id" in renamed.describe()

    def test_join_spec_requires_keys(self):
        with pytest.raises(ValueError, match="at least one key"):
            JoinSpec(table="customers", on=())

    def test_malformed_key_pairs_rejected(self):
        with pytest.raises(ValueError, match="exactly"):
            Query.select("orders").join("customers", on=[("custid", "id", "region")])
        with pytest.raises(ValueError, match="exactly"):
            Query.select("orders").join("customers", on=[("custid",)])


class TestJoinPlanningErrors:
    def test_unknown_join_column_rejected(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("customers", on="kundennummer")
        with pytest.raises(ValueError, match="kundennummer"):
            db.run_query(query)

    def test_unknown_joined_table_rejected(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("invoices", on="custid")
        with pytest.raises(KeyError):
            db.run_query(query)

    def test_force_join_without_joins_rejected(self, join_db):
        db, _orders, _customers = join_db
        with pytest.raises(ValueError, match="force_join"):
            db.run_query(Query.select("orders"), force_join="nested_loop_join")

    def test_force_join_unknown_method_rejected(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        with pytest.raises(ValueError, match="unknown join method"):
            db.run_query(query, force_join="grace_hash_join")

    def test_force_index_join_without_structures_rejected(self, join_db):
        db, _orders, _customers = join_db
        # Neither table is clustered or indexed: no probe structure exists.
        query = Query.select("orders").join("customers", on="custid")
        with pytest.raises(ValueError, match="index_nested_loop_join"):
            db.run_query(query, force_join="index_nested_loop_join")

    def test_force_pipelined_driver_for_a_join(self, join_db):
        db, orders, _customers = join_db
        db.cluster("orders", "orderid")
        db.create_secondary_index("orders", "custid")
        query = Query.select("orders", Equals("custid", 3)).join(
            "customers", on="custid"
        )
        plan = db.planner.choose_join(db.tables, query, force="pipelined_index_scan")
        assert "pipelined_index_scan" in plan.structure
        result = db.run_query(query, force="pipelined_index_scan")
        assert result.rows_matched == sum(1 for o in orders if o["custid"] == 3)

    def test_join_limit_flips_the_driving_path(self):
        from repro.bench.harness import ExperimentScale, build_ebay_database

        db, _rows = build_ebay_database(ExperimentScale(0.25))
        db.create_secondary_index("items", "price")
        db.create_table("cats", columns=["catid", "zone"], tups_per_page=50)
        db.load("cats", [{"catid": c, "zone": c % 4} for c in range(100)])
        query = Query.select("items", Between("price", 100_000, 110_000)).join(
            "cats", on="catid"
        )
        unlimited = db.planner.choose_join(db.tables, query)
        limited = db.planner.choose_join(db.tables, query, limit=1)
        # Same flip as the single-table regression: the index driver's
        # upfront descents lose to limit-terminated streaming for one row
        # (today the winner is a cats-driven hash join whose probe sweep of
        # items stops at the first match).
        assert "items[sorted_index_scan" in unlimited.structure
        assert "sorted_index_scan" not in limited.structure
        assert limited.estimated_cost_ms < unlimited.estimated_cost_ms

    def test_tail_pages_priced_into_probe_options(self, join_db):
        db, _orders, _customers = join_db
        db.cluster("customers", "custid")
        table = db.table("customers")

        def clustered_probe_cost():
            options = db.planner._inner_strategy_options(table, ["custid"])
            return next(cost for s, cost, _i, _c in options if s == "clustered_index_scan")

        before = clustered_probe_cost()
        for i in range(500):
            table.insert_row(
                {"custid": 25 + i, "name": "x", "region": "r0"}, charge_io=False
            )
        # Every probe resweeps the unclustered tail, so the per-probe price
        # must grow with it (and eventually lose to the rescan baseline).
        assert clustered_probe_cost() > before

    def test_force_join_filters_by_step_composition_not_root(self, join_db):
        from repro.engine.executor import NestedLoopJoin

        db, _orders, _customers = join_db
        db.cluster("customers", "custid")  # probe structure on one inner only
        db.create_table("regions", columns=["region", "zone"], tups_per_page=10)
        db.load("regions", [{"region": f"r{i}", "zone": i % 2} for i in range(4)])
        query = (
            Query.select("orders")
            .join("customers", on="custid")
            .join("regions", on="region")
        )
        # The forced nested-loop baseline must not smuggle in probe steps,
        # even when a mixed chain happens to end in a nested-loop root.
        forced = db.planner.choose_join(db.tables, query, force_join="nested_loop_join")
        assert all(type(step) is NestedLoopJoin for step in forced.join_steps())
        # regions offers no probe structure, so a pure index-NLJ is impossible.
        with pytest.raises(ValueError, match="index_nested_loop_join"):
            db.planner.choose_join(db.tables, query, force_join="index_nested_loop_join")


class TestHashAndSortMergeOperators:
    """Edge cases of the set-at-a-time operators (ISSUE satellite)."""

    def test_empty_build_side_never_reads_the_probe_side(self, join_db):
        db, _orders, _customers = join_db
        db.create_table("coupons", columns=["custid", "percent"], tups_per_page=10)
        outer_heap = db.table("orders").heap
        before = outer_heap.logical_page_reads
        query = Query.select("orders").join("coupons", on="custid")
        result = db.run_query(query, force_join="hash_join")
        assert result.rows_matched == 0
        # The inner (build) side is empty, so not one probe row is pulled.
        assert outer_heap.logical_page_reads == before
        assert result.join_probes == 0

    def test_sort_merge_empty_outer_never_reads_the_inner(self, join_db):
        # Operator-level (the planner is free to reorder the chain): an
        # outer that produces no rows must not trigger the inner read, in
        # either the materialised-sort or the lazy pre-sorted outer path.
        from repro.engine.access import SeqScan
        from repro.engine.executor import SortMergeJoin
        from repro.engine.predicates import PredicateSet

        db, _orders, _customers = join_db
        inner_heap = db.table("customers").heap
        outer = SeqScan(db.table("orders"), PredicateSet((Equals("custid", 999),)))
        for outer_sorted in (False, True):
            before = inner_heap.logical_page_reads
            operator = SortMergeJoin(
                outer,
                SeqScan(db.table("customers"), PredicateSet()),
                [("custid", "custid")],
                outer_sorted=outer_sorted,
            )
            assert operator.execute().rows == []
            assert inner_heap.logical_page_reads == before

    def test_all_duplicate_keys_produce_the_full_cross_block(self, join_db):
        db, _orders, _customers = join_db
        db.create_table("lhs", columns=["k", "a"], tups_per_page=10)
        db.create_table("rhs", columns=["k", "b"], tups_per_page=10)
        db.load("lhs", [{"k": 7, "a": i} for i in range(30)])
        db.load("rhs", [{"k": 7, "b": i} for i in range(20)])
        query = Query.select("lhs").join("rhs", on="k")
        reference = db.run_query(query, force_join="nested_loop_join")
        assert reference.rows_matched == 30 * 20
        for strategy in ("hash_join", "sort_merge_join"):
            result = db.run_query(query, force_join=strategy)
            assert result.rows_matched == 30 * 20
            assert sorted((r["a"], r["b"]) for r in result.rows) == sorted(
                (r["a"], r["b"]) for r in reference.rows
            )

    def test_hash_join_limit_stops_mid_probe(self, join_db):
        db, _orders, _customers = join_db
        outer_heap = db.table("orders").heap
        before = outer_heap.logical_page_reads
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, force_join="hash_join", limit=3)
        # customers (25 rows) is the build side; orders streams as the probe
        # side and the satisfied LIMIT stops the probe sweep mid-table.
        assert result.rows_matched == 3
        assert result.rows_emitted == 3
        assert outer_heap.logical_page_reads - before < db.table("orders").num_pages

    def test_sort_merge_limit_stops_the_presorted_inner_sweep(self, join_db):
        db, _orders, _customers = join_db
        db.create_table("ledger", columns=["custid", "balance"], tups_per_page=10)
        db.load("ledger", [{"custid": c, "balance": float(c)} for c in range(200)])
        db.cluster("ledger", "custid")
        inner_heap = db.table("ledger").heap
        before = inner_heap.logical_page_reads
        query = Query.select("orders").join("ledger", on="custid")
        result = db.run_query(query, force_join="sort_merge_join", limit=2)
        assert result.rows_matched == 2
        # The inner is pre-sorted on the join key, so the merge pulls its
        # pages lazily and the LIMIT leaves most of them unread.
        assert inner_heap.logical_page_reads - before < db.table("ledger").num_pages

    def test_null_join_keys_match_consistently_across_strategies(self, join_db):
        # None == None matches under Python equality; the merge's ordering
        # comparisons must not crash on NULL keys and must agree with the
        # equality-based operators.
        db, _orders, _customers = join_db
        db.create_table("lhs", columns=["k", "a"], tups_per_page=10)
        db.create_table("rhs", columns=["k", "b"], tups_per_page=10)
        db.load("lhs", [{"k": 1, "a": 1}, {"k": None, "a": 2}, {"k": 2, "a": 3}])
        db.load("rhs", [{"k": None, "b": 10}, {"k": 2, "b": 20}, {"k": 3, "b": 30}])
        query = Query.select("lhs").join("rhs", on="k")
        reference = db.run_query(query, force_join="nested_loop_join")
        assert reference.rows_matched == 2  # (None, None) and (2, 2)
        for strategy in ("hash_join", "sort_merge_join"):
            result = db.run_query(query, force_join=strategy)
            assert sorted((r["a"], r["b"]) for r in result.rows) == sorted(
                (r["a"], r["b"]) for r in reference.rows
            )

    def test_counters_are_shared_across_build_and_probe_inputs(self, join_db):
        db, orders, customers = join_db
        orders_heap = db.table("orders").heap
        customers_heap = db.table("customers").heap
        before_orders = orders_heap.logical_page_reads
        before_customers = customers_heap.logical_page_reads
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, force_join="hash_join")
        orders_delta = orders_heap.logical_page_reads - before_orders
        customers_delta = customers_heap.logical_page_reads - before_customers
        # Each input is read exactly once and both land in one counter set.
        assert result.pages_visited == orders_delta + customers_delta
        assert result.rows_examined == len(orders) + len(customers)
        # One probe per probe-side row of the streamed input.
        assert result.join_probes == len(orders)

    def test_join_counters_thread_through_materialisation(self, join_db):
        # The satellite bugfix: materialize() used to drop join_probes and
        # rows_emitted, so QueryResult under-reported the join's work.
        db, orders, _customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        result = db.run_query(query, force_join="hash_join")
        assert result.join_probes == len(orders)
        assert result.rows_emitted == result.rows_matched == len(orders)
        assert f"{result.join_probes} probes" in result.summary()
        single = db.run_query(Query.select("orders"))
        assert single.join_probes == 0
        assert "probes" not in single.summary()

    def test_forced_strategies_appear_in_explain_structures(self, join_db):
        db, _orders, _customers = join_db
        query = Query.select("orders").join("customers", on="custid")
        structures = [plan["structure"] for plan in db.explain(query)]
        assert any("hash build=" in s for s in structures)
        assert any("merge sort=" in s for s in structures)


class TestAmbiguousColumnDetection:
    """Non-join-key column collisions must fail loudly, not 'inner wins'."""

    @pytest.fixture
    def collision_db(self):
        db = Database(buffer_pool_pages=100)
        db.create_table("events", columns=["id", "ts", "region"], tups_per_page=10)
        db.create_table("users", columns=["uid", "region", "name"], tups_per_page=10)
        db.load("events", [{"id": i, "ts": i * 10, "region": f"r{i % 3}"} for i in range(30)])
        db.load("users", [{"uid": i, "region": f"r{i % 3}", "name": f"u{i}"} for i in range(9)])
        return db

    def test_non_key_collision_rejected_with_column_names(self, collision_db):
        query = Query.select("events").join("users", on=("id", "uid"))
        with pytest.raises(ValueError, match=r"ambiguous columns \['region'\]"):
            collision_db.run_query(query)
        with pytest.raises(ValueError, match="region"):
            list(collision_db.stream(query))

    def test_same_named_join_key_is_not_ambiguous(self, collision_db):
        query = Query.select("events").join("users", on="region")
        result = collision_db.run_query(query)
        assert result.rows_matched == 30 * 3  # 3 users per region

    def test_pair_join_on_the_shared_column_still_collides_elsewhere(self, collision_db):
        # Joining ("region", "region") as an explicit pair is same-named, so
        # it is exempt...
        ok = Query.select("events").join("users", on=[("region", "region")])
        assert collision_db.run_query(ok).rows_matched == 90
        # ...but a pair join on *different* names leaves 'region' ambiguous
        # even though it participates in the equality on one side.
        bad = Query.select("events").join("users", on=[("region", "uid")])
        with pytest.raises(ValueError, match=r"ambiguous columns \['region'\]"):
            collision_db.run_query(bad)

    def test_internal_bucket_column_is_exempt(self):
        db = Database(buffer_pool_pages=200)
        db.create_table("a", columns=["k", "x"], tups_per_page=10)
        db.create_table("b", columns=["k", "y"], tups_per_page=10)
        db.load("a", [{"k": i, "x": i} for i in range(100)])
        db.load("b", [{"k": i, "y": i} for i in range(100)])
        # Clustering with buckets adds the _cm_bucket column to both tables;
        # that engine-internal collision must not trip the check.
        db.cluster("a", "k", pages_per_bucket=2)
        db.cluster("b", "k", pages_per_bucket=2)
        query = Query.select("a").join("b", on="k")
        assert db.run_query(query).rows_matched == 100

    def test_third_table_collision_against_earlier_chain_member(self, collision_db):
        collision_db.create_table("audits", columns=["aid", "ts"], tups_per_page=10)
        collision_db.load("audits", [{"aid": i, "ts": i} for i in range(5)])
        query = (
            Query.select("events")
            .join("users", on="region")
            .join("audits", on=("id", "aid"))
        )
        # audits.ts collides with events.ts two steps back.
        with pytest.raises(ValueError, match=r"ambiguous columns \['ts'\]"):
            collision_db.run_query(query)

    def test_user_underscore_columns_are_not_exempt(self):
        # Only the engine's own bucket column is exempt; a user column that
        # happens to start with an underscore still collides loudly.
        db = Database(buffer_pool_pages=100)
        db.create_table("a", columns=["k", "_note"], tups_per_page=10)
        db.create_table("b", columns=["k", "_note"], tups_per_page=10)
        db.load("a", [{"k": i, "_note": f"a{i}"} for i in range(10)])
        db.load("b", [{"k": i, "_note": f"b{i}"} for i in range(10)])
        query = Query.select("a").join("b", on="k")
        with pytest.raises(ValueError, match=r"ambiguous columns \['_note'\]"):
            db.run_query(query)
