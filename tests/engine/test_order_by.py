"""ORDER BY / top-k / GROUP BY through the streaming operator tree.

Covers the ISSUE's edge-case checklist: NULL sort keys, ties under a LIMIT,
k-heap vs full-sort equivalence, descending and mixed-direction keys, free
ORDER BY on pre-ordered streams, and the order_by + group_by + join
composition.
"""

import pytest

from repro.engine.database import Database
from repro.engine.predicates import Between, Equals
from repro.engine.query import Aggregate, Query


@pytest.fixture
def nullable_db():
    db = Database(buffer_pool_pages=100)
    db.create_table("t", columns=["k", "v"], tups_per_page=10)
    db.load(
        "t",
        [
            {"k": 3, "v": "a"},
            {"k": None, "v": "b"},
            {"k": 1, "v": "c"},
            {"k": None, "v": "d"},
            {"k": 2, "v": "e"},
        ],
    )
    return db


class TestOrderBy:
    def test_orders_ascending_by_default(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1500)).order_by("price")
        result = indexed_database.run_query(query)
        prices = [row["price"] for row in result.rows]
        assert prices == sorted(prices)
        assert result.rows_matched > 0
        assert "sort buffered" in (result.sort_stats or "")

    def test_descending_with_minus_prefix(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1500)).order_by("-price")
        prices = [r["price"] for r in indexed_database.run_query(query).rows]
        assert prices == sorted(prices, reverse=True)

    def test_mixed_directions_multi_column(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 2000)).order_by(
            "cat2", "-price"
        )
        rows = indexed_database.run_query(query).rows
        keys = [(r["cat2"], -r["price"]) for r in rows]
        assert keys == sorted(keys)

    def test_null_keys_sort_last_ascending_first_descending(self, nullable_db):
        ascending = nullable_db.run_query(Query.select("t").order_by("k"))
        assert [r["k"] for r in ascending.rows] == [1, 2, 3, None, None]
        descending = nullable_db.run_query(Query.select("t").order_by("-k"))
        assert [r["k"] for r in descending.rows] == [None, None, 3, 2, 1]

    def test_null_keys_topk_agrees_with_full_sort(self, nullable_db):
        query = Query.select("t").order_by("-k")
        full = nullable_db.run_query(query)
        topk = nullable_db.run_query(query, limit=3)
        assert topk.rows == full.rows[:3]

    def test_ties_with_limit_keep_first_seen_rows(self):
        db = Database(buffer_pool_pages=100)
        db.create_table("t", columns=["k", "seq"], tups_per_page=10)
        db.load("t", [{"k": i % 3, "seq": i} for i in range(60)])
        query = Query.select("t").order_by("k")
        full = db.run_query(query)
        topk = db.run_query(query, limit=5)
        # The full sort is stable and the k-heap keeps the first-seen row of
        # a tied key, so both agree row for row.
        assert topk.rows == full.rows[:5]
        assert [r["seq"] for r in topk.rows] == [0, 3, 6, 9, 12]

    def test_topk_equals_full_sort_prefix_for_every_method(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 2000)).order_by(
            "-price", "itemid"
        )
        for method in ("seq_scan", "sorted_index_scan", "cm_scan"):
            full = indexed_database.run_query(query, force=method)
            topk = indexed_database.run_query(query, force=method, limit=7)
            assert topk.rows == full.rows[:7]
            assert topk.sort_stats.startswith("top-7 heap")

    def test_free_order_on_clustered_key_plans_no_sort(self, indexed_database):
        # items is clustered on catid with no tail: every sweep path already
        # streams in catid order, so the Sort node is planned away.
        query = Query.select("items", Between("price", 1000, 2000)).order_by("catid")
        result = indexed_database.run_query(query)
        assert result.sort_stats is None
        values = [row["catid"] for row in result.rows]
        assert values == sorted(values)

    def test_free_order_still_terminates_limit_early(self, indexed_database):
        table = indexed_database.table("items")
        query = Query.select("items", Between("price", 0, 20_000)).order_by("catid")
        result = indexed_database.run_query(query, limit=5, force="seq_scan")
        assert result.sort_stats is None
        assert result.rows_matched == 5
        assert result.pages_visited < table.num_pages

    def test_descending_clustered_order_is_not_free(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 2000)).order_by("-catid")
        result = indexed_database.run_query(query)
        assert result.sort_stats is not None
        values = [row["catid"] for row in result.rows]
        assert values == sorted(values, reverse=True)

    def test_unsorted_tail_disables_the_free_order(self, indexed_database):
        table = indexed_database.table("items")
        table.insert_row(
            {"itemid": 99_999, "catid": 0, "cat2": "group0", "price": 5.0, "noise": 1},
            charge_io=False,
        )
        query = Query.select("items", Between("price", 0, 20_000)).order_by("catid")
        result = indexed_database.run_query(query)
        # The tail row is out of clustered order, so an explicit sort runs
        # (and the result is still correctly ordered).
        assert result.sort_stats is not None
        values = [row["catid"] for row in result.rows]
        assert values == sorted(values)

    def test_order_by_survives_projection_dropping_the_sort_key(self, indexed_database):
        query = Query.select(
            "items", Between("price", 1000, 1500), projection=("itemid",)
        ).order_by("price")
        reference = indexed_database.run_query(
            Query.select("items", Between("price", 1000, 1500)).order_by("price")
        )
        result = indexed_database.run_query(query)
        assert [r["itemid"] for r in result.rows] == [
            r["itemid"] for r in reference.rows
        ]
        assert all(set(row) == {"itemid"} for row in result.rows)

    def test_stream_yields_in_order(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1500)).order_by("price")
        prices = [r["price"] for r in indexed_database.stream(query)]
        assert prices == sorted(prices)

    def test_limit_zero_with_order_by_reads_nothing(self, indexed_database):
        query = Query.select("items", Between("price", 0, 20_000)).order_by("price")
        result = indexed_database.run_query(query, limit=0)
        assert result.rows == []
        assert result.pages_visited == 0

    def test_unknown_order_column_rejected(self, indexed_database):
        query = Query.select("items").order_by("pricee")
        with pytest.raises(ValueError, match="ORDER BY"):
            indexed_database.run_query(query)

    def test_order_by_with_scalar_aggregate_rejected(self):
        with pytest.raises(ValueError, match="scalar aggregate"):
            Query.select("items", aggregate=Aggregate.count()).order_by("price")

    def test_describe_renders_order_and_direction(self):
        query = Query.select("items").order_by("price", "-catid").with_limit(3)
        assert query.describe().endswith("ORDER BY price, catid DESC LIMIT 3")


class TestGroupBy:
    def test_grouped_count_matches_reference(self, indexed_database, item_rows):
        query = Query.select(
            "items", aggregate=Aggregate.count(alias="n")
        ).group_by("cat2")
        result = indexed_database.run_query(query)
        reference: dict = {}
        for row in item_rows:
            reference[row["cat2"]] = reference.get(row["cat2"], 0) + 1
        assert {(r["cat2"], r["n"]) for r in result.rows} == set(reference.items())
        assert result.rows_matched == len(reference)

    def test_grouped_avg_and_predicates(self, indexed_database, item_rows):
        query = Query.select(
            "items", Between("price", 0, 5000), aggregate=Aggregate.avg("price")
        ).group_by("cat2")
        result = indexed_database.run_query(query)
        by_group: dict = {}
        for row in item_rows:
            if 0 <= row["price"] <= 5000:
                by_group.setdefault(row["cat2"], []).append(row["price"])
        for grouped in result.rows:
            expected = sum(by_group[grouped["cat2"]]) / len(by_group[grouped["cat2"]])
            assert grouped["avg_price"] == pytest.approx(expected)

    def test_group_by_composes_with_order_by_and_limit(self, indexed_database, item_rows):
        query = (
            Query.select("items", aggregate=Aggregate.count(alias="n"))
            .group_by("cat2")
            .order_by("-n", "cat2")
            .with_limit(3)
        )
        result = indexed_database.run_query(query)
        counts: dict = {}
        for row in item_rows:
            counts[row["cat2"]] = counts.get(row["cat2"], 0) + 1
        expected = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        assert [(r["cat2"], r["n"]) for r in result.rows] == expected

    def test_group_by_over_a_join(self):
        db = Database(buffer_pool_pages=200)
        db.create_table("orders", columns=["orderid", "custid", "amount"], tups_per_page=10)
        db.create_table("customers", columns=["custid", "region"], tups_per_page=10)
        orders = [
            {"orderid": i, "custid": i % 10, "amount": float(i)} for i in range(100)
        ]
        customers = [{"custid": c, "region": f"r{c % 3}"} for c in range(10)]
        db.load("orders", orders)
        db.load("customers", customers)
        query = (
            Query.select("orders", aggregate=Aggregate.sum("amount"))
            .join("customers", on="custid")
            .group_by("region")
            .order_by("region")
        )
        result = db.run_query(query)
        region_of = {c["custid"]: c["region"] for c in customers}
        expected: dict = {}
        for order in orders:
            region = region_of[order["custid"]]
            expected[region] = expected.get(region, 0.0) + order["amount"]
        assert [(r["region"], r["sum_amount"]) for r in result.rows] == sorted(
            expected.items()
        )

    def test_null_group_keys_form_their_own_group(self, nullable_db):
        query = Query.select("t", aggregate=Aggregate.count(alias="n")).group_by("k")
        result = nullable_db.run_query(query)
        groups = {r["k"]: r["n"] for r in result.rows}
        assert groups[None] == 2
        assert groups[1] == groups[2] == groups[3] == 1

    def test_count_distinct_per_group(self, indexed_database, item_rows):
        query = Query.select(
            "items", aggregate=Aggregate.count_distinct("catid", alias="cats")
        ).group_by("cat2")
        result = indexed_database.run_query(query)
        reference: dict = {}
        for row in item_rows:
            reference.setdefault(row["cat2"], set()).add(row["catid"])
        assert {(r["cat2"], r["cats"]) for r in result.rows} == {
            (group, len(values)) for group, values in reference.items()
        }

    def test_projection_over_grouped_output(self, indexed_database):
        query = Query.select(
            "items", aggregate=Aggregate.count(alias="n")
        ).group_by("cat2")
        result = indexed_database.run_query(query, projection=["n"])
        assert result.rows and all(set(row) == {"n"} for row in result.rows)

    def test_projection_outside_grouped_output_rejected(self, indexed_database):
        query = Query.select(
            "items", aggregate=Aggregate.count(alias="n")
        ).group_by("cat2")
        with pytest.raises(ValueError, match="grouped rows"):
            indexed_database.run_query(query, projection=["price"])

    def test_order_by_outside_grouped_output_rejected(self, indexed_database):
        query = (
            Query.select("items", aggregate=Aggregate.count())
            .group_by("cat2")
            .order_by("price")
        )
        with pytest.raises(ValueError, match="grouped rows"):
            indexed_database.run_query(query)

    def test_alias_colliding_with_group_column_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            Query.select(
                "items", aggregate=Aggregate.count(alias="catid")
            ).group_by("catid")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ValueError, match="GROUP BY needs an aggregate"):
            Query.select("items").group_by("cat2")

    def test_unknown_group_column_rejected(self, indexed_database):
        query = Query.select("items", aggregate=Aggregate.count()).group_by("nope")
        with pytest.raises(ValueError, match="GROUP BY"):
            indexed_database.run_query(query)

    def test_empty_group_input_produces_no_rows(self, indexed_database):
        query = Query.select(
            "items", Equals("catid", -42), aggregate=Aggregate.count()
        ).group_by("cat2")
        result = indexed_database.run_query(query)
        assert result.rows == []


class TestStreamingScalarAggregates:
    def test_scalar_aggregate_streams_without_buffering_rows(self, indexed_database):
        from repro.engine.plan import AggregateNode, find_node

        query = Query.select(
            "items", Between("price", 1000, 2000), aggregate=Aggregate.sum("price")
        )
        result = indexed_database.run_query(query)
        node = find_node(result.plan, AggregateNode)
        assert node is not None
        assert result.value == pytest.approx(
            sum(
                r["price"]
                for r in indexed_database.stream(
                    Query.select("items", Between("price", 1000, 2000))
                )
            )
        )
        assert result.rows == []  # nothing materialised for the caller
        assert result.rows_matched == node.rows_in

    def test_avg_over_empty_input_is_none(self, indexed_database):
        query = Query.select(
            "items", Equals("catid", -1), aggregate=Aggregate.avg("price")
        )
        assert indexed_database.run_query(query).value is None

    def test_summary_reports_the_aggregate_value(self, indexed_database):
        query = Query.select(
            "items", Between("price", 1000, 1100), aggregate=Aggregate.count()
        )
        result = indexed_database.run_query(query)
        assert f"value={result.value}" in result.summary()

    def test_summary_reports_sort_stats(self, indexed_database):
        query = Query.select("items", Between("price", 1000, 1500)).order_by("price")
        result = indexed_database.run_query(query)
        assert "sort buffered" in result.summary()
        topk = indexed_database.run_query(query, limit=4)
        assert "top-4 heap" in topk.summary()
