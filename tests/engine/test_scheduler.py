"""QueryScheduler tests: fairness, budgets, priorities and admission control.

The scheduler's contract is cooperative round-robin at RowBatch granularity:
a quantum is one batch pull (or budget-bounded pulls), yielding queries keep
all execution state in their suspended generator pipeline, and everything is
deterministic.  These tests drive :meth:`QueryScheduler.step` directly to
observe individual quanta; end-to-end behaviour (throughput, interference)
lives in ``repro.bench.concurrent``.
"""

import pytest

from repro.engine.database import Database
from repro.engine.predicates import Between, ExpressionPredicate
from repro.engine.query import Query
from repro.engine.scheduler import FINISHED, QueryScheduler


NUM_ROWS = 2000


@pytest.fixture
def database():
    db = Database(buffer_pool_pages=400)
    db.create_table(
        "items",
        sample_row={"itemid": 0, "catid": 0, "price": 0.0},
        tups_per_page=20,
    )
    db.load(
        "items",
        [
            {"itemid": i, "catid": i % 50, "price": float(i)}
            for i in range(NUM_ROWS)
        ],
    )
    return db


FULL_SCAN = Query.select("items", name="long_scan")
POINT_LOOKUP = Query.select(
    "items", Between("itemid", 5, 5), name="lookup", limit=1
)


def test_fair_policy_long_scan_cannot_starve_point_lookup(database):
    """The lookup finishes after a handful of quanta, mid-way through the scan."""
    scheduler = QueryScheduler(database, policy="fair", batch_size=32)
    scan = scheduler.submit(FULL_SCAN, force="seq_scan")
    lookup = scheduler.submit(POINT_LOOKUP, force="seq_scan")
    steps = 0
    while not lookup.finished:
        assert scheduler.step() is not None
        steps += 1
        assert steps <= 10, "fair round-robin must reach the lookup immediately"
    assert not scan.finished  # the long scan is still mid-flight
    scheduler.run()
    assert scan.state == FINISHED
    assert scan.result.rows_matched == NUM_ROWS
    assert lookup.result.rows_matched == 1


def test_fair_policy_alternates_between_runnable_queries(database):
    scheduler = QueryScheduler(database, policy="fair", batch_size=32)
    scheduler.submit(FULL_SCAN, label="a", force="seq_scan")
    scheduler.submit(Query.select("items", name="b"), label="b", force="seq_scan")
    labels = [scheduler.step().label for _ in range(6)]
    assert labels == ["a", "b", "a", "b", "a", "b"]


def test_unbudgeted_quantum_is_exactly_one_batch(database):
    scheduler = QueryScheduler(database, batch_size=32)
    scheduler.submit(FULL_SCAN, force="seq_scan")
    for _ in range(5):
        report = scheduler.step()
        assert report.batches == 1
        # scans align batches to page boundaries: 32 rows round up to 2
        # pages of 20 tuples
        assert report.rows == 40


def test_budget_exhausted_query_yields_and_resumes_with_counters_intact(database):
    """A budgeted scan, preempted many times, reports exactly the serial run."""
    database.reset_measurements()
    database.drop_caches()
    serial = database.run_query(FULL_SCAN, force="seq_scan")

    database.reset_measurements()
    database.drop_caches()
    scheduler = QueryScheduler(database, batch_size=32)
    entry = scheduler.submit(FULL_SCAN, force="seq_scan", page_budget=5)
    reports = []
    while not entry.finished:
        reports.append(scheduler.step())
    assert entry.quanta > 10  # genuinely preempted and resumed many times
    assert all(report.batches >= 1 for report in reports[:-1])
    result = entry.result
    assert result.rows == serial.rows
    assert result.rows_examined == serial.rows_examined
    assert result.pages_visited == serial.pages_visited
    assert result.io == serial.io
    # Quantum page meters add up to the plan's total, so no work went
    # unattributed across the yield/resume boundaries.
    assert sum(report.pages for report in reports) == result.pages_visited


def test_cpu_ms_budget_bounds_a_turn(database):
    scheduler = QueryScheduler(database, batch_size=32)
    entry = scheduler.submit(FULL_SCAN, force="seq_scan", cpu_ms_budget=0.5)
    report = scheduler.step()
    assert report.batches >= 1
    assert not entry.finished or report.finished


def test_priority_policy_runs_high_priority_to_completion_first(database):
    scheduler = QueryScheduler(database, policy="priority", batch_size=32)
    low = scheduler.submit(FULL_SCAN, label="low", priority=0, force="seq_scan")
    high = scheduler.submit(
        Query.select("items", name="high"), label="high", priority=5, force="seq_scan"
    )
    while not high.finished:
        report = scheduler.step()
        assert report.label == "high"  # low never runs while high is runnable
    assert not low.finished
    scheduler.run()
    assert low.state == FINISHED


def test_priority_ties_rotate_round_robin(database):
    scheduler = QueryScheduler(database, policy="priority", batch_size=32)
    scheduler.submit(FULL_SCAN, label="a", priority=1, force="seq_scan")
    scheduler.submit(Query.select("items", name="b"), label="b", priority=1, force="seq_scan")
    labels = [scheduler.step().label for _ in range(4)]
    assert labels == ["a", "b", "a", "b"]


def test_admission_control_caps_active_queries(database):
    scheduler = QueryScheduler(database, max_concurrent=1, batch_size=32)
    first = scheduler.submit(POINT_LOOKUP, label="first", force="seq_scan")
    second = scheduler.submit(FULL_SCAN, label="second", force="seq_scan")
    assert scheduler.active == 1
    assert scheduler.pending == 1
    assert second.admitted_ms is None  # not admitted, so no snapshot pinned yet
    while not first.finished:
        scheduler.step()
    assert scheduler.active == 1  # the slot was handed straight to `second`
    assert scheduler.pending == 0
    assert second.admitted_ms is not None
    assert second.queue_ms >= 0


def test_waiting_queries_pin_snapshots_at_admission_not_submission(database):
    """A commit that lands while a query waits for admission is visible to it."""
    scheduler = QueryScheduler(database, max_concurrent=1, batch_size=32)
    first = scheduler.submit(Query.select("items"), label="first", force="seq_scan")
    second = scheduler.submit(Query.select("items"), label="second", force="seq_scan")
    writer = database.begin_transaction()
    database.tx_insert(
        writer, "items", [{"itemid": 10_000, "catid": 0, "price": 0.0}]
    )
    writer.commit()
    scheduler.run()
    assert first.result.rows_matched == NUM_ROWS  # admitted before the commit
    assert second.result.rows_matched == NUM_ROWS + 1  # admitted after


def _armed_predicate():
    """A predicate that passes planning (stats sampling) but fails execution."""
    state = {"armed": False}

    def function(row):
        if state["armed"]:
            raise RuntimeError("boom")
        return True

    return ExpressionPredicate("boom", function), state


def test_failed_query_reports_its_error_and_frees_the_slot(database):
    predicate, state = _armed_predicate()
    boom = Query.select("items", predicate, name="boom")
    scheduler = QueryScheduler(database, max_concurrent=1, batch_size=32)
    failing = scheduler.submit(boom, force="seq_scan")
    healthy = scheduler.submit(POINT_LOOKUP, force="seq_scan")
    state["armed"] = True
    scheduler.run()
    assert failing.state == "failed"
    assert isinstance(failing.error, RuntimeError)
    assert healthy.state == FINISHED
    assert healthy.result.rows_matched == 1


def test_run_concurrent_returns_results_in_submission_order(database):
    queries = [
        Query.select("items", Between("catid", c, c), name=f"q{c}")
        for c in range(6)
    ]
    results = database.run_concurrent(queries, max_concurrent=3)
    assert [r.query.name for r in results] == [q.name for q in queries]
    for c, result in enumerate(results):
        assert result.rows_matched == NUM_ROWS // 50
        assert all(row["catid"] == c for row in result.rows)


def test_run_concurrent_reraises_a_query_failure(database):
    predicate, state = _armed_predicate()
    boom = Query.select("items", predicate)
    state["armed"] = True
    with pytest.raises(RuntimeError, match="boom"):
        database.run_concurrent([Query.select("items"), boom])


def test_scheduler_rejects_bad_arguments(database):
    with pytest.raises(ValueError):
        QueryScheduler(database, max_concurrent=0)
    with pytest.raises(ValueError):
        QueryScheduler(database, policy="unfair")
    scheduler = QueryScheduler(database)
    with pytest.raises(ValueError):
        scheduler.submit(FULL_SCAN, page_budget=0)
    with pytest.raises(ValueError):
        scheduler.submit(FULL_SCAN, cpu_ms_budget=0)
