"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "ebay" in out and "tpch" in out and "sdss" in out


def test_experiments_command_lists_every_table_and_figure(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for label in ("Figure 1", "Figure 10", "Table 3", "Table 6"):
        assert label in out
    assert "benchmarks/test_fig6_cm_vs_btree_price.py" in out


def test_demo_command_runs_all_three_access_methods(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "seq_scan" in out
    assert "sorted_index_scan" in out
    assert "cm_scan" in out


def test_demo_analyze_prints_plan_trees(capsys):
    assert main(["demo", "--analyze"]) == 0
    out = capsys.readouterr().out
    assert "EXPLAIN ANALYZE" in out
    assert "topk[price DESC, k=5]" in out
    assert "hash_group[catid: n]" in out
    assert "rows est=" in out and "act=" in out
    assert "totals:" in out


def test_advise_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        main(["advise", "mystery"])


def test_parser_structure():
    parser = build_parser()
    assert parser.prog == "repro"
