"""Tests for the wall-clock benchmark harness and its JSON report."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.wallclock import (
    REPORT_SCHEMA,
    BenchConfig,
    build_report,
    format_results,
    run_benchmarks,
    write_report,
)

TINY = BenchConfig(scale=0.05, repeats=1)


@pytest.fixture(scope="module")
def tiny_results():
    return run_benchmarks(TINY)


def test_scenarios_cover_the_advertised_shapes(tiny_results):
    names = {result.name for result in tiny_results}
    assert names == {
        "scan_filter",
        "full_scan_aggregate",
        "unindexed_join",
        "top_k",
        "group_by",
        "order_by_full",
        "sort_merge_join",
    }


def test_every_scenario_passes_parity_at_tiny_scale(tiny_results):
    for result in tiny_results:
        assert result.parity_ok, result.name
        assert result.rows_matched > 0 or result.name == "top_k"
        assert result.row_seconds > 0 and result.batched_seconds > 0


def test_report_structure_and_round_trip(tiny_results, tmp_path):
    path = tmp_path / "BENCH_exec.json"
    report = write_report(tiny_results, TINY, str(path))
    assert report["schema"] == REPORT_SCHEMA
    on_disk = json.loads(path.read_text())
    assert on_disk == report
    assert set(on_disk["scenarios"]) == {r.name for r in tiny_results}
    summary = on_disk["summary"]
    assert summary["parity_ok"] is True
    assert summary["min_speedup"] is not None
    assert set(summary["flagship_speedups"]) <= {
        "full_scan_aggregate",
        "unindexed_join",
    }
    for payload in on_disk["scenarios"].values():
        assert {
            "name",
            "rows_matched",
            "pages_visited",
            "simulated_ms",
            "row_seconds",
            "batched_seconds",
            "speedup",
            "parity_ok",
        } <= set(payload)


def test_format_results_renders_one_line_per_scenario(tiny_results):
    text = format_results(tiny_results)
    for result in tiny_results:
        assert result.name in text


def test_cli_script_smoke(tmp_path):
    """scripts/bench_wallclock.py runs end to end and writes the report."""
    repo_root = Path(__file__).resolve().parent.parent
    output = tmp_path / "BENCH_exec.json"
    completed = subprocess.run(
        [
            sys.executable,
            str(repo_root / "scripts" / "bench_wallclock.py"),
            "--scale",
            "0.05",
            "--repeats",
            "1",
            "--scenario",
            "full_scan_aggregate",
            "--output",
            str(output),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    report = json.loads(output.read_text())
    assert report["schema"] == REPORT_SCHEMA
    assert "full_scan_aggregate" in report["scenarios"]


def _run_cli(args, tmp_path):
    repo_root = Path(__file__).resolve().parent.parent
    output = tmp_path / "fresh.json"
    return subprocess.run(
        [
            sys.executable,
            str(repo_root / "scripts" / "bench_wallclock.py"),
            "--scale",
            "0.05",
            "--repeats",
            "1",
            "--scenario",
            "full_scan_aggregate",
            "--output",
            str(output),
            *args,
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_cli_floor_check_passes_against_a_low_committed_floor(tmp_path):
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps({"summary": {"min_speedup": 0.01}}))
    completed = _run_cli(["--check-floor", str(committed)], tmp_path)
    assert completed.returncode == 0, completed.stderr
    assert "floor check ok" in completed.stdout


def test_cli_floor_check_fails_on_regression(tmp_path):
    """An absurdly high committed floor must make the CLI exit non-zero."""
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps({"summary": {"min_speedup": 1e9}}))
    completed = _run_cli(["--check-floor", str(committed)], tmp_path)
    assert completed.returncode == 1
    assert "regressed below" in completed.stderr


def test_cli_floor_check_reads_floor_before_overwriting(tmp_path):
    """--check-floor FILE with --output FILE: the floor is the *old* file's."""
    shared = tmp_path / "BENCH_exec.json"
    shared.write_text(json.dumps({"summary": {"min_speedup": 1e9}}))
    repo_root = Path(__file__).resolve().parent.parent
    completed = subprocess.run(
        [
            sys.executable,
            str(repo_root / "scripts" / "bench_wallclock.py"),
            "--scale",
            "0.05",
            "--repeats",
            "1",
            "--scenario",
            "full_scan_aggregate",
            "--output",
            str(shared),
            "--check-floor",
            str(shared),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 1, "floor must come from the pre-run file"
    assert "regressed below" in completed.stderr
