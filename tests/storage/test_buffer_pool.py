"""Tests for the LRU buffer pool with dirty write-back."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel


def make_pool(capacity=4):
    disk = DiskModel()
    return disk, BufferPool(disk, capacity_pages=capacity)


def test_capacity_must_be_positive():
    disk = DiskModel()
    with pytest.raises(ValueError):
        BufferPool(disk, capacity_pages=0)


def test_miss_then_hit():
    disk, pool = make_pool()
    assert pool.access("heap", 0) is False
    assert pool.access("heap", 0) is True
    assert pool.stats.hits == 1
    assert pool.stats.misses == 1
    assert disk.counters.pages_read == 1


def test_lru_eviction_order():
    disk, pool = make_pool(capacity=2)
    pool.access("f", 0)
    pool.access("f", 1)
    pool.access("f", 0)      # page 0 becomes most-recent
    pool.access("f", 2)      # evicts page 1
    assert pool.contains("f", 0)
    assert not pool.contains("f", 1)
    assert pool.contains("f", 2)


def test_dirty_eviction_writes_back():
    disk, pool = make_pool(capacity=1)
    pool.access("f", 0, dirty=True)
    pool.access("f", 1)      # evicts dirty page 0
    assert pool.stats.dirty_evictions == 1
    assert disk.counters.pages_written == 1


def test_clean_eviction_does_not_write():
    disk, pool = make_pool(capacity=1)
    pool.access("f", 0)
    pool.access("f", 1)
    assert pool.stats.clean_evictions == 1
    assert disk.counters.pages_written == 0


def test_dirty_flag_is_sticky_until_flush():
    disk, pool = make_pool()
    pool.access("f", 0, dirty=True)
    pool.access("f", 0)          # clean access must not clear the dirty bit
    assert pool.is_dirty("f", 0)
    written = pool.flush_all()
    assert written == 1
    assert not pool.is_dirty("f", 0)


def test_create_registers_new_page_without_read():
    disk, pool = make_pool()
    pool.create("f", 0)
    assert disk.counters.pages_read == 0
    assert pool.is_dirty("f", 0)


def test_drop_file_discards_only_that_file():
    disk, pool = make_pool()
    pool.access("a", 0, dirty=True)
    pool.access("b", 0)
    pool.drop_file("a")
    assert not pool.contains("a", 0)
    assert pool.contains("b", 0)
    # Dropped dirty pages are not written (the file was rebuilt).
    assert disk.counters.pages_written == 0


def test_clear_cold_cache():
    disk, pool = make_pool()
    pool.access("f", 0, dirty=True)
    pool.clear()
    assert pool.resident_pages == 0
    assert disk.counters.pages_written == 0


def test_clear_with_write_back():
    disk, pool = make_pool()
    pool.access("f", 0, dirty=True)
    pool.clear(write_dirty=True)
    assert disk.counters.pages_written == 1


def test_hit_rate():
    disk, pool = make_pool()
    pool.access("f", 0)
    pool.access("f", 0)
    pool.access("f", 1)
    assert pool.stats.hit_rate == pytest.approx(1 / 3)


def test_resident_and_dirty_page_counts():
    disk, pool = make_pool(capacity=10)
    pool.access("f", 0, dirty=True)
    pool.access("f", 1)
    pool.access("f", 2, dirty=True)
    assert pool.resident_pages == 3
    assert pool.dirty_pages == 2


class TestAccessRun:
    """access_run must behave exactly like per-page access() calls."""

    def _compare(self, page_lists, capacity=4, pre_dirty=()):
        """Drive both APIs through the same access pattern and diff them."""
        per_disk, per_pool = make_pool(capacity)
        run_disk, run_pool = make_pool(capacity)
        for file_name, page_no in pre_dirty:
            per_pool.access(file_name, page_no, dirty=True)
            run_pool.access(file_name, page_no, dirty=True)
        for file_name, pages in page_lists:
            hits = 0
            for page_no in pages:
                if per_pool.access(file_name, page_no):
                    hits += 1
            assert run_pool.access_run(file_name, pages) == hits
        assert run_disk.counters == per_disk.counters
        assert run_pool.stats == per_pool.stats
        assert run_pool._frames == per_pool._frames

    def test_consecutive_miss_run(self):
        self._compare([("f", [0, 1, 2, 3])])

    def test_run_with_hits_in_the_middle(self):
        self._compare([("f", [2]), ("f", [0, 1, 2, 3, 4])], capacity=10)

    def test_non_consecutive_pages_split_runs(self):
        self._compare([("f", [0, 1, 5, 6, 9])], capacity=10)

    def test_eviction_interleaves_identically(self):
        self._compare([("f", list(range(10)))], capacity=3)

    def test_dirty_eviction_write_lands_between_the_same_reads(self):
        # Dirty pages already resident are evicted (and written) mid-run;
        # the write must hit the disk tracker at the same point in the read
        # sequence as with per-page access, or head classification drifts.
        self._compare(
            [("f", list(range(10, 18)))],
            capacity=3,
            pre_dirty=[("g", 0), ("g", 1), ("g", 2)],
        )

    def test_runs_across_files_alternate(self):
        self._compare(
            [("a", [0, 1, 2]), ("b", [0, 1]), ("a", [3, 4])], capacity=20
        )
