"""Tests for the LRU buffer pool with dirty write-back."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel


def make_pool(capacity=4):
    disk = DiskModel()
    return disk, BufferPool(disk, capacity_pages=capacity)


def test_capacity_must_be_positive():
    disk = DiskModel()
    with pytest.raises(ValueError):
        BufferPool(disk, capacity_pages=0)


def test_miss_then_hit():
    disk, pool = make_pool()
    assert pool.access("heap", 0) is False
    assert pool.access("heap", 0) is True
    assert pool.stats.hits == 1
    assert pool.stats.misses == 1
    assert disk.counters.pages_read == 1


def test_lru_eviction_order():
    disk, pool = make_pool(capacity=2)
    pool.access("f", 0)
    pool.access("f", 1)
    pool.access("f", 0)      # page 0 becomes most-recent
    pool.access("f", 2)      # evicts page 1
    assert pool.contains("f", 0)
    assert not pool.contains("f", 1)
    assert pool.contains("f", 2)


def test_dirty_eviction_writes_back():
    disk, pool = make_pool(capacity=1)
    pool.access("f", 0, dirty=True)
    pool.access("f", 1)      # evicts dirty page 0
    assert pool.stats.dirty_evictions == 1
    assert disk.counters.pages_written == 1


def test_clean_eviction_does_not_write():
    disk, pool = make_pool(capacity=1)
    pool.access("f", 0)
    pool.access("f", 1)
    assert pool.stats.clean_evictions == 1
    assert disk.counters.pages_written == 0


def test_dirty_flag_is_sticky_until_flush():
    disk, pool = make_pool()
    pool.access("f", 0, dirty=True)
    pool.access("f", 0)          # clean access must not clear the dirty bit
    assert pool.is_dirty("f", 0)
    written = pool.flush_all()
    assert written == 1
    assert not pool.is_dirty("f", 0)


def test_create_registers_new_page_without_read():
    disk, pool = make_pool()
    pool.create("f", 0)
    assert disk.counters.pages_read == 0
    assert pool.is_dirty("f", 0)


def test_drop_file_discards_only_that_file():
    disk, pool = make_pool()
    pool.access("a", 0, dirty=True)
    pool.access("b", 0)
    pool.drop_file("a")
    assert not pool.contains("a", 0)
    assert pool.contains("b", 0)
    # Dropped dirty pages are not written (the file was rebuilt).
    assert disk.counters.pages_written == 0


def test_clear_cold_cache():
    disk, pool = make_pool()
    pool.access("f", 0, dirty=True)
    pool.clear()
    assert pool.resident_pages == 0
    assert disk.counters.pages_written == 0


def test_clear_with_write_back():
    disk, pool = make_pool()
    pool.access("f", 0, dirty=True)
    pool.clear(write_dirty=True)
    assert disk.counters.pages_written == 1


def test_hit_rate():
    disk, pool = make_pool()
    pool.access("f", 0)
    pool.access("f", 0)
    pool.access("f", 1)
    assert pool.stats.hit_rate == pytest.approx(1 / 3)


def test_resident_and_dirty_page_counts():
    disk, pool = make_pool(capacity=10)
    pool.access("f", 0, dirty=True)
    pool.access("f", 1)
    pool.access("f", 2, dirty=True)
    assert pool.resident_pages == 3
    assert pool.dirty_pages == 2
