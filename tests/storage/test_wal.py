"""Tests for the write-ahead log."""

import pytest

from repro.storage.disk import DiskModel
from repro.storage.wal import LogRecord, WriteAheadLog


def test_append_assigns_monotonic_lsns():
    wal = WriteAheadLog(DiskModel())
    r1 = wal.append("insert", {"table": "t"})
    r2 = wal.append("insert", {"table": "t"})
    assert r2.lsn == r1.lsn + 1


def test_append_does_no_io_until_flush():
    disk = DiskModel()
    wal = WriteAheadLog(disk)
    wal.append("insert")
    assert disk.counters.log_flushes == 0
    wal.flush()
    assert disk.counters.log_flushes == 1


def test_flush_pages_reflect_buffered_bytes():
    disk = DiskModel()
    wal = WriteAheadLog(disk)
    page = disk.params.page_size_bytes
    for _ in range(3):
        wal.append("insert", size_bytes=page)
    pages = wal.flush()
    assert pages == 3
    assert disk.counters.log_pages_written == 3


def test_group_commit_amortises_flushes():
    disk = DiskModel()
    wal = WriteAheadLog(disk)
    for _ in range(100):
        wal.append("insert", size_bytes=64)
    wal.commit()
    assert wal.flush_count == 1
    assert disk.counters.log_flushes == 1


def test_two_phase_commit_flushes_twice():
    disk = DiskModel()
    wal = WriteAheadLog(disk)
    wal.append("cm_update")
    wal.prepare()
    wal.commit_prepared()
    assert disk.counters.log_flushes == 2


def test_pending_records_tracking():
    wal = WriteAheadLog(DiskModel())
    wal.append("a")
    wal.append("b")
    assert wal.pending_records == 2
    wal.flush()
    assert wal.pending_records == 0


def test_truncate_clears_records():
    wal = WriteAheadLog(DiskModel())
    wal.append("a")
    wal.truncate()
    assert wal.records == []
    assert wal.pending_records == 0


def test_log_record_size_must_be_positive():
    with pytest.raises(ValueError):
        LogRecord(lsn=0, kind="x", size_bytes=0)
