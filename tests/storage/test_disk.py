"""Tests for the simulated disk and I/O accounting."""

import pytest

from repro.storage.disk import DiskModel, DiskParameters, IOBreakdown


def test_default_parameters_match_paper_table1():
    params = DiskParameters()
    assert params.seek_cost_ms == pytest.approx(5.5)
    assert params.seq_page_cost_ms == pytest.approx(0.078)


def test_sequential_reads_within_one_file_are_cheap():
    disk = DiskModel()
    disk.read_page("heap", 0)
    for page_no in range(1, 100):
        disk.read_page("heap", page_no)
    counters = disk.counters
    assert counters.random_reads == 1  # only the initial positioning seek
    assert counters.sequential_reads == 99


def test_rereading_the_same_page_counts_as_sequential():
    disk = DiskModel()
    disk.read_page("heap", 5)
    disk.read_page("heap", 5)
    assert disk.counters.random_reads == 1
    assert disk.counters.sequential_reads == 1


def test_jumps_within_a_file_are_seeks():
    disk = DiskModel()
    disk.read_page("heap", 0)
    disk.read_page("heap", 100)
    disk.read_page("heap", 3)
    assert disk.counters.random_reads == 3
    assert disk.counters.sequential_reads == 0


def test_interleaving_files_costs_seeks():
    disk = DiskModel()
    disk.read_page("heap", 0)
    disk.read_page("index", 0)
    disk.read_page("heap", 1)
    assert disk.counters.random_reads == 3


def test_elapsed_time_combines_reads_writes_and_log():
    params = DiskParameters(seek_cost_ms=10.0, seq_page_cost_ms=1.0, cpu_tuple_cost_ms=0.0)
    disk = DiskModel(params)
    disk.read_page("heap", 0)      # seek: 10
    disk.read_page("heap", 1)      # sequential: 1
    disk.write_page("heap", 2)     # sequential write: 1
    disk.log_flush(pages=3)        # seek + 3 sequential: 13
    assert disk.elapsed_ms() == pytest.approx(10 + 1 + 1 + 13)


def test_log_flush_resets_head_position():
    disk = DiskModel()
    disk.read_page("heap", 0)
    disk.log_flush(1)
    disk.read_page("heap", 1)
    # The read after the flush must seek back to the heap.
    assert disk.counters.random_reads == 2


def test_window_since_snapshot():
    disk = DiskModel()
    disk.read_page("heap", 0)
    snap = disk.snapshot()
    disk.read_page("heap", 1)
    disk.read_page("heap", 2)
    window = disk.window_since(snap)
    assert window.pages_read == 2
    assert window.sequential_reads == 2
    assert window.random_reads == 0


def test_reset_clears_counters_and_position():
    disk = DiskModel()
    disk.read_page("heap", 0)
    disk.read_page("heap", 1)
    disk.reset()
    assert disk.counters.pages_read == 0
    disk.read_page("heap", 2)
    assert disk.counters.random_reads == 1


def test_cpu_tuples_contribute_to_elapsed_time():
    params = DiskParameters(cpu_tuple_cost_ms=0.5)
    disk = DiskModel(params)
    disk.charge_cpu_tuples(10)
    assert disk.elapsed_ms() == pytest.approx(5.0)


def test_breakdown_subtract_and_copy():
    a = IOBreakdown(sequential_reads=5, random_reads=2, log_flushes=1)
    b = IOBreakdown(sequential_reads=3, random_reads=1)
    diff = a.subtract(b)
    assert diff.sequential_reads == 2
    assert diff.random_reads == 1
    assert diff.log_flushes == 1
    copy = a.copy()
    copy.sequential_reads = 0
    assert a.sequential_reads == 5


def test_breakdown_seeks_property():
    breakdown = IOBreakdown(random_reads=2, random_writes=3, log_flushes=1)
    assert breakdown.seeks == 6


class TestReadRunCharging:
    """record_read_run must be call-for-call equivalent to per-page reads."""

    def _sequence(self, disk):
        disk.read_page("heap", 40)          # position the head
        disk.read_page("other", 7)          # move it to another file

    def test_run_matches_per_page_reads(self):
        per_page = DiskModel()
        self._sequence(per_page)
        for page_no in range(10, 16):
            per_page.read_page("heap", page_no)

        run = DiskModel()
        self._sequence(run)
        run.read_page_run("heap", 10, 6)

        assert run.counters == per_page.counters
        assert run.elapsed_ms() == pytest.approx(per_page.elapsed_ms())

    def test_run_continuing_the_head_is_fully_sequential(self):
        disk = DiskModel()
        disk.read_page("heap", 9)
        disk.read_page_run("heap", 10, 5)
        assert disk.counters.random_reads == 1  # only the initial positioning
        assert disk.counters.sequential_reads == 5

    def test_run_leaves_head_at_last_page(self):
        disk = DiskModel()
        disk.read_page_run("heap", 10, 3)   # head now at page 12
        disk.read_page("heap", 13)
        assert disk.counters.sequential_reads == 3
        assert disk.counters.random_reads == 1

    def test_empty_run_is_a_no_op(self):
        disk = DiskModel()
        disk.read_page_run("heap", 10, 0)
        assert disk.counters == IOBreakdown()

    def test_interleaved_runs_between_files_still_seek(self):
        disk = DiskModel()
        disk.read_page_run("heap", 0, 4)
        disk.read_page_run("index", 0, 4)
        disk.read_page_run("heap", 4, 4)    # continues heap, but head moved
        assert disk.counters.random_reads == 3
        assert disk.counters.sequential_reads == 9
