"""Tests for pages and record identifiers."""

import pytest

from repro.storage.page import Page, RID


def test_append_and_get_round_trip():
    page = Page(page_no=0, capacity=3)
    slot = page.append({"a": 1})
    assert slot == 0
    assert page.get(0) == {"a": 1}
    assert page.num_tuples == 1


def test_page_capacity_enforced():
    page = Page(page_no=0, capacity=2)
    page.append({"a": 1})
    page.append({"a": 2})
    assert page.is_full
    with pytest.raises(ValueError):
        page.append({"a": 3})


def test_delete_keeps_slot_numbers_stable():
    page = Page(page_no=0, capacity=3)
    page.append({"a": 1})
    page.append({"a": 2})
    removed = page.delete(0)
    assert removed == {"a": 1}
    assert page.get(0) is None
    assert page.get(1) == {"a": 2}
    assert page.num_tuples == 1


def test_live_rows_skips_deleted_slots():
    page = Page(page_no=0, capacity=3)
    page.append({"a": 1})
    page.append({"a": 2})
    page.append({"a": 3})
    page.delete(1)
    assert list(page.live_rows()) == [(0, {"a": 1}), (2, {"a": 3})]


def test_get_out_of_range_raises():
    page = Page(page_no=0, capacity=2)
    with pytest.raises(IndexError):
        page.get(0)


def test_rids_are_ordered_and_hashable():
    assert RID(0, 1) < RID(1, 0)
    assert RID(2, 3) < RID(2, 4)
    assert len({RID(0, 0), RID(0, 0), RID(0, 1)}) == 2
