"""Tests for heap files."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel
from repro.storage.heap import HeapFile
from repro.storage.page import RID


def make_heap(tups_per_page=4, capacity_pages=100):
    disk = DiskModel()
    pool = BufferPool(disk, capacity_pages=capacity_pages)
    return disk, pool, HeapFile("heap", tups_per_page, pool)


def test_tups_per_page_must_be_positive():
    disk = DiskModel()
    pool = BufferPool(disk, capacity_pages=10)
    with pytest.raises(ValueError):
        HeapFile("heap", 0, pool)


def test_append_allocates_pages_as_needed():
    _disk, _pool, heap = make_heap(tups_per_page=2)
    rids = [heap.append({"x": i}) for i in range(5)]
    assert heap.num_pages == 3
    assert heap.num_tuples == 5
    assert rids[0] == RID(0, 0)
    assert rids[2] == RID(1, 0)
    assert rids[4] == RID(2, 0)


def test_fetch_returns_the_right_tuple():
    _disk, _pool, heap = make_heap()
    rid = heap.append({"x": 42})
    assert heap.fetch(rid) == {"x": 42}


def test_bulk_load_charges_no_io():
    disk, pool, heap = make_heap(tups_per_page=2)
    heap.bulk_load([{"x": i} for i in range(10)])
    assert heap.num_tuples == 10
    assert disk.counters.pages_read == 0
    assert pool.stats.accesses == 0


def test_scan_visits_rows_in_physical_order():
    _disk, _pool, heap = make_heap(tups_per_page=3)
    heap.bulk_load([{"x": i} for i in range(7)])
    values = [row["x"] for _rid, row in heap.scan()]
    assert values == list(range(7))


def test_scan_charges_sequential_io():
    disk, _pool, heap = make_heap(tups_per_page=2)
    heap.bulk_load([{"x": i} for i in range(10)])  # 5 pages
    list(heap.scan())
    assert disk.counters.pages_read == 5
    assert disk.counters.sequential_reads == 4
    assert disk.counters.random_reads == 1


def test_scan_pages_only_touches_requested_pages():
    disk, _pool, heap = make_heap(tups_per_page=2)
    heap.bulk_load([{"x": i} for i in range(10)])
    rows = [row["x"] for _rid, row in heap.scan_pages([1, 3])]
    assert rows == [2, 3, 6, 7]
    assert disk.counters.pages_read == 2


def test_delete_marks_slot_and_updates_count():
    _disk, _pool, heap = make_heap()
    rid = heap.append({"x": 1})
    heap.append({"x": 2})
    removed = heap.delete(rid)
    assert removed == {"x": 1}
    assert heap.num_tuples == 1
    assert heap.fetch(rid) is None


def test_rebuild_clustered_orders_rows_by_key():
    _disk, _pool, heap = make_heap(tups_per_page=2)
    heap.bulk_load([{"k": v} for v in [5, 3, 9, 1, 7, 2]])
    placed = heap.rebuild_clustered(lambda row: row["k"])
    values = [row["k"] for _rid, row in placed]
    assert values == [1, 2, 3, 5, 7, 9]
    # Physical order matches the returned order.
    assert [row["k"] for row in heap.all_rows()] == values
    # RIDs are re-assigned densely.
    assert placed[0][0] == RID(0, 0)


def test_appends_dirty_pages_in_buffer_pool():
    disk, pool, heap = make_heap(tups_per_page=2, capacity_pages=10)
    heap.append({"x": 1})
    assert pool.dirty_pages == 1


def test_fetch_out_of_range_raises():
    _disk, _pool, heap = make_heap()
    with pytest.raises(IndexError):
        heap.fetch(RID(5, 0))
