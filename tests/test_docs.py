"""The docs gate runs in tier-1 too, not just in CI's docs job.

``scripts/check_docs.py`` validates every intra-repo markdown link and runs
``doctest`` over the package's docstring examples (``Query.join``,
``CorrelationMap``); executing it here keeps the examples honest on every
local test run, not only on push.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_links_and_doctests_pass():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    # The gate is only meaningful while doctests actually exist.
    assert "ran 0 doctests" not in result.stdout
