"""Tests for the shared benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import (
    ExperimentScale,
    build_ebay_database,
    build_sdss_database,
    build_tpch_database,
    ebay_price_bucketer,
    scale_factor,
)
from repro.bench.reporting import format_series, format_table, print_header


def test_scale_factor_from_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert scale_factor() == 1.0
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert scale_factor() == 2.5
    monkeypatch.setenv("REPRO_SCALE", "not-a-number")
    assert scale_factor() == 1.0
    monkeypatch.setenv("REPRO_SCALE", "0.0001")
    assert scale_factor() == 0.05  # clamped


def test_experiment_scale_rows():
    scale = ExperimentScale(factor=0.5)
    assert scale.rows(100) == 50
    assert scale.rows(1) == 1


def test_build_ebay_database_small():
    db, rows = build_ebay_database(
        ExperimentScale(0.1), num_categories=100, items_per_category=(5, 10)
    )
    table = db.table("items")
    assert table.is_clustered
    assert table.clustered_attribute == "catid"
    assert table.num_rows == len(rows)
    assert table.has_clustered_buckets


def test_build_tpch_database_small():
    db, rows = build_tpch_database(ExperimentScale(0.05), num_orders=2_000)
    table = db.table("lineitem")
    assert table.clustered_attribute == "receiptdate"
    assert table.num_rows == len(rows) > 0


def test_build_sdss_database_small():
    db, rows = build_sdss_database(
        ExperimentScale(0.25), fields_ra=8, fields_dec=8, objects_per_field=8
    )
    table = db.table("photoobj")
    assert table.clustered_attribute == "objid"
    assert table.num_rows == len(rows)


def test_ebay_price_bucketer_levels():
    assert ebay_price_bucketer(3).width == 8.0
    assert ebay_price_bucketer(13).width == 8192.0


def test_format_table_alignment():
    rows = [
        {"bucket": 1, "pages": 96, "cost_ms": 15.34},
        {"bucket": 40, "pages": 160, "cost_ms": 19.5},
    ]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("bucket")
    assert len(lines) == 4
    assert "15.3" in text
    assert format_table([]) == "(no rows)"


def test_format_table_explicit_columns():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_series():
    text = format_series(
        {"CM": [1.0, 2.0], "B+Tree": [1.5, 2.5]},
        x_label="range",
        x_values=[10, 20],
    )
    assert text.splitlines()[0].split()[:3] == ["range", "CM", "B+Tree"]
    assert len(text.splitlines()) == 4


def test_print_header(capsys):
    print_header("Experiment 1")
    captured = capsys.readouterr().out
    assert "Experiment 1" in captured
    assert "=" in captured
