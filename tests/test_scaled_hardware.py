"""Tests for the benchmark harness's seek-cost scaling."""

import pytest

from repro.bench.harness import scaled_disk_parameters
from repro.core.cost import scan_cost, sorted_lookup_cost
from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile


def test_scaled_disk_parameters_only_scales_the_seek():
    params = scaled_disk_parameters(10)
    assert params.seek_cost_ms == pytest.approx(0.55)
    assert params.seq_page_cost_ms == pytest.approx(0.078)
    assert params.page_size_bytes == 8192


def test_scale_must_be_positive():
    with pytest.raises(ValueError):
        scaled_disk_parameters(0)
    with pytest.raises(ValueError):
        scaled_disk_parameters(-3)


def test_scaling_preserves_the_papers_crossover_shape():
    """Scaling table size and seek cost by the same factor preserves the
    ratio between an index lookup and a full scan (the quantity every
    experiment is about)."""
    correlation = CorrelationProfile(c_per_u=4.0, c_tups=7_000, u_tups=7_000)

    paper_profile = TableProfile(total_tups=18_000_000, tups_per_page=60)
    paper_hw = HardwareParameters()
    paper_ratio = sorted_lookup_cost(100, correlation, paper_profile, paper_hw) / scan_cost(
        paper_profile, paper_hw
    )

    factor = 180
    scaled_profile = TableProfile(total_tups=18_000_000 // factor, tups_per_page=60)
    scaled_corr = CorrelationProfile(
        c_per_u=4.0, c_tups=7_000 / factor, u_tups=7_000 / factor
    )
    scaled_hw = HardwareParameters.from_disk(scaled_disk_parameters(factor))
    scaled_ratio = sorted_lookup_cost(
        100, scaled_corr, scaled_profile, scaled_hw
    ) / scan_cost(scaled_profile, scaled_hw)

    assert scaled_ratio == pytest.approx(paper_ratio, rel=0.05)


def test_unscaled_seek_on_a_tiny_table_would_distort_the_shape():
    """Without the seek scaling, index plans on the shrunken table look far
    worse relative to a scan than they would at paper scale -- the artifact
    the scaling removes."""
    correlation_paper = CorrelationProfile(c_per_u=4.0, c_tups=7_000, u_tups=7_000)
    paper_profile = TableProfile(total_tups=18_000_000, tups_per_page=60)
    hw = HardwareParameters()
    paper_ratio = sorted_lookup_cost(
        100, correlation_paper, paper_profile, hw
    ) / scan_cost(paper_profile, hw)

    small_profile = TableProfile(total_tups=100_000, tups_per_page=60)
    small_corr = CorrelationProfile(c_per_u=4.0, c_tups=40, u_tups=40)
    small_ratio = sorted_lookup_cost(100, small_corr, small_profile, hw) / scan_cost(
        small_profile, hw
    )
    assert small_ratio > 2 * paper_ratio
