"""Tests for the TPC-H lineitem generator."""

import datetime
from collections import Counter

import pytest

from repro.core.statistics import exact_c_per_u
from repro.datasets.tpch import (
    TPCHConfig,
    date_to_day,
    day_to_date,
    expected_schema_columns,
    generate_lineitem,
    supplier_for_part,
)


SMALL = TPCHConfig(num_orders=2_000, num_parts=500, num_suppliers=40, seed=1)


def test_config_validation():
    with pytest.raises(ValueError):
        TPCHConfig(num_orders=0)
    with pytest.raises(ValueError):
        TPCHConfig(num_suppliers=2)


def test_schema_and_row_count():
    rows = generate_lineitem(SMALL)
    assert set(rows[0]) == set(expected_schema_columns())
    # 1-7 lineitems per order, so on average ~4.
    assert 2_000 <= len(rows) <= 7 * 2_000
    assert all(1 <= row["quantity"] <= 50 for row in rows[:100])


def test_date_helpers_round_trip():
    assert day_to_date(0) == datetime.date(1992, 1, 1)
    assert date_to_day(day_to_date(1234)) == 1234


def test_dates_are_ordered_and_in_range():
    rows = generate_lineitem(SMALL)
    for row in rows[:500]:
        assert row["shipdate"] < row["receiptdate"]
        assert 0 <= row["shipdate"] <= 2406
        assert row["receiptdate"] - row["shipdate"] <= 30


def test_receipt_lag_bumps_at_2_4_5_days():
    """The BHUNT-style 'bumps' the paper describes for delivery lags."""
    rows = generate_lineitem(SMALL)
    lags = Counter(row["receiptdate"] - row["shipdate"] for row in rows)
    common = sum(lags[lag] for lag in (2, 4, 5))
    assert common / len(rows) > 0.8


def test_shipdate_strongly_correlated_with_receiptdate():
    """Receipt dates per ship date stay small even when ship dates are popular.

    Uses a larger generation so each ship date has enough rows for the
    comparison to be meaningful (the correlation only deduplicates when there
    are duplicates to remove).
    """
    rows = generate_lineitem(
        TPCHConfig(num_orders=20_000, num_parts=2_000, num_suppliers=100, seed=2)
    )
    correlated = exact_c_per_u(rows, "shipdate", "receiptdate")
    uncorrelated = exact_c_per_u(rows, "shipdate", "partkey")
    assert correlated < 15
    assert correlated < 0.5 * uncorrelated


def test_each_part_has_exactly_four_suppliers():
    for partkey in (1, 17, 499):
        suppliers = {supplier_for_part(partkey, i, 40) for i in range(4)}
        assert len(suppliers) == 4
        assert all(1 <= s <= 40 for s in suppliers)


def test_suppkey_correlated_with_partkey():
    rows = generate_lineitem(SMALL)
    c_per_u = exact_c_per_u(rows, "partkey", "suppkey")
    # Each part maps to at most its 4 suppliers.
    assert c_per_u <= 4.0
    # The reverse direction is much weaker (each supplier serves many parts).
    reverse = exact_c_per_u(rows, "suppkey", "partkey")
    assert reverse > 10


def test_orderkeys_are_dense_and_linenumbers_start_at_one():
    rows = generate_lineitem(SMALL)
    orderkeys = {row["orderkey"] for row in rows}
    assert orderkeys == set(range(1, 2_001))
    first_lines = [row["linenumber"] for row in rows if row["linenumber"] == 1]
    assert len(first_lines) == 2_000


def test_generation_is_deterministic():
    assert generate_lineitem(SMALL) == generate_lineitem(SMALL)
