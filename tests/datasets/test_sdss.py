"""Tests for the synthetic SDSS catalogue."""

import pytest

from repro.core.bucketing import WidthBucketer
from repro.core.composite import CompositeKeySpec
from repro.core.statistics import StatisticsCollector, exact_c_per_u
from repro.datasets.sdss import (
    ATTRIBUTE_FAMILIES,
    SDSSConfig,
    generate_photoobj,
    photoobj_attributes,
)


SMALL = SDSSConfig(fields_ra=16, fields_dec=16, objects_per_field=10, block_size=4, seed=2)


@pytest.fixture(scope="module")
def rows():
    return generate_photoobj(SMALL)


def test_config_validation_and_sizes():
    with pytest.raises(ValueError):
        SDSSConfig(fields_ra=0)
    with pytest.raises(ValueError):
        SDSSConfig(block_size=0)
    assert SMALL.num_fields == 256
    assert SMALL.num_rows == 2560


def test_row_count_and_objid_sequence(rows):
    assert len(rows) == SMALL.num_rows
    assert [row["objid"] for row in rows] == list(range(len(rows)))


def test_39_query_attributes_exist(rows):
    attributes = photoobj_attributes()
    assert len(attributes) == 39
    assert len(set(attributes)) == 39
    for attribute in attributes:
        assert attribute in rows[0], attribute
        assert isinstance(rows[0][attribute], (int, float))


def test_mode_and_type_are_few_valued(rows):
    assert {row["mode"] for row in rows} <= {1, 2, 3}
    assert len({row["type"] for row in rows}) <= 5


def test_fieldid_strongly_correlated_with_objid(rows):
    """fieldID follows the sweep, so it pins objID to a contiguous range."""
    spec = CompositeKeySpec.build(["objid"], {"objid": WidthBucketer(SMALL.objects_per_field)})
    collector = StatisticsCollector(rows)
    profile = collector.correlation_profile("fieldid", spec)
    assert profile.c_per_u <= 2.0


def test_ra_dec_jointly_determine_position_but_not_alone(rows):
    """The Experiment 5 correlation: (ra, dec) >> ra or dec individually."""
    objid_buckets = CompositeKeySpec.build(
        ["objid"], {"objid": WidthBucketer(SMALL.objects_per_field * 4)}
    )
    collector = StatisticsCollector(rows)
    ra_spec = CompositeKeySpec.build(["ra"], {"ra": WidthBucketer(0.5)})
    dec_spec = CompositeKeySpec.build(["dec"], {"dec": WidthBucketer(0.5)})
    pair_spec = CompositeKeySpec.build(
        ["ra", "dec"], {"ra": WidthBucketer(0.5), "dec": WidthBucketer(0.5)}
    )
    ra_only = collector.correlation_profile(ra_spec, objid_buckets).c_per_u
    dec_only = collector.correlation_profile(dec_spec, objid_buckets).c_per_u
    pair = collector.correlation_profile(pair_spec, objid_buckets).c_per_u
    assert pair < ra_only / 3
    assert pair < dec_only / 3


def test_magnitudes_correlate_with_each_other_not_with_position(rows):
    psf_g_buckets = CompositeKeySpec.build(["psfmag_g"], {"psfmag_g": WidthBucketer(0.5)})
    psf_r_buckets = CompositeKeySpec.build(["psfmag_r"], {"psfmag_r": WidthBucketer(0.5)})
    collector = StatisticsCollector(rows)
    within_family = collector.correlation_profile(psf_g_buckets, psf_r_buckets).c_per_u
    across = collector.correlation_profile(psf_g_buckets, "fieldid").c_per_u
    assert within_family < across / 5


def test_extinction_follows_the_field(rows):
    c_per_u = exact_c_per_u(rows, "fieldid", CompositeKeySpec.build(
        ["extinction_r"], {"extinction_r": WidthBucketer(0.05)}
    ))
    assert c_per_u <= 3.0


def test_uncorrelated_family_is_uncorrelated(rows):
    collector = StatisticsCollector(rows)
    noise = collector.correlation_profile(
        CompositeKeySpec.build(["noise1"], {"noise1": WidthBucketer(10)}), "fieldid"
    ).c_per_u
    assert noise > 10


def test_attribute_families_cover_exactly_the_query_attributes():
    family_union = [a for family in ATTRIBUTE_FAMILIES.values() for a in family]
    assert sorted(family_union) == sorted(photoobj_attributes())


def test_generation_is_deterministic():
    assert generate_photoobj(SMALL) == generate_photoobj(SMALL)
