"""Tests for the eBay catalog generator."""

from collections import Counter

import pytest

from repro.core.statistics import exact_c_per_u
from repro.datasets.ebay import (
    Category,
    EbayConfig,
    expected_schema_columns,
    generate_categories,
    generate_items,
)


SMALL = EbayConfig(num_categories=120, items_per_category=(20, 40), seed=1)


def test_config_validation():
    with pytest.raises(ValueError):
        EbayConfig(num_categories=0)
    with pytest.raises(ValueError):
        EbayConfig(max_depth=9)
    with pytest.raises(ValueError):
        EbayConfig(items_per_category=(10, 5))


def test_categories_have_unique_ids_and_bounded_depth():
    categories = generate_categories(SMALL)
    assert len(categories) == 120
    assert len({c.catid for c in categories}) == 120
    assert all(1 <= len(c.path) <= 6 for c in categories)


def test_hierarchy_is_consistent():
    """A child label always appears under a single parent label."""
    categories = generate_categories(SMALL)
    parent_of = {}
    for category in categories:
        for level in range(1, len(category.path)):
            child, parent = category.path[level], category.path[level - 1]
            assert parent_of.setdefault(child, parent) == parent


def test_path_levels_pads_to_six():
    category = Category(catid=1, path=("a", "b"), median_price=10.0)
    levels = category.path_levels()
    assert levels["cat1"] == "a"
    assert levels["cat2"] == "b"
    assert levels["cat6"] == ""


def test_items_schema_and_counts():
    rows = generate_items(SMALL)
    assert set(rows[0]) == set(expected_schema_columns())
    assert 120 * 20 <= len(rows) <= 120 * 40
    assert len({row["itemid"] for row in rows}) == len(rows)


def test_prices_cluster_around_category_median():
    config = SMALL
    categories = generate_categories(config)
    rows = generate_items(config, categories)
    medians = {c.catid: c.median_price for c in categories}
    offsets = [abs(row["price"] - medians[row["catid"]]) for row in rows]
    # A $100 standard deviation: virtually all offsets within $500.
    within = sum(1 for offset in offsets if offset <= 500) / len(offsets)
    assert within > 0.99


def test_price_soft_determines_catid():
    rows = generate_items(SMALL)
    from repro.core.bucketing import WidthBucketer
    from repro.core.composite import CompositeKeySpec

    bucketed = CompositeKeySpec.build(["price"], {"price": WidthBucketer(1000.0)})
    c_per_u = exact_c_per_u(rows, bucketed, "catid")
    # Category medians are spread over $1M; $1000 price buckets rarely span
    # more than a couple of categories.
    assert c_per_u < 3.0


def test_cat_levels_roll_up_catid():
    rows = generate_items(SMALL)
    for attribute, max_c_per_u in [("cat6", 10), ("cat1", 130)]:
        c_per_u = exact_c_per_u(
            [row for row in rows if row[attribute]], attribute, "catid"
        )
        assert 1.0 <= c_per_u <= max_c_per_u


def test_cat5_values_have_a_spread_of_c_per_u():
    """Experiment 4 needs CAT5 values with widely different c_per_u."""
    rows = generate_items(EbayConfig(num_categories=400, items_per_category=(5, 10), seed=3))
    counts = {}
    for row in rows:
        if row["cat5"]:
            counts.setdefault(row["cat5"], set()).add(row["catid"])
    sizes = sorted(len(v) for v in counts.values())
    assert sizes[0] <= 3
    assert sizes[-1] >= 2 * sizes[0]


def test_generation_is_deterministic():
    assert generate_items(SMALL) == generate_items(SMALL)
    different = generate_items(EbayConfig(num_categories=120, items_per_category=(20, 40), seed=2))
    assert different != generate_items(SMALL)
