"""Tests for the workload/query generators."""

import pytest

from repro.core.advisor import TrainingQuery
from repro.datasets import workloads
from repro.datasets.ebay import EbayConfig, generate_items
from repro.datasets.sdss import SDSSConfig, generate_photoobj
from repro.datasets.tpch import TPCHConfig, generate_lineitem
from repro.engine.predicates import Between, ExpressionPredicate, InSet
from repro.engine.query import Query


@pytest.fixture(scope="module")
def sdss_rows():
    return generate_photoobj(SDSSConfig(fields_ra=8, fields_dec=8, objects_per_field=10))


@pytest.fixture(scope="module")
def ebay_rows():
    return generate_items(EbayConfig(num_categories=80, items_per_category=(10, 20)))


@pytest.fixture(scope="module")
def lineitem_rows():
    return generate_lineitem(TPCHConfig(num_orders=500, num_parts=100, num_suppliers=20))


def test_one_percent_range_hits_target_selectivity(sdss_rows):
    low, high = workloads.one_percent_range(sdss_rows, "psfmag_g", selectivity=0.01, seed=3)
    selected = sum(1 for row in sdss_rows if low <= row["psfmag_g"] <= high)
    assert 0.005 * len(sdss_rows) <= selected <= 0.05 * len(sdss_rows)
    with pytest.raises(ValueError):
        workloads.one_percent_range([], "x")


def test_sdss_selection_queries_cover_all_attributes(sdss_rows):
    queries = workloads.sdss_selection_queries(sdss_rows, ["psfmag_g", "fieldid", "ra"])
    assert len(queries) == 3
    assert {q.predicates.attributes[0] for q in queries} == {"psfmag_g", "fieldid", "ra"}
    assert all(isinstance(q, Query) for q in queries)


def test_tpch_shipdate_query(lineitem_rows):
    query = workloads.tpch_shipdate_query(lineitem_rows, 10, seed=1)
    predicate = query.predicates.on_attribute("shipdate")
    assert isinstance(predicate, InSet)
    assert len(predicate.values) == 10
    assert query.aggregate is not None
    # Values actually occur in the data.
    shipdates = {row["shipdate"] for row in lineitem_rows}
    assert set(predicate.values) <= shipdates


def test_ebay_price_range_and_category_queries():
    price_query = workloads.ebay_price_range_query(1000, 100)
    predicate = price_query.predicates.on_attribute("price")
    assert isinstance(predicate, Between)
    assert predicate.high == 1100
    cat_query = workloads.ebay_category_query("cat5", "toys/L4-3")
    assert cat_query.predicates.on_attribute("cat5") is not None
    assert cat_query.aggregate.kind == "avg"


def test_ebay_mixed_workload_structure(ebay_rows):
    steps = workloads.ebay_mixed_workload(
        ebay_rows, num_rounds=3, inserts_per_round=50, selects_per_round=5, seed=2
    )
    inserts = [step for step in steps if step[0] == "insert"]
    selects = [step for step in steps if step[0] == "select"]
    assert len(inserts) == 3
    assert len(selects) == 15
    batch = inserts[0][1]
    assert len(batch) == 50
    existing_ids = {row["itemid"] for row in ebay_rows}
    assert all(row["itemid"] not in existing_ids for row in batch)
    existing_catids = {row["catid"] for row in ebay_rows}
    assert all(row["catid"] in existing_catids for row in batch)


def test_ebay_cat_values_by_c_per_u(ebay_rows):
    chosen = workloads.ebay_cat_values_by_c_per_u(
        ebay_rows, "cat3", targets=(1, 5, 20)
    )
    assert len(chosen) == 3
    values = [value for value, _ in chosen]
    assert len(set(values)) == 3
    c_per_us = [c for _, c in chosen]
    assert c_per_us == sorted(c_per_us)


def test_sdss_sx6_query_and_training(sdss_rows):
    query = workloads.sdss_sx6_query([3, 7])
    assert isinstance(query.predicates.on_attribute("fieldid"), InSet)
    assert query.predicates.on_attribute("psfmag_g").high == 20.0
    training = workloads.sdss_sx6_training_query()
    assert isinstance(training, TrainingQuery)
    assert set(training.attributes) == {"fieldid", "mode", "type", "psfmag_g"}


def test_sdss_q2_query_matches_semantics(sdss_rows):
    query = workloads.sdss_q2_query(ra_range=(180, 200), dec_range=(0, 10),
                                    surface_range=(30, 60))
    matches = [row for row in sdss_rows if query.predicates.matches(row)]
    expected = [
        row
        for row in sdss_rows
        if 180 <= row["ra"] <= 200 and 0 <= row["dec"] <= 10 and 30 <= row["g"] + row["rho"] <= 60
    ]
    assert len(matches) == len(expected)
    assert any(isinstance(p, ExpressionPredicate) for p in query.predicates)


def test_training_queries_from_queries(lineitem_rows):
    queries = [
        workloads.tpch_shipdate_query(lineitem_rows, 5, seed=0),
        workloads.ebay_price_range_query(0, 100),
    ]
    training = workloads.training_queries_from_queries(queries)
    assert len(training) == 2
    assert training[0].n_lookups == 5
    assert "shipdate" in training[0].attributes
    assert training[1].n_lookups == 1
