"""End-to-end integration tests: miniature versions of the paper's scenarios.

These tests exercise the whole stack together -- data generation, clustering,
index/CM creation, planning, execution, maintenance and the advisor -- on
small inputs, asserting the qualitative results the experiments rely on.
"""

import pytest

from repro import (
    Aggregate,
    Between,
    CMAdvisor,
    Database,
    Equals,
    InSet,
    Query,
    TableProfile,
    TrainingQuery,
    WidthBucketer,
)
from repro.datasets.ebay import EbayConfig, generate_items
from repro.datasets.sdss import SDSSConfig, generate_photoobj
from repro.datasets.tpch import TPCHConfig, generate_lineitem
from repro.datasets.workloads import (
    ebay_price_range_query,
    sdss_q2_query,
    tpch_shipdate_query,
)


@pytest.fixture(scope="module")
def tpch_db():
    rows = generate_lineitem(
        TPCHConfig(num_orders=6_000, num_parts=800, num_suppliers=50,
                   orderdate_span_days=200, seed=3)
    )
    db = Database(buffer_pool_pages=800)
    db.create_table("lineitem", sample_row=rows[0], tups_per_page=60)
    db.load("lineitem", rows)
    db.cluster("lineitem", "receiptdate", pages_per_bucket=5)
    db.create_secondary_index("lineitem", "shipdate")
    db.create_correlation_map("lineitem", ["shipdate"])
    return db, rows


class TestTPCHScenario:
    """The Figure 1/3 scenario: shipdate predicates under receiptdate clustering."""

    def test_all_access_paths_agree(self, tpch_db):
        db, rows = tpch_db
        query = tpch_shipdate_query(rows, 5, seed=1)
        answers = {}
        for force in ("seq_scan", "sorted_index_scan", "cm_scan"):
            result = db.query(query, force=force, cold_cache=True)
            answers[force] = (result.rows_matched, round(result.value or 0, 6))
        assert len(set(answers.values())) == 1

    def test_correlation_makes_index_and_cm_cheap(self, tpch_db):
        db, rows = tpch_db
        query = tpch_shipdate_query(rows, 5, seed=2)
        seq = db.query(query, force="seq_scan", cold_cache=True)
        btree = db.query(query, force="sorted_index_scan", cold_cache=True)
        cm = db.query(query, force="cm_scan", cold_cache=True)
        assert btree.pages_visited < seq.pages_visited / 4
        assert cm.pages_visited < seq.pages_visited / 2
        assert cm.rows_matched == btree.rows_matched

    def test_cost_model_prediction_is_reported(self, tpch_db):
        db, rows = tpch_db
        query = tpch_shipdate_query(rows, 3, seed=3)
        result = db.query(query, force="sorted_index_scan", cold_cache=True)
        assert result.estimated_cost_ms is not None
        assert result.estimated_cost_ms > 0


class TestEbayScenario:
    """The Experiment 1-3 scenario: price/category CMs on a catalog."""

    @pytest.fixture(scope="class")
    def ebay_db(self):
        rows = generate_items(EbayConfig(num_categories=150, items_per_category=(40, 80), seed=5))
        db = Database(buffer_pool_pages=600)
        db.create_table("items", sample_row=rows[0], tups_per_page=50)
        db.load("items", rows)
        db.cluster("items", "catid", pages_per_bucket=5)
        db.create_secondary_index("items", "price")
        db.create_correlation_map(
            "items", ["price"], bucketers={"price": WidthBucketer(4096.0)}, name="cm_price"
        )
        db.create_correlation_map("items", ["cat3"], name="cm_cat3")
        return db, rows

    def test_cm_answers_price_range_like_btree(self, ebay_db):
        db, _rows = ebay_db
        query = ebay_price_range_query(1_000, 5_000)
        cm = db.query(query, force="cm_scan", cold_cache=True)
        btree = db.query(query, force="sorted_index_scan", cold_cache=True)
        assert cm.value == btree.value
        assert cm.rows_matched == btree.rows_matched

    def test_cm_is_orders_of_magnitude_smaller(self, ebay_db):
        db, _rows = ebay_db
        table = db.table("items")
        cm = table.correlation_maps["cm_price"]
        btree = next(iter(table.secondary_indexes.values()))
        assert cm.size_bytes() * 20 < btree.size_bytes()

    def test_updates_keep_every_structure_consistent(self, ebay_db):
        db, rows = ebay_db
        new_rows = [
            {**rows[0], "itemid": 10_000_000 + i, "price": 1234.5 + i} for i in range(25)
        ]
        db.insert("items", new_rows, batch_size=10)
        query = Query.select(
            "items", Between("price", 1234.0, 1260.0), aggregate=Aggregate.count()
        )
        counts = {
            force: db.query(query, force=force, cold_cache=True).value
            for force in ("seq_scan", "sorted_index_scan", "cm_scan")
        }
        assert len(set(counts.values())) == 1
        db.delete("items", [Between("itemid", 10_000_000, None)])
        counts_after = {
            force: db.query(query, force=force, cold_cache=True).value
            for force in ("seq_scan", "sorted_index_scan", "cm_scan")
        }
        assert len(set(counts_after.values())) == 1
        assert counts_after["seq_scan"] == counts["seq_scan"] - 25


class TestSDSSScenario:
    """The Experiment 5 scenario: composite CM on (ra, dec)."""

    @pytest.fixture(scope="class")
    def sdss_db(self):
        rows = generate_photoobj(
            SDSSConfig(fields_ra=12, fields_dec=12, objects_per_field=15, seed=7)
        )
        db = Database(buffer_pool_pages=800)
        db.create_table("photoobj", sample_row=rows[0], tups_per_page=20)
        db.load("photoobj", rows)
        db.cluster("photoobj", "objid", pages_per_bucket=5)
        db.create_correlation_map(
            "photoobj",
            ["ra", "dec"],
            bucketers={"ra": WidthBucketer(2.0), "dec": WidthBucketer(1.0)},
            name="cm_radec",
        )
        db.create_secondary_index("photoobj", ["ra", "dec"], name="btree_radec")
        return db, rows

    def test_region_query_consistent_and_localized(self, sdss_db):
        db, rows = sdss_db
        query = sdss_q2_query(
            ra_range=(185.0, 186.5), dec_range=(2.0, 2.6), surface_range=(10.0, 60.0)
        )
        cm = db.query(query, force="cm_scan", cold_cache=True)
        btree = db.query(query, force="sorted_index_scan", cold_cache=True)
        seq = db.query(query, force="seq_scan", cold_cache=True)
        assert cm.value == btree.value == seq.value
        assert cm.pages_visited < seq.pages_visited / 2

    def test_composite_cm_smaller_than_composite_btree(self, sdss_db):
        db, _rows = sdss_db
        table = db.table("photoobj")
        cm = table.correlation_maps["cm_radec"]
        btree = table.secondary_indexes["btree_radec"]
        assert cm.size_bytes() * 10 < btree.size_bytes()


class TestAdvisorScenario:
    """The Section 6 scenario: the advisor finds the composite correlation."""

    def test_advisor_on_generated_sdss_finds_field_correlation(self):
        rows = generate_photoobj(
            SDSSConfig(fields_ra=10, fields_dec=10, objects_per_field=10, seed=9)
        )
        advisor = CMAdvisor(
            rows,
            "objid",
            table_profile=TableProfile(total_tups=len(rows), tups_per_page=20, btree_height=2),
            sample_size=8_000,
        )
        recommendation = advisor.recommend(TrainingQuery.over_attributes("fieldid"))
        assert recommendation.designs
        best = recommendation.designs_by_slowdown()[0]
        assert best.estimated_c_per_u < 4.0
