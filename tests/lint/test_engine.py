"""Engine mechanics: suppressions, parse errors, registry, reporters."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    LintEngine,
    ModuleSource,
    Rule,
    all_rules,
    render_json,
    render_text,
)
from repro.lint.engine import parse_suppressions
from repro.lint.registry import _REGISTRY, register_rule, resolve_rule_ids
from repro.lint.violations import Violation

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SUPPRESSED = FIXTURES / "suppression" / "suppressed.py"


def run_fixture(*relpaths: str):
    engine = LintEngine(FIXTURES, rules=all_rules())
    return engine.run([FIXTURES / relpath for relpath in relpaths])


class TestSuppressions:
    def test_same_line_disable_suppresses_only_that_line(self):
        report = run_fixture("suppression/suppressed.py")
        determinism = [v for v in report.violations if v.rule_id == "REPRO103"]
        # line 9 is suppressed; line 13 still reports.
        assert [v.line for v in determinism] == [13]
        assert report.suppressed >= 1

    def test_disable_file_suppresses_whole_module(self):
        report = run_fixture("suppression/suppressed.py")
        assert not any(v.rule_id == "REPRO107" for v in report.violations)

    def test_unknown_token_reported_as_repro100(self):
        report = run_fixture("suppression/suppressed.py")
        unknown = [v for v in report.violations if v.rule_id == "REPRO100"]
        assert len(unknown) == 1
        assert unknown[0].line == 17
        assert "REPRO999" in unknown[0].message

    def test_suppression_by_name_equals_by_id(self):
        by_id = parse_suppressions("x = 1  # lint: disable=REPRO103\n")
        by_name = parse_suppressions("x = 1  # lint: disable=determinism\n")
        violation = Violation(
            rule_id="REPRO103",
            rule_name="determinism",
            path="x.py",
            line=1,
            column=1,
            message="",
        )
        assert by_id.is_suppressed(violation)
        assert by_name.is_suppressed(violation)

    def test_string_literals_are_not_suppressions(self):
        text = 'GRAMMAR = "# lint: disable=REPRO105"\n'
        suppressions = parse_suppressions(text)
        assert not suppressions.tokens

    def test_multiple_rules_one_comment(self):
        suppressions = parse_suppressions(
            "x = 1  # lint: disable=REPRO103,REPRO104\n"
        )
        tokens = {token for _line, _col, token in suppressions.tokens}
        assert tokens == {"REPRO103", "REPRO104"}


class TestEngine:
    def test_parse_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = LintEngine(tmp_path, rules=all_rules()).run([bad])
        assert [v.rule_id for v in report.violations] == ["REPRO000"]
        assert not report.ok

    def test_directory_expansion_sorted_and_deduplicated(self):
        engine = LintEngine(FIXTURES, rules=all_rules())
        once = engine.iter_files([FIXTURES / "imports"])
        twice = engine.iter_files(
            [FIXTURES / "imports", FIXTURES / "imports" / "bad_imports.py"]
        )
        assert once == twice
        assert once == sorted(once)

    def test_violations_sorted_by_location(self):
        report = run_fixture("determinism/bad_clocks.py", "typed/bad_untyped.py")
        keys = [v.sort_key for v in report.violations]
        assert keys == sorted(keys)

    def test_ok_property(self):
        assert run_fixture("determinism/good_seeded.py").ok
        assert not run_fixture("determinism/bad_clocks.py").ok


class TestRegistry:
    def test_all_rules_sorted_by_id(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_resolve_accepts_ids_and_names(self):
        assert resolve_rule_ids(["REPRO103"]) == {"REPRO103"}
        assert resolve_rule_ids(["determinism"]) == {"REPRO103"}
        assert resolve_rule_ids(["slots-on-hot-path", "REPRO101"]) == {
            "REPRO105",
            "REPRO101",
        }

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rule_ids(["REPRO999"])

    def test_duplicate_id_rejected(self):
        class Duplicate(Rule):
            rule_id = "REPRO103"
            name = "not-determinism"

        with pytest.raises(ValueError, match="duplicate rule id"):
            register_rule(Duplicate)
        # The registry still maps the id to the original class.
        assert _REGISTRY["REPRO103"].name == "determinism"

    def test_reregistering_same_class_is_noop(self):
        original = _REGISTRY["REPRO103"]
        assert register_rule(original) is original


class TestReporters:
    def test_text_report_lines_and_summary(self):
        report = run_fixture("imports/bad_imports.py")
        text = render_text(report)
        lines = text.splitlines()
        assert lines[0].startswith("imports/bad_imports.py:3:")
        assert "REPRO107[unused-import]" in lines[0]
        assert lines[-1].endswith("(1 files, 8 rules)")

    def test_json_report_round_trips(self):
        report = run_fixture("imports/bad_imports.py")
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert len(payload["violations"]) == len(report.violations)
        first = payload["violations"][0]
        assert first["rule_id"] == "REPRO107"
        assert first["path"] == "imports/bad_imports.py"
        assert first["line"] == 3

    def test_module_source_line_accessor(self):
        module = ModuleSource(SUPPRESSED, "suppressed.py", SUPPRESSED.read_text())
        assert module.line(1).startswith('"""Fixture')
        assert module.line(0) == ""
        assert module.line(10_000) == ""
