"""The scripts/lint.py command-line interface."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINT = REPO_ROOT / "scripts" / "lint.py"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_cli(*args: str):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in ("REPRO101", "REPRO104", "REPRO107"):
        assert rule_id in result.stdout


def test_check_exits_nonzero_on_violations():
    result = run_cli("--check", str(FIXTURES / "determinism" / "bad_clocks.py"))
    assert result.returncode == 1
    assert "REPRO103" in result.stdout


def test_check_exits_zero_on_clean_target():
    result = run_cli("--check", str(FIXTURES / "determinism" / "good_seeded.py"))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 violations" in result.stdout


def test_json_format_and_output_file(tmp_path):
    out = tmp_path / "report.json"
    result = run_cli(
        "--format",
        "json",
        "--output",
        str(out),
        str(FIXTURES / "imports" / "bad_imports.py"),
    )
    assert result.returncode == 0  # no --check: reporting only
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["violations"][0]["rule_id"] == "REPRO107"


def test_select_runs_only_named_rules():
    result = run_cli(
        "--select",
        "determinism",
        str(FIXTURES / "typed" / "bad_untyped.py"),
    )
    assert result.returncode == 0
    assert "0 violations" in result.stdout
    assert "1 rules" in result.stdout


def test_ignore_skips_named_rules():
    result = run_cli(
        "--check",
        "--ignore",
        "REPRO106",
        str(FIXTURES / "typed" / "bad_untyped.py"),
    )
    assert result.returncode == 0, result.stdout


def test_unknown_rule_token_is_a_usage_error():
    result = run_cli("--select", "REPRO999", str(FIXTURES))
    assert result.returncode == 2
    assert "unknown rule" in result.stderr
