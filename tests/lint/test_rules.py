"""Each rule against its fixture corpus: exact ids, lines, and clean files.

Every rule has at least one *failing* fixture (asserting the exact rule id
and line number of each finding) and one *good* fixture shaped like the
code the engine actually contains, which must come back clean.
"""

from pathlib import Path

import pytest

from repro.lint import LintEngine, all_rules
from repro.lint.registry import _REGISTRY

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_rule(rule_id: str, *relpaths: str) -> list:
    """Lint fixture files with a single rule; return its violations."""
    rules = [_REGISTRY[rule_id]()]
    engine = LintEngine(FIXTURES, rules=rules)
    report = engine.run([FIXTURES / relpath for relpath in relpaths])
    return [v for v in report.violations if v.rule_id == rule_id]


def findings(rule_id: str, *relpaths: str) -> list[tuple[str, int]]:
    return [(v.path, v.line) for v in run_rule(rule_id, *relpaths)]


class TestPlannerPurity:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO101", "planner_purity/core/cost.py") == [
            ("planner_purity/core/cost.py", 3),
            ("planner_purity/core/cost.py", 4),
            ("planner_purity/core/cost.py", 8),
        ]

    def test_good_fixture_clean(self):
        assert findings("REPRO101", "planner_purity/core/statistics.py") == []

    def test_out_of_scope_module_ignored(self):
        # The same code outside core/cost|statistics / engine/planner is fine.
        assert findings("REPRO101", "parity/engine/bad_kernel.py") == []


class TestParityAccounting:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO102", "parity/engine/bad_kernel.py") == [
            ("parity/engine/bad_kernel.py", 5),  # read_pages outside kernels
            ("parity/engine/bad_kernel.py", 7),  # filter before charge
        ]

    def test_shared_kernel_shape_clean(self):
        assert findings("REPRO102", "parity/engine/access.py") == []


class TestDeterminism:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO103", "determinism/bad_clocks.py") == [
            ("determinism/bad_clocks.py", 5),  # from random import shuffle
            ("determinism/bad_clocks.py", 9),  # time.time()
            ("determinism/bad_clocks.py", 13),  # shuffle() resolves to random.
            ("determinism/bad_clocks.py", 14),  # random.choice()
        ]

    def test_seeded_random_clean(self):
        assert findings("REPRO103", "determinism/good_seeded.py") == []


class TestSchedulerSafety:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO104", "scheduler/bad_scheduler.py") == [
            ("scheduler/bad_scheduler.py", 7),  # time.sleep
            ("scheduler/bad_scheduler.py", 8),  # list(iter_rows())
            ("scheduler/bad_scheduler.py", 12),  # sorted(entry._iterator)
        ]

    def test_one_batch_per_quantum_clean(self):
        assert findings("REPRO104", "scheduler/good_scheduler.py") == []

    def test_drains_only_flagged_in_scheduler_modules(self):
        # time.sleep is banned everywhere; eager drains only in scheduler
        # files -- good_seeded.py's list() over plain values must not fire.
        assert findings("REPRO104", "determinism/good_seeded.py") == []


class TestSlots:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO105", "slots/storage/bad_container.py") == [
            ("slots/storage/bad_container.py", 6),
            ("slots/storage/bad_container.py", 12),
        ]

    def test_slotted_and_exempt_shapes_clean(self):
        assert findings("REPRO105", "slots/storage/good_container.py") == []

    def test_out_of_scope_directory_ignored(self):
        # The same slotless classes outside storage//plan//executor are fine.
        assert findings("REPRO105", "typed/bad_untyped.py") == []


class TestTypedDefs:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO106", "typed/bad_untyped.py") == [
            ("typed/bad_untyped.py", 4),  # missing return
            ("typed/bad_untyped.py", 8),  # missing param
            ("typed/bad_untyped.py", 12),  # *args
            ("typed/bad_untyped.py", 12),  # **kwargs
            ("typed/bad_untyped.py", 17),  # method param (self exempt)
        ]

    def test_fully_annotated_clean(self):
        assert findings("REPRO106", "typed/good_typed.py") == []


class TestUnusedImports:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO107", "imports/bad_imports.py") == [
            ("imports/bad_imports.py", 3),  # import json
            ("imports/bad_imports.py", 4),  # Mapping
        ]

    def test_quoted_annotations_keep_imports_alive(self):
        assert findings("REPRO107", "imports/good_imports.py") == []


class TestPartitionAccounting:
    def test_bad_fixture_exact_findings(self):
        assert findings("REPRO108", "partition/engine/partition.py") == [
            ("partition/engine/partition.py", 5),  # read_pages in fan-out
            ("partition/engine/partition.py", 7),  # fetch in fan-out
            ("partition/engine/partition.py", 8),  # buffer-pool access
        ]

    def test_exchange_bad_fixture_exact_findings(self):
        assert findings("REPRO108", "partition/engine/exchange.py") == [
            ("partition/engine/exchange.py", 5),  # scan while gathering parts
            ("partition/engine/exchange.py", 6),  # read_page for a merge head
            ("partition/engine/exchange.py", 7),  # buffer-pool access_run
        ]

    def test_orchestration_shape_clean(self):
        assert findings("REPRO108", "partition/engine/parallel.py") == []

    def test_out_of_scope_module_ignored(self):
        # The same page reads outside the fan-out modules are REPRO102's
        # business (scoped to its own kernel-module rules), not REPRO108's.
        assert findings("REPRO108", "parity/engine/bad_kernel.py") == []


def test_every_rule_has_a_failing_fixture():
    """The acceptance criterion: each custom rule trips on some fixture."""
    engine = LintEngine(FIXTURES, rules=all_rules())
    report = engine.run([FIXTURES])
    tripped = {violation.rule_id for violation in report.violations}
    expected = {f"REPRO10{n}" for n in range(1, 9)}
    assert expected <= tripped


@pytest.mark.parametrize("rule", all_rules(), ids=lambda rule: rule.rule_id)
def test_rule_metadata_complete(rule):
    assert rule.rule_id.startswith("REPRO")
    assert rule.name
    assert rule.description
