"""Good fixture: every import used, including inside quoted annotations."""

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from decimal import Decimal  # used only in the quoted annotation below


def total(values: "list[Decimal]") -> Any:
    return sum(values)


__all__ = ["total"]
