"""Bad fixture: dead imports of both shapes."""

import json  # line 3: REPRO107 (unused module import)
from typing import Any, Mapping  # line 4: REPRO107 (Mapping unused)


def dump(value: Any) -> str:
    return str(value)
