"""Good fixture: the real fan-out shape -- orchestrate scans, never read."""


def run_partition_child(exchange, index, context):  # noqa: fixtures skip typed-defs
    child = exchange.sources[index]
    device = exchange.devices[index]
    before = device.snapshot()
    rows = [dict(row) for row in child.iter_rows(context.child())]
    window = device.window_since(before)
    return rows, window
