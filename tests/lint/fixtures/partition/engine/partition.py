"""Bad fixture: partition fan-out that pulls pages and pool entries itself."""


def rogue_partition_scan(partition, predicates):  # noqa: fixtures skip typed-defs
    for page in partition.heap.read_pages(range(partition.heap.num_pages)):
        yield from page.rows
    row = partition.heap.fetch((0, 0))  # line 7: REPRO108 (heap read)
    partition.pool.access(partition.name, 0)  # line 8: REPRO108 (pool access)
    return row
