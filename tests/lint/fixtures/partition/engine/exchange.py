"""Bad fixture: exchange operators that read heap pages while merging."""


def merge_partition_streams(exchange, context):  # noqa: fixtures skip typed-defs
    parts = [list(source.heap.scan()) for source in exchange.sources]
    head = exchange.sources[0].heap.read_page(0)
    exchange.pool.access_run(exchange.name, 0, 4)
    return parts, head
