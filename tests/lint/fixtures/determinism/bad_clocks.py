"""Bad fixture: ambient clocks and module-level randomness."""

import random
import time
from random import shuffle  # line 5: REPRO103 (from-random import)


def stamp() -> float:
    return time.time()  # line 9: REPRO103 (ambient clock)


def pick(items: list) -> object:
    shuffle(items)
    return random.choice(items)  # line 14: REPRO103 (module-level random)
