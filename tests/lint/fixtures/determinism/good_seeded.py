"""Good fixture: randomness from a seeded instance only."""

from random import Random


def pick(items: list, seed: int) -> object:
    rng = Random(seed)
    return rng.choice(items)
