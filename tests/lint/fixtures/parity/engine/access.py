"""Good fixture: the shared-kernel shape (charge before filter)."""


def _sweep_pages(heap, predicates, counters, visible):
    for page in heap.read_pages(range(heap.num_pages)):  # allowed here
        for row in page.rows:
            counters.rows_examined += 1  # charged first
            if visible(row) and predicates.matches(row):
                yield row
