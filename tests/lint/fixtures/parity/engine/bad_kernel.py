"""Bad fixture: a rogue scan that reads pages itself and filters first."""


def rogue_scan(heap, predicates, counters):  # noqa: fixtures skip typed-defs
    for page in heap.read_pages(range(heap.num_pages)):  # line 5: REPRO102
        for row in page.rows:
            if predicates.matches(row):  # line 7: REPRO102 (filter first...)
                counters.rows_examined += 1  # (...charge after: wrong order)
                yield row
