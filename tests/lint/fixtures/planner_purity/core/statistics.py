"""Good fixture: costing from sampled statistics only."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.storage.disk import DiskModel  # type-only: allowed


def estimate_pages(sampled_rows: int, tups_per_page: int) -> float:
    return max(1.0, sampled_rows / tups_per_page)


def price(pages: float, disk: "DiskModel") -> float:
    return pages * disk.params.seek_cost_ms  # reads parameters, not pages
