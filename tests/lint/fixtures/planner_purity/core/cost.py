"""Bad fixture: a costing module that touches storage three ways."""

import repro.storage.disk  # line 3: REPRO101 (storage import)
from repro.storage.heap import HeapFile  # line 4: REPRO101 (storage from-import)


def cost_by_peeking(heap: HeapFile) -> int:
    page = heap.read_page(0)  # line 8: REPRO101 (read API call)
    return len(page.rows)
