"""Fixture exercising the suppression grammar."""
# lint: disable-file=unused-import

import json
import time


def now() -> float:
    return time.time()  # lint: disable=REPRO103


def later() -> float:
    return time.time()  # line 13: REPRO103 (not suppressed)


def typo() -> None:
    pass  # lint: disable=REPRO999
