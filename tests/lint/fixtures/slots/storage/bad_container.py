"""Bad fixture: hot-path containers without __slots__."""

from dataclasses import dataclass


class PageHeader:  # line 6: REPRO105 (no __slots__)
    def __init__(self, page_no: int) -> None:
        self.page_no = page_no


@dataclass
class Frame:  # line 12: REPRO105 (dataclass without slots=True)
    page_no: int = 0
    dirty: bool = False
