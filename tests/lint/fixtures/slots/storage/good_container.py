"""Good fixture: slotted containers plus the exempt shapes."""

from dataclasses import dataclass
from enum import Enum
from typing import Protocol


class PageHeader:
    __slots__ = ("page_no",)

    def __init__(self, page_no: int) -> None:
        self.page_no = page_no


@dataclass(slots=True)
class Frame:
    page_no: int = 0
    dirty: bool = False


class PageLike(Protocol):  # Protocols cannot be slotted: exempt
    page_no: int


class FrameState(Enum):  # Enums are exempt
    CLEAN = 0
    DIRTY = 1


class PageError(Exception):  # Exceptions are exempt
    pass
