"""Bad fixture: signature gaps of every kind."""


def no_return(x: int):  # line 4: REPRO106 (return)
    return x


def no_param(x) -> int:  # line 8: REPRO106 (parameter)
    return x


def bad_star(*args, **kwargs) -> None:  # line 12: REPRO106 (two params)
    pass


class Holder:
    def method(self, value) -> None:  # line 17: REPRO106 (value; self exempt)
        self.value = value
