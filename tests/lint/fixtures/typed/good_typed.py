"""Good fixture: fully annotated signatures."""

from typing import Any


def typed(x: int, *args: int, flag: bool = False, **kwargs: Any) -> int:
    return x + len(args)


class Holder:
    def method(self, value: int) -> None:
        self.value = value

    @classmethod
    def build(cls, value: int) -> "Holder":
        holder = cls()
        holder.method(value)
        return holder
