"""Good fixture: one batch per quantum, no sleeps."""


def quantum(entry) -> object:
    return next(entry._iterator, None)  # bounded: one batch per quantum
