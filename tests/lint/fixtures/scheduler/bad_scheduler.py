"""Bad fixture: a scheduler that sleeps and drains whole pipelines."""

import time


def quantum(entry) -> list:
    time.sleep(0.01)  # line 7: REPRO104 (blocking sleep)
    return list(entry.plan.iter_rows())  # line 8: REPRO104 (unbounded drain)


def drain_iterator(entry) -> list:
    return sorted(entry._iterator)  # line 12: REPRO104 (iterator operand)
