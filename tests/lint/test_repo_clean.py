"""The dogfooding gate: the engine's own sources lint clean.

This is the local, always-on equivalent of CI's ``scripts/lint.py
--check`` job: any regression against the engine invariants (a planner
heap read, an unseeded random, a slotless hot-path class, a signature
gap) fails the ordinary test run, not just the push.
"""

from pathlib import Path

from repro.lint import LintEngine, all_rules, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_lints_clean():
    engine = LintEngine(REPO_ROOT, rules=all_rules())
    report = engine.run([SRC])
    assert report.ok, "\n" + render_text(report)
    assert report.files_checked > 50  # the whole package was really scanned
    assert len(report.rules_run) == 8
