"""Tests for correlation-statistics collection (Section 4.2)."""

import random

import pytest

from repro.core.bucketing import WidthBucketer
from repro.core.composite import CompositeKeySpec
from repro.core.statistics import (
    StatisticsCollector,
    c_per_u_from_cardinalities,
    exact_c_per_u,
)


def city_state_rows():
    """The paper's running example: city soft-determines state."""
    pairs = [
        ("Boston", "MA"),
        ("Boston", "MA"),
        ("Boston", "NH"),
        ("Springfield", "MA"),
        ("Springfield", "OH"),
        ("Cambridge", "MA"),
        ("Toledo", "OH"),
        ("Jackson", "MS"),
        ("Manchester", "NH"),
        ("Manchester", "MN"),
    ]
    return [{"city": c, "state": s, "salary": i} for i, (c, s) in enumerate(pairs)]


def test_c_per_u_from_cardinalities():
    assert c_per_u_from_cardinalities(distinct_uc=9, distinct_u=6) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        c_per_u_from_cardinalities(1, 0)


def test_exact_correlation_profile_city_state():
    collector = StatisticsCollector(city_state_rows())
    profile = collector.correlation_profile("city", "state")
    # 9 distinct (city, state) pairs over 6 distinct cities.
    assert profile.c_per_u == pytest.approx(9 / 6)
    # 10 rows over 5 states and 6 cities.
    assert profile.c_tups == pytest.approx(10 / 5)
    assert profile.u_tups == pytest.approx(10 / 6)


def test_perfect_functional_dependency_has_c_per_u_one():
    rows = [{"zip": i, "state": "MA" if i < 50 else "NH"} for i in range(100)]
    collector = StatisticsCollector(rows)
    assert collector.correlation_profile("zip", "state").c_per_u == pytest.approx(1.0)


def test_uncorrelated_attributes_have_high_c_per_u():
    rng = random.Random(0)
    rows = [{"a": rng.randrange(20), "b": rng.randrange(20)} for _ in range(5000)]
    collector = StatisticsCollector(rows)
    profile = collector.correlation_profile("a", "b")
    # Nearly every (a, b) combination appears: c_per_u approaches |b| = 20.
    assert profile.c_per_u > 15


def test_summarize_single_and_composite():
    collector = StatisticsCollector(city_state_rows())
    city = collector.summarize("city")
    assert city.distinct_values == 6
    assert city.tuples_per_value == pytest.approx(10 / 6)
    pair = collector.summarize(CompositeKeySpec.build(["city", "state"]))
    assert pair.distinct_values == 9


def test_composite_key_is_stronger_determinant():
    """(city, state) determines zip better than city alone (Section 1)."""
    rows = []
    for i in range(200):
        state = "MA" if i % 2 == 0 else "OH"
        rows.append({"city": "Springfield", "state": state, "zip": f"{state}-1"})
    rows += [{"city": f"c{i}", "state": "MA", "zip": f"z{i}"} for i in range(50)]
    collector = StatisticsCollector(rows)
    single = collector.correlation_profile("city", "zip")
    composite = collector.correlation_profile(
        CompositeKeySpec.build(["city", "state"]), "zip"
    )
    assert composite.c_per_u < single.c_per_u


def test_bucketed_key_reduces_distinct_count_not_below_targets():
    rows = [{"price": float(i), "cat": i // 100} for i in range(1000)]
    collector = StatisticsCollector(rows)
    bucketed = CompositeKeySpec.build(["price"], {"price": WidthBucketer(100)})
    profile = collector.correlation_profile(bucketed, "cat")
    # Buckets align exactly with categories: perfect correlation.
    assert profile.c_per_u == pytest.approx(1.0)
    unbucketed = collector.correlation_profile("price", "cat")
    assert unbucketed.c_per_u == pytest.approx(1.0)
    assert collector.summarize(bucketed).distinct_values == 10


def test_distinct_sampling_estimate_close_to_truth():
    rng = random.Random(3)
    rows = [{"v": rng.randrange(2000)} for _ in range(30_000)]
    collector = StatisticsCollector(rows)
    estimate = collector.distinct_sampling_estimate("v", sample_size=512, seed=1)
    truth = len({row["v"] for row in rows})
    assert 0.7 * truth <= estimate <= 1.3 * truth


def test_estimated_profile_matches_exact_on_strong_correlation():
    rng = random.Random(5)
    rows = []
    for i in range(20_000):
        c = rng.randrange(500)
        rows.append({"u": c * 2 + rng.randrange(2), "c": c})
    collector = StatisticsCollector(rows)
    exact = collector.correlation_profile("u", "c")
    estimated = collector.estimated_correlation_profile("u", "c", sample_size=5000, seed=2)
    assert exact.c_per_u == pytest.approx(1.0)
    assert estimated.c_per_u < 2.5


def test_estimated_profile_reuses_provided_sample():
    rows = [{"u": i % 10, "c": i % 5} for i in range(1000)]
    collector = StatisticsCollector(rows)
    sample = collector.collect_sample(sample_size=200, seed=7)
    a = collector.estimated_correlation_profile("u", "c", sample)
    b = collector.estimated_correlation_profile("u", "c", sample)
    assert a == b


def test_empty_rows_profile_is_zero():
    collector = StatisticsCollector([])
    profile = collector.correlation_profile("a", "b")
    assert profile.c_per_u == 0.0
    assert collector.total_rows == 0


def test_exact_c_per_u_helper():
    rows = city_state_rows()
    assert exact_c_per_u(rows, "city", "state") == pytest.approx(9 / 6)
    assert exact_c_per_u([], "city", "state") == 0.0


class TestDeleteHeavyBoundsRebuild:
    """`observe_delete` churn must re-tighten per-attribute min/max."""

    def _stats(self, threshold):
        from repro.core.statistics import IncrementalTableStatistics

        return IncrementalTableStatistics(
            sample_capacity=10_000, bounds_rebuild_deletes=threshold
        )

    def test_bounds_tighten_after_enough_deletes(self):
        stats = self._stats(threshold=50)
        rows = [{"v": i} for i in range(1000)]
        for row in rows:
            stats.observe_insert(row)
        assert stats.attribute_range("v") == (0, 999)
        # Delete the top half; the 500th delete crosses the threshold well
        # past the removed maximum, so the bounds come back from the sample.
        for row in rows[500:]:
            stats.observe_delete(row)
        assert stats.attribute_range("v") == (0, 499)
        assert stats.total_rows == 500

    def test_bounds_stay_wide_below_the_threshold(self):
        stats = self._stats(threshold=100)
        rows = [{"v": i} for i in range(200)]
        for row in rows:
            stats.observe_insert(row)
        for row in rows[150:]:  # 50 deletes < threshold
            stats.observe_delete(row)
        # Conservatively wide until enough churn accumulates.
        assert stats.attribute_range("v") == (0, 199)

    def test_inserts_after_rebuild_keep_widening(self):
        stats = self._stats(threshold=10)
        rows = [{"v": i} for i in range(100)]
        for row in rows:
            stats.observe_insert(row)
        for row in rows[90:]:
            stats.observe_delete(row)
        assert stats.attribute_range("v") == (0, 89)
        stats.observe_insert({"v": 500})
        assert stats.attribute_range("v") == (0, 500)

    def test_subsampled_reservoir_keeps_conservative_bounds(self):
        # With an incomplete sample the reservoir's extremes can lie strictly
        # inside the live domain; rebuilding from it would flip the safe
        # over-estimate into an under-estimate, so the rebuild must not fire.
        from repro.core.statistics import IncrementalTableStatistics

        stats = IncrementalTableStatistics(
            sample_capacity=100, bounds_rebuild_deletes=50
        )
        rows = [{"v": i} for i in range(10_000)]
        for row in rows:
            stats.observe_insert(row)
        assert not stats.sample_is_complete
        for row in rows[4_000:4_200]:  # interior deletes only
            stats.observe_delete(row)
        # 0 and 9999 are both still live; the bounds must not clip inward.
        assert stats.attribute_range("v") == (0, 9_999)

    def test_rebuild_threshold_validation(self):
        import pytest as _pytest

        from repro.core.statistics import IncrementalTableStatistics

        with _pytest.raises(ValueError):
            IncrementalTableStatistics(bounds_rebuild_deletes=0)

    def test_between_lookup_estimate_tracks_a_shrinking_domain(self):
        """The planner's range lookup count follows the rebuilt bounds."""
        from repro.engine.database import Database
        from repro.engine.predicates import Between
        from repro.engine.query import Query

        db = Database(buffer_pool_pages=200, stats_sample_size=10_000)
        db.create_table("t", columns=["k", "v"], tups_per_page=20)
        db.load("t", [{"k": i, "v": i % 7} for i in range(1000)])
        db.cluster("t", "k")
        table = db.table("t")
        table.statistics.bounds_rebuild_deletes = 50
        query = Query.select("t", Between("k", 0, 99))

        before = db.planner._estimate_n_lookups(table, query.predicates, ["k"])
        db.delete("t", [Between("k", 500, 999)])
        after = db.planner._estimate_n_lookups(table, query.predicates, ["k"])
        # The rebuilt bounds shrink the assumed domain to the live one, so
        # the 100-wide window keeps estimating ~100 predicated values.  With
        # the stale (0, 999) bounds the halved cardinality would cut the
        # estimate to ~50 -- the systematic mis-estimate this fix removes.
        assert table.attribute_range("k") == (0, 499)
        assert 90 <= before <= 110
        assert 90 <= after <= 110


class TestPeriodicStatisticsRefresh:
    """The ``stats_refresh_ops`` re-seeding policy (ISSUE satellite)."""

    def test_refresh_due_counts_inserts_and_deletes(self):
        from repro.core.statistics import IncrementalTableStatistics

        stats = IncrementalTableStatistics(sample_capacity=4, refresh_ops=5)
        rows = [{"v": i} for i in range(3)]
        for row in rows:
            stats.observe_insert(row)
        assert not stats.refresh_due
        stats.observe_delete(rows[0])
        stats.observe_delete(rows[1])
        assert stats.refresh_due
        stats.rebuild([rows[2]])  # a rebuild resets the refresh clock
        assert not stats.refresh_due

    def test_refresh_ops_validation(self):
        import pytest as _pytest

        from repro.core.statistics import IncrementalTableStatistics

        with _pytest.raises(ValueError):
            IncrementalTableStatistics(refresh_ops=0)

    def test_disabled_by_default(self):
        from repro.core.statistics import IncrementalTableStatistics

        stats = IncrementalTableStatistics(sample_capacity=2)
        for i in range(1000):
            stats.observe_insert({"v": i})
        assert not stats.refresh_due

    def test_table_reseeds_after_enough_dml(self):
        """Delete erosion on a subsampled reservoir heals at the refresh.

        200 loaded rows overflow the 120-row reservoir, so the sample is a
        subsample and the delete-churn bounds rebuild (which requires a
        *complete* sample) can never clip the stale bounds.  The periodic
        re-seed scans the heap instead: ``refresh_ops=33`` makes the 100th
        delete trip the fourth refresh (200 load ops trip one immediately,
        then every 33 deletes: 34, 67, 100), at which point the 100
        survivors fit the reservoir again -- complete sample, exact bounds.
        """
        from repro.engine.database import Database
        from repro.engine.predicates import Between

        def build(refresh_ops):
            db = Database(
                buffer_pool_pages=200,
                stats_sample_size=120,
                stats_refresh_ops=refresh_ops,
            )
            db.create_table("t", columns=["k"], tups_per_page=20)
            db.load("t", [{"k": i} for i in range(200)])
            return db

        # Without the policy, deleting half the table erodes the subsampled
        # reservoir (discarded sample rows are never replaced) and the
        # bounds stay conservatively wide forever.
        eroded = build(None)
        eroded.delete("t", [Between("k", 100, 199)])
        eroded_stats = eroded.table("t").statistics
        assert not eroded_stats.sample_is_complete
        assert len(eroded_stats.sample_rows) < eroded.table("t").num_rows
        assert eroded.table("t").attribute_range("k") == (0, 199)

        refreshed = build(33)
        refreshed.delete("t", [Between("k", 100, 199)])
        stats = refreshed.table("t").statistics
        assert stats.sample_is_complete
        assert len(stats.sample_rows) == refreshed.table("t").num_rows == 100
        assert refreshed.table("t").attribute_range("k") == (0, 99)
