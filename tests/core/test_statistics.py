"""Tests for correlation-statistics collection (Section 4.2)."""

import random

import pytest

from repro.core.bucketing import WidthBucketer
from repro.core.composite import CompositeKeySpec
from repro.core.statistics import (
    StatisticsCollector,
    c_per_u_from_cardinalities,
    exact_c_per_u,
)


def city_state_rows():
    """The paper's running example: city soft-determines state."""
    pairs = [
        ("Boston", "MA"),
        ("Boston", "MA"),
        ("Boston", "NH"),
        ("Springfield", "MA"),
        ("Springfield", "OH"),
        ("Cambridge", "MA"),
        ("Toledo", "OH"),
        ("Jackson", "MS"),
        ("Manchester", "NH"),
        ("Manchester", "MN"),
    ]
    return [{"city": c, "state": s, "salary": i} for i, (c, s) in enumerate(pairs)]


def test_c_per_u_from_cardinalities():
    assert c_per_u_from_cardinalities(distinct_uc=9, distinct_u=6) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        c_per_u_from_cardinalities(1, 0)


def test_exact_correlation_profile_city_state():
    collector = StatisticsCollector(city_state_rows())
    profile = collector.correlation_profile("city", "state")
    # 9 distinct (city, state) pairs over 6 distinct cities.
    assert profile.c_per_u == pytest.approx(9 / 6)
    # 10 rows over 5 states and 6 cities.
    assert profile.c_tups == pytest.approx(10 / 5)
    assert profile.u_tups == pytest.approx(10 / 6)


def test_perfect_functional_dependency_has_c_per_u_one():
    rows = [{"zip": i, "state": "MA" if i < 50 else "NH"} for i in range(100)]
    collector = StatisticsCollector(rows)
    assert collector.correlation_profile("zip", "state").c_per_u == pytest.approx(1.0)


def test_uncorrelated_attributes_have_high_c_per_u():
    rng = random.Random(0)
    rows = [{"a": rng.randrange(20), "b": rng.randrange(20)} for _ in range(5000)]
    collector = StatisticsCollector(rows)
    profile = collector.correlation_profile("a", "b")
    # Nearly every (a, b) combination appears: c_per_u approaches |b| = 20.
    assert profile.c_per_u > 15


def test_summarize_single_and_composite():
    collector = StatisticsCollector(city_state_rows())
    city = collector.summarize("city")
    assert city.distinct_values == 6
    assert city.tuples_per_value == pytest.approx(10 / 6)
    pair = collector.summarize(CompositeKeySpec.build(["city", "state"]))
    assert pair.distinct_values == 9


def test_composite_key_is_stronger_determinant():
    """(city, state) determines zip better than city alone (Section 1)."""
    rows = []
    for i in range(200):
        state = "MA" if i % 2 == 0 else "OH"
        rows.append({"city": "Springfield", "state": state, "zip": f"{state}-1"})
    rows += [{"city": f"c{i}", "state": "MA", "zip": f"z{i}"} for i in range(50)]
    collector = StatisticsCollector(rows)
    single = collector.correlation_profile("city", "zip")
    composite = collector.correlation_profile(
        CompositeKeySpec.build(["city", "state"]), "zip"
    )
    assert composite.c_per_u < single.c_per_u


def test_bucketed_key_reduces_distinct_count_not_below_targets():
    rows = [{"price": float(i), "cat": i // 100} for i in range(1000)]
    collector = StatisticsCollector(rows)
    bucketed = CompositeKeySpec.build(["price"], {"price": WidthBucketer(100)})
    profile = collector.correlation_profile(bucketed, "cat")
    # Buckets align exactly with categories: perfect correlation.
    assert profile.c_per_u == pytest.approx(1.0)
    unbucketed = collector.correlation_profile("price", "cat")
    assert unbucketed.c_per_u == pytest.approx(1.0)
    assert collector.summarize(bucketed).distinct_values == 10


def test_distinct_sampling_estimate_close_to_truth():
    rng = random.Random(3)
    rows = [{"v": rng.randrange(2000)} for _ in range(30_000)]
    collector = StatisticsCollector(rows)
    estimate = collector.distinct_sampling_estimate("v", sample_size=512, seed=1)
    truth = len({row["v"] for row in rows})
    assert 0.7 * truth <= estimate <= 1.3 * truth


def test_estimated_profile_matches_exact_on_strong_correlation():
    rng = random.Random(5)
    rows = []
    for i in range(20_000):
        c = rng.randrange(500)
        rows.append({"u": c * 2 + rng.randrange(2), "c": c})
    collector = StatisticsCollector(rows)
    exact = collector.correlation_profile("u", "c")
    estimated = collector.estimated_correlation_profile("u", "c", sample_size=5000, seed=2)
    assert exact.c_per_u == pytest.approx(1.0)
    assert estimated.c_per_u < 2.5


def test_estimated_profile_reuses_provided_sample():
    rows = [{"u": i % 10, "c": i % 5} for i in range(1000)]
    collector = StatisticsCollector(rows)
    sample = collector.collect_sample(sample_size=200, seed=7)
    a = collector.estimated_correlation_profile("u", "c", sample)
    b = collector.estimated_correlation_profile("u", "c", sample)
    assert a == b


def test_empty_rows_profile_is_zero():
    collector = StatisticsCollector([])
    profile = collector.correlation_profile("a", "b")
    assert profile.c_per_u == 0.0
    assert collector.total_rows == 0


def test_exact_c_per_u_helper():
    rows = city_state_rows()
    assert exact_c_per_u(rows, "city", "state") == pytest.approx(9 / 6)
    assert exact_c_per_u([], "city", "state") == 0.0
