"""Tests for the CM Advisor (Section 6)."""

import random

import pytest

from repro.core.advisor import CMAdvisor, CMDesign, TrainingQuery
from repro.core.composite import CompositeKeySpec, ValueConstraint
from repro.core.model import TableProfile
from repro.datasets.sdss import SDSSConfig, generate_photoobj
from repro.datasets.workloads import sdss_sx6_training_query


def correlated_rows(n=20_000, seed=0):
    """price soft-determines catid; zipcode needs (longitude, latitude)."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        price = rng.uniform(0, 100_000)
        catid = int(price // 1000)
        longitude = rng.uniform(-100, -70)
        latitude = rng.uniform(30, 45)
        zipcode = int((longitude + 100) // 2) * 100 + int((latitude - 30) // 1)
        rows.append(
            {
                "itemid": i,
                "catid": catid,
                "price": price,
                "longitude": longitude,
                "latitude": latitude,
                "zipcode": zipcode,
                "noise": rng.randrange(5000),
            }
        )
    return rows


@pytest.fixture(scope="module")
def rows():
    return correlated_rows()


@pytest.fixture(scope="module")
def advisor(rows):
    # The rows are treated as a sample of a 100x larger deployed table (the
    # paper's advisor likewise works from a sample plus catalog statistics).
    return CMAdvisor(
        rows,
        "catid",
        table_profile=TableProfile(total_tups=100 * len(rows), tups_per_page=100),
        sample_size=5_000,
        seed=1,
    )


def test_requires_rows():
    with pytest.raises(ValueError):
        CMAdvisor([], "catid")


class TestBucketingEnumeration:
    def test_few_valued_attribute_unbucketed(self, advisor):
        options = advisor.bucketing_candidates("catid")
        assert [o.level for o in options][0] == 0

    def test_many_valued_attribute_gets_levels(self, advisor):
        options = advisor.bucketing_candidates("price")
        levels = [o.level for o in options]
        assert 0 in levels
        assert max(levels) >= 8

    def test_bucketing_report_table4_shape(self, advisor):
        report = advisor.bucketing_report(["catid", "price", "noise"])
        assert [row["column"] for row in report] == ["catid", "price", "noise"]
        price_row = next(row for row in report if row["column"] == "price")
        assert price_row["cardinality"] > 10_000
        assert price_row["bucket_levels"]
        catid_row = next(row for row in report if row["column"] == "catid")
        assert catid_row["bucket_widths"].startswith("none")


class TestCandidateEnumeration:
    def test_single_attribute_query(self, advisor):
        query = TrainingQuery.over_attributes("price")
        candidates = advisor.enumerate_candidates(query)
        assert all(spec.attributes == ("price",) for spec in candidates)
        assert len(candidates) > 3  # identity plus several bucket levels

    def test_composite_query_includes_subsets_and_combinations(self, advisor):
        query = TrainingQuery.over_attributes("longitude", "latitude")
        candidates = advisor.enumerate_candidates(query)
        attribute_sets = {spec.attributes for spec in candidates}
        assert ("latitude",) in attribute_sets
        assert ("longitude",) in attribute_sets
        assert ("latitude", "longitude") in attribute_sets or (
            "longitude", "latitude",
        ) in attribute_sets

    def test_clustered_attribute_excluded(self, advisor):
        query = TrainingQuery.over_attributes("catid", "price")
        candidates = advisor.enumerate_candidates(query)
        assert all("catid" not in spec.attributes for spec in candidates)

    def test_candidate_cap_respected(self, rows):
        advisor = CMAdvisor(rows, "catid", sample_size=2000, max_candidates_per_query=10)
        query = TrainingQuery.over_attributes("price", "longitude", "latitude", "noise")
        assert len(advisor.enumerate_candidates(query)) <= 10

    def test_unselective_predicates_pruned(self, rows):
        advisor = CMAdvisor(rows, "catid", sample_size=2000, min_selectivity=0.4)
        # A predicate over a 2-valued attribute selects ~50% of the table and
        # is pruned by the selectivity threshold.
        for row in rows:
            row["flag"] = row["itemid"] % 2
        try:
            query = TrainingQuery.over_attributes("flag", "price")
            candidates = advisor.enumerate_candidates(query)
            assert all("flag" not in spec.attributes for spec in candidates)
        finally:
            for row in rows:
                row.pop("flag", None)


class TestDesignEvaluation:
    def test_correlated_design_has_low_c_per_u(self, advisor):
        design = advisor.evaluate_design(CompositeKeySpec.build(["price"]))
        assert design.estimated_c_per_u < 3.0
        assert design.estimated_size_bytes > 0
        assert design.baseline_size_bytes > design.estimated_size_bytes

    def test_uncorrelated_design_has_high_c_per_u(self, advisor):
        correlated = advisor.evaluate_design(CompositeKeySpec.build(["price"]))
        uncorrelated = advisor.evaluate_design(CompositeKeySpec.build(["noise"]))
        assert uncorrelated.estimated_c_per_u > 3 * correlated.estimated_c_per_u

    def test_bucketing_shrinks_estimated_size(self, advisor):
        options = advisor.bucketing_candidates("price")
        coarse = next(o for o in options if o.level == max(opt.level for opt in options))
        bucketed = advisor.evaluate_design(
            CompositeKeySpec.build(["price"], {"price": coarse.bucketer})
        )
        unbucketed = advisor.evaluate_design(CompositeKeySpec.build(["price"]))
        assert bucketed.estimated_size_bytes < unbucketed.estimated_size_bytes
        assert bucketed.estimated_distinct_keys < unbucketed.estimated_distinct_keys

    def test_design_describe_and_ratios(self, advisor):
        design = advisor.evaluate_design(CompositeKeySpec.build(["price"]))
        assert "price" in design.describe()
        assert 0 <= design.size_ratio <= 1.5
        assert isinstance(design.slowdown, float)


class TestRecommendation:
    def test_recommends_a_small_cm_for_a_correlated_attribute(self, advisor):
        recommendation = advisor.recommend(TrainingQuery.over_attributes("price"))
        assert recommendation.recommended is not None
        chosen = recommendation.recommended
        # The chosen design is within the performance target and is the
        # smallest such design.
        assert chosen.slowdown <= advisor.performance_target + 1e-9
        within = [
            d for d in recommendation.designs if d.slowdown <= advisor.performance_target
        ]
        assert chosen.estimated_size_bytes == min(d.estimated_size_bytes for d in within)
        # Orders of magnitude smaller than the dense B+Tree.
        assert chosen.size_ratio < 0.2

    def test_designs_sorted_by_slowdown(self, advisor):
        recommendation = advisor.recommend(TrainingQuery.over_attributes("price"))
        slowdowns = [d.slowdown for d in recommendation.designs_by_slowdown()]
        assert slowdowns == sorted(slowdowns)

    def test_composite_recommendation_beats_single_attributes(self, advisor):
        """The (longitude, latitude) -> zipcode style correlation of Section 6.

        Among *compact* designs (meaningfully bucketed keys), the composite
        key is a much stronger determinant of the clustered attribute than
        either coordinate alone -- an unbucketed unique single attribute also
        has c_per_u = 1, but it is as large as a dense index and is excluded
        by the size filter.
        """
        advisor_zip = CMAdvisor(
            advisor.rows, "zipcode", sample_size=5_000, seed=2,
            table_profile=TableProfile(total_tups=len(advisor.rows), tups_per_page=100),
        )
        query = TrainingQuery.over_attributes("longitude", "latitude")
        recommendation = advisor_zip.recommend(query)
        compact = [
            d for d in recommendation.designs if d.estimated_distinct_keys <= 2_000
        ]
        composite = [d for d in compact if len(d.key_spec) == 2]
        singles = [d for d in compact if len(d.key_spec) == 1]
        assert composite and singles
        assert min(d.estimated_c_per_u for d in composite) < 0.7 * min(
            d.estimated_c_per_u for d in singles
        )

    def test_workload_recommendation(self, advisor):
        queries = [
            TrainingQuery.over_attributes("price"),
            TrainingQuery.over_attributes("noise"),
        ]
        recommendations = advisor.recommend_workload(queries)
        assert len(recommendations) == 2

    def test_design_table_rows_have_table5_columns(self, advisor):
        rows = advisor.design_table(TrainingQuery.over_attributes("price"), limit=5)
        assert rows
        assert set(rows[0]) >= {"runtime", "cm_design", "size_ratio"}
        assert len(rows) <= 5


class TestSDSSAdvisorIntegration:
    """The advisor applied to the SX6 query on the synthetic SDSS data."""

    @pytest.fixture(scope="class")
    def sdss_advisor(self):
        rows = generate_photoobj(SDSSConfig(fields_ra=16, fields_dec=16, objects_per_field=10))
        return CMAdvisor(rows, "objid", sample_size=10_000, seed=3)

    def test_sx6_recommendation_includes_fieldid(self, sdss_advisor):
        recommendation = sdss_advisor.recommend(sdss_sx6_training_query())
        assert recommendation.designs
        best = recommendation.designs_by_slowdown()[0]
        assert best.estimated_c_per_u >= 0
        # fieldid is the strongly correlated attribute: some recommended or
        # low-slowdown design must include it.
        top_attrs = {
            attr
            for design in recommendation.designs_by_slowdown()[:10]
            for attr in design.key_spec.attributes
        }
        assert "fieldid" in top_attrs

    def test_table4_bucketings_for_sx6_attributes(self, sdss_advisor):
        report = sdss_advisor.bucketing_report(["mode", "type", "psfmag_g", "fieldid"])
        by_column = {row["column"]: row for row in report}
        assert by_column["mode"]["bucket_widths"].startswith("none")
        assert by_column["psfmag_g"]["bucket_levels"]
