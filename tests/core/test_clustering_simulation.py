"""Tests for the clustering advisor's layout simulation (Figure 2 machinery)."""

import pytest

from repro.core.clustering_advisor import ClusteringAdvisor
from repro.core.model import HardwareParameters, TableProfile


def make_rows(n=4_000):
    """cluster_key groups rows; mirror follows it exactly; noise does not."""
    rows = []
    for i in range(n):
        group = i // 40
        rows.append(
            {
                "rowid": i,
                "group": group,
                "mirror": group * 10,
                "noise": (i * 7919) % 997,
            }
        )
    return rows


@pytest.fixture(scope="module")
def advisor():
    rows = make_rows()
    return ClusteringAdvisor(
        rows,
        table_profile=TableProfile(total_tups=len(rows), tups_per_page=20, btree_height=2),
        hardware=HardwareParameters(seek_cost_ms=0.5, seq_page_cost_ms=0.078),
    ), rows


def test_simulate_workload_matches_individual_calls(advisor):
    adv, rows = advisor
    predicates = {
        "mirror": lambda row: 100 <= row["mirror"] <= 120,
        "noise": lambda row: 100 <= row["noise"] <= 110,
    }
    combined = adv.simulate_workload(["group", "noise"], predicates)
    individual = [
        adv.simulate_clustering("group", predicates),
        adv.simulate_clustering("noise", predicates),
    ]
    for got, expected in zip(combined, individual):
        assert got.clustered_attribute == expected.clustered_attribute
        for a, b in zip(got.speedups, expected.speedups):
            assert a.lookup_cost_ms == pytest.approx(b.lookup_cost_ms)


def test_correlated_queries_are_localized(advisor):
    adv, rows = advisor
    predicates = {"mirror": lambda row: row["mirror"] == 200}
    benefit = adv.simulate_clustering("group", predicates)
    speedup = benefit.speedups[0]
    # One group of 40 rows: two pages, a single run.
    assert speedup.c_per_u == 1.0  # runs
    assert speedup.speedup > 3


def test_uncorrelated_queries_are_scattered(advisor):
    adv, rows = advisor
    # ~20 % of the rows, scattered over every page under the group clustering.
    predicates = {"noise": lambda row: row["noise"] < 200}
    benefit = adv.simulate_clustering("group", predicates)
    assert benefit.speedups[0].speedup < 1.5


def test_empty_matches_cost_zero(advisor):
    adv, rows = advisor
    predicates = {"mirror": lambda row: False}
    benefit = adv.simulate_clustering("group", predicates)
    assert benefit.speedups[0].lookup_cost_ms == 0.0
    assert benefit.speedups[0].speedup == float("inf")


def test_full_table_matches_clamp_to_scan(advisor):
    adv, rows = advisor
    predicates = {"mirror": lambda row: True}
    benefit = adv.simulate_clustering("group", predicates)
    speedup = benefit.speedups[0]
    assert speedup.lookup_cost_ms == pytest.approx(speedup.scan_cost_ms)
