"""Tests for the variable-width (quantile) bucketing extension.

The paper's future-work section proposes variable-width buckets for skewed
value distributions; :class:`QuantileBucketer` implements that idea and plugs
into correlation maps like any other bucketer.
"""

import random

import pytest

from repro.core.bucketing import QuantileBucketer, WidthBucketer
from repro.core.composite import CompositeKeySpec, ValueConstraint
from repro.core.correlation_map import CorrelationMap


def skewed_rows(n=20_000, seed=0):
    """80 % of prices sit in a narrow band; categories follow price rank."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        if rng.random() < 0.8:
            price = rng.uniform(0, 1_000)
        else:
            price = rng.uniform(1_000, 1_000_000)
        rows.append({"itemid": i, "price": price})
    prices = sorted(row["price"] for row in rows)
    rank_of = {}
    for rank, price in enumerate(prices):
        rank_of.setdefault(price, rank)
    for row in rows:
        row["catid"] = rank_of[row["price"]] * 100 // len(rows)   # 100 categories by rank
    return rows


def test_quantile_buckets_balance_skewed_data():
    rows = skewed_rows()
    prices = [row["price"] for row in rows]
    quantile = QuantileBucketer.from_sample(prices, 64)
    counts = {}
    for price in prices:
        counts[quantile.bucket(price)] = counts.get(quantile.bucket(price), 0) + 1
    largest = max(counts.values())
    # Equi-width buckets put ~80 % of the rows into the first bucket; the
    # quantile bucketer keeps every bucket near the average load.
    width = WidthBucketer(1_000_000 / 64)
    width_counts = {}
    for price in prices:
        width_counts[width.bucket(price)] = width_counts.get(width.bucket(price), 0) + 1
    assert largest < max(width_counts.values()) / 4


def test_quantile_bucketed_cm_has_low_c_per_u_on_skewed_data():
    rows = skewed_rows()
    prices = [row["price"] for row in rows]
    quantile_cm = CorrelationMap(
        "cm_q",
        CompositeKeySpec.build(["price"], {"price": QuantileBucketer.from_sample(prices, 64)}),
        "catid",
    ).build(rows)
    width_cm = CorrelationMap(
        "cm_w",
        CompositeKeySpec.build(["price"], {"price": WidthBucketer(1_000_000 / 64)}),
        "catid",
    ).build(rows)
    # Same number of buckets, but the equi-width CM funnels most rows into
    # one bucket that co-occurs with most categories.
    assert quantile_cm.distinct_keys >= 32
    assert quantile_cm.stats().max_targets_per_key < width_cm.stats().max_targets_per_key / 2


def test_quantile_bucketed_cm_lookup_narrow_range():
    rows = skewed_rows()
    prices = [row["price"] for row in rows]
    cm = CorrelationMap(
        "cm_q",
        CompositeKeySpec.build(["price"], {"price": QuantileBucketer.from_sample(prices, 64)}),
        "catid",
    ).build(rows)
    targets = cm.lookup_constraints({"price": ValueConstraint.between(100.0, 150.0)})
    expected = {row["catid"] for row in rows if 100.0 <= row["price"] <= 150.0}
    # The CM returns a superset (bucket granularity) of the exact categories.
    assert expected <= set(targets)
    assert len(targets) < 30
