"""Tests for the cost-model statistics dataclasses (Tables 1 and 2)."""

import pytest

from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile
from repro.storage.disk import DiskParameters


def test_hardware_defaults_match_paper():
    hw = HardwareParameters()
    assert hw.seek_cost_ms == pytest.approx(5.5)
    assert hw.seq_page_cost_ms == pytest.approx(0.078)


def test_hardware_from_disk_parameters():
    disk = DiskParameters(seek_cost_ms=10.0, seq_page_cost_ms=0.5)
    hw = HardwareParameters.from_disk(disk)
    assert hw.seek_cost_ms == 10.0
    assert hw.seq_page_cost_ms == 0.5


def test_table_profile_page_count_rounds_up():
    profile = TableProfile(total_tups=101, tups_per_page=10)
    assert profile.num_pages == 11


def test_table_profile_minimum_one_page():
    assert TableProfile(total_tups=0, tups_per_page=10).num_pages == 1


def test_table_profile_validation():
    with pytest.raises(ValueError):
        TableProfile(total_tups=-1, tups_per_page=10)
    with pytest.raises(ValueError):
        TableProfile(total_tups=10, tups_per_page=0)
    with pytest.raises(ValueError):
        TableProfile(total_tups=10, tups_per_page=10, btree_height=0)


def test_correlation_profile_c_pages():
    profile = CorrelationProfile(c_per_u=2.0, c_tups=500, u_tups=100)
    assert profile.c_pages(tups_per_page=100) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        profile.c_pages(0)


def test_correlation_profile_validation():
    with pytest.raises(ValueError):
        CorrelationProfile(c_per_u=-1, c_tups=1)
    with pytest.raises(ValueError):
        CorrelationProfile(c_per_u=1, c_tups=-1)
    with pytest.raises(ValueError):
        CorrelationProfile(c_per_u=1, c_tups=1, u_tups=-1)
