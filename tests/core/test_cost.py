"""Tests for the correlation-aware analytical cost model (Sections 3-4)."""

import pytest

from repro.core.cost import (
    CMCostInputs,
    cm_lookup_cost,
    hash_join_cost,
    pipelined_lookup_cost,
    scan_cost,
    sort_merge_join_cost,
    sorted_lookup_cost,
    speedup_over_scan,
)
from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile

HW = HardwareParameters(seek_cost_ms=5.5, seq_page_cost_ms=0.078)
PROFILE = TableProfile(total_tups=1_000_000, tups_per_page=100, btree_height=3)


def test_scan_cost_is_sequential_pages():
    assert scan_cost(PROFILE, HW) == pytest.approx(10_000 * 0.078)


def test_pipelined_cost_formula():
    corr = CorrelationProfile(c_per_u=1.0, c_tups=100, u_tups=7000)
    cost = pipelined_lookup_cost(4, corr, PROFILE, HW)
    assert cost == pytest.approx(4 * 7000 * 5.5 * 3)


def test_pipelined_rejects_negative_lookups():
    corr = CorrelationProfile(c_per_u=1.0, c_tups=1, u_tups=1)
    with pytest.raises(ValueError):
        pipelined_lookup_cost(-1, corr, PROFILE, HW)


def test_sorted_cost_formula_uncapped():
    corr = CorrelationProfile(c_per_u=2.0, c_tups=200, u_tups=100)
    cost = sorted_lookup_cost(3, corr, PROFILE, HW, clamp_to_scan=False)
    c_pages = 200 / 100
    expected = 3 * 2.0 * (5.5 * 3 + 0.078 * c_pages)
    assert cost == pytest.approx(expected)


def test_sorted_cost_clamped_by_scan():
    corr = CorrelationProfile(c_per_u=7000.0, c_tups=300, u_tups=1)
    cost = sorted_lookup_cost(100, corr, PROFILE, HW)
    assert cost == pytest.approx(scan_cost(PROFILE, HW))


def test_correlation_reduces_sorted_cost():
    """Smaller c_per_u (stronger soft FD) means cheaper lookups."""
    strong = CorrelationProfile(c_per_u=1.2, c_tups=100, u_tups=50)
    weak = CorrelationProfile(c_per_u=400.0, c_tups=100, u_tups=50)
    assert sorted_lookup_cost(10, strong, PROFILE, HW) < sorted_lookup_cost(
        10, weak, PROFILE, HW
    )


def test_sorted_cost_grows_with_lookups_until_scan():
    corr = CorrelationProfile(c_per_u=50.0, c_tups=700, u_tups=100)
    costs = [sorted_lookup_cost(n, corr, PROFILE, HW) for n in (1, 4, 16, 64, 256)]
    assert costs == sorted(costs)
    assert costs[-1] == pytest.approx(scan_cost(PROFILE, HW))


def test_few_valued_clustered_attribute_is_penalised():
    """Small c_per_u from a tiny clustered domain implies huge c_pages."""
    # Clustered on a 2-value attribute: c_per_u small but each value covers
    # half the table.
    corr = CorrelationProfile(c_per_u=1.5, c_tups=500_000, u_tups=100)
    cost = sorted_lookup_cost(10, corr, PROFILE, HW)
    assert cost == pytest.approx(scan_cost(PROFILE, HW))


def test_cm_cost_tracks_sorted_cost_for_equivalent_stats():
    corr = CorrelationProfile(c_per_u=3.0, c_tups=100, u_tups=10)
    sorted_cost = sorted_lookup_cost(5, corr, PROFILE, HW)
    cm_inputs = CMCostInputs(buckets_per_lookup=3.0, pages_per_bucket=1.0)
    cm_cost = cm_lookup_cost(5, cm_inputs, PROFILE, HW)
    assert cm_cost == pytest.approx(sorted_cost, rel=0.05)


def test_cm_cost_grows_with_bucket_width():
    narrow = CMCostInputs(buckets_per_lookup=2.0, pages_per_bucket=1.0)
    wide = CMCostInputs(buckets_per_lookup=2.0, pages_per_bucket=40.0)
    assert cm_lookup_cost(3, narrow, PROFILE, HW) < cm_lookup_cost(3, wide, PROFILE, HW)


def test_cm_cost_adds_read_cost_when_not_resident():
    inputs_resident = CMCostInputs(buckets_per_lookup=1.0, pages_per_bucket=1.0, cm_pages=100)
    inputs_cold = CMCostInputs(
        buckets_per_lookup=1.0, pages_per_bucket=1.0, cm_pages=100, cm_resident=False
    )
    assert cm_lookup_cost(1, inputs_cold, PROFILE, HW) > cm_lookup_cost(
        1, inputs_resident, PROFILE, HW
    )


def test_cm_cost_clamped_by_scan():
    inputs = CMCostInputs(buckets_per_lookup=100_000.0, pages_per_bucket=10.0)
    assert cm_lookup_cost(100, inputs, PROFILE, HW) == pytest.approx(scan_cost(PROFILE, HW))


def test_cm_cost_rejects_negative_lookups():
    with pytest.raises(ValueError):
        cm_lookup_cost(-1, CMCostInputs(1.0, 1.0), PROFILE, HW)


def test_speedup_over_scan():
    assert speedup_over_scan(scan_cost(PROFILE, HW) / 4, PROFILE, HW) == pytest.approx(4.0)
    assert speedup_over_scan(0.0, PROFILE, HW) == float("inf")


def test_figure3_shape_correlated_vs_uncorrelated():
    """The cost model reproduces the shape of Figure 3.

    With a correlated clustering (shipdate ~ receiptdate, c_per_u ~ 4) the
    cost of 100 lookups stays far below a scan; with an uncorrelated
    clustering (c_per_u ~ 7000 receipt dates per shipdate ... effectively
    scattered) the cost reaches the scan cost within a handful of lookups.
    """
    # TPC-H scale-3-like lineitem: 18M rows, ~60 tuples/page.
    profile = TableProfile(total_tups=18_000_000, tups_per_page=60, btree_height=3)
    correlated = CorrelationProfile(c_per_u=4.0, c_tups=7200, u_tups=7200)
    uncorrelated = CorrelationProfile(c_per_u=2400.0, c_tups=7200, u_tups=7200)

    cost_corr_100 = sorted_lookup_cost(100, correlated, profile, HW)
    cost_uncorr_4 = sorted_lookup_cost(4, uncorrelated, profile, HW)
    scan = scan_cost(profile, HW)

    assert cost_corr_100 < 0.5 * scan
    assert cost_uncorr_4 >= 0.9 * scan


# ---------------------------------------------------------------------------
# Set-at-a-time join operators (hash and sort-merge splits)
# ---------------------------------------------------------------------------

def test_hash_join_build_inner_split():
    split = hash_join_cost(500, PROFILE.total_tups, PROFILE, HW, build_side="inner")
    # Upfront: one inner scan plus hashing every inner row.
    assert split.upfront_ms == pytest.approx(
        scan_cost(PROFILE, HW) + PROFILE.total_tups * HW.cpu_tuple_cost_ms
    )
    # Streaming: pure CPU per probe row -- no I/O of its own.
    assert split.streaming_ms == pytest.approx(500 * HW.cpu_tuple_cost_ms)


def test_hash_join_build_outer_moves_inner_scan_to_streaming():
    inner = hash_join_cost(500, 1_000, PROFILE, HW, build_side="inner")
    outer = hash_join_cost(500, 1_000, PROFILE, HW, build_side="outer")
    # The inner table is read exactly once either way; which phase pays for
    # it is what the build side decides.
    assert inner.total_ms == pytest.approx(outer.total_ms)
    assert outer.upfront_ms == pytest.approx(500 * HW.cpu_tuple_cost_ms)
    assert outer.streaming_ms > inner.streaming_ms


def test_hash_join_rejects_bad_inputs():
    with pytest.raises(ValueError):
        hash_join_cost(-1, 10, PROFILE, HW)
    with pytest.raises(ValueError):
        hash_join_cost(10, 10, PROFILE, HW, build_side="sideways")


def test_sort_merge_presorted_inner_streams_its_scan():
    split = sort_merge_join_cost(
        1_000, PROFILE.total_tups, PROFILE, HW, inner_sorted=True, outer_sorted=True
    )
    # Nothing to sort: the only work beyond merge CPU is the ordered sweep,
    # which streams (a LIMIT abandons the remaining inner pages).
    assert split.upfront_ms == 0.0
    assert split.streaming_ms >= scan_cost(PROFILE, HW)


def test_sort_merge_explicit_sorts_are_upfront():
    split = sort_merge_join_cost(
        1_000, PROFILE.total_tups, PROFILE, HW, inner_sorted=False
    )
    # The unsorted inner is scanned and sorted before the first merged row.
    assert split.upfront_ms > scan_cost(PROFILE, HW)
    assert split.streaming_ms < scan_cost(PROFILE, HW)


def test_sort_merge_cost_grows_with_unsorted_outer():
    sorted_outer = sort_merge_join_cost(
        50_000, 1_000, PROFILE, HW, inner_sorted=True, outer_sorted=True
    )
    unsorted_outer = sort_merge_join_cost(
        50_000, 1_000, PROFILE, HW, inner_sorted=True, outer_sorted=False
    )
    assert unsorted_outer.upfront_ms > sorted_outer.upfront_ms


def test_join_splits_feed_limited_cost():
    from repro.core.cost import limited_cost

    split = hash_join_cost(10_000, PROFILE.total_tups, PROFILE, HW)
    # A LIMIT scales only the probe pass; the build is paid in full, so the
    # limited cost stays dominated by the upfront part.
    limited = limited_cost(split, est_result_rows=10_000, limit=10)
    assert limited >= split.upfront_ms
    assert limited < split.total_ms
