"""Tests for the correlation-aware analytical cost model (Sections 3-4)."""

import pytest

from repro.core.cost import (
    CMCostInputs,
    cm_lookup_cost,
    pipelined_lookup_cost,
    scan_cost,
    sorted_lookup_cost,
    speedup_over_scan,
)
from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile

HW = HardwareParameters(seek_cost_ms=5.5, seq_page_cost_ms=0.078)
PROFILE = TableProfile(total_tups=1_000_000, tups_per_page=100, btree_height=3)


def test_scan_cost_is_sequential_pages():
    assert scan_cost(PROFILE, HW) == pytest.approx(10_000 * 0.078)


def test_pipelined_cost_formula():
    corr = CorrelationProfile(c_per_u=1.0, c_tups=100, u_tups=7000)
    cost = pipelined_lookup_cost(4, corr, PROFILE, HW)
    assert cost == pytest.approx(4 * 7000 * 5.5 * 3)


def test_pipelined_rejects_negative_lookups():
    corr = CorrelationProfile(c_per_u=1.0, c_tups=1, u_tups=1)
    with pytest.raises(ValueError):
        pipelined_lookup_cost(-1, corr, PROFILE, HW)


def test_sorted_cost_formula_uncapped():
    corr = CorrelationProfile(c_per_u=2.0, c_tups=200, u_tups=100)
    cost = sorted_lookup_cost(3, corr, PROFILE, HW, clamp_to_scan=False)
    c_pages = 200 / 100
    expected = 3 * 2.0 * (5.5 * 3 + 0.078 * c_pages)
    assert cost == pytest.approx(expected)


def test_sorted_cost_clamped_by_scan():
    corr = CorrelationProfile(c_per_u=7000.0, c_tups=300, u_tups=1)
    cost = sorted_lookup_cost(100, corr, PROFILE, HW)
    assert cost == pytest.approx(scan_cost(PROFILE, HW))


def test_correlation_reduces_sorted_cost():
    """Smaller c_per_u (stronger soft FD) means cheaper lookups."""
    strong = CorrelationProfile(c_per_u=1.2, c_tups=100, u_tups=50)
    weak = CorrelationProfile(c_per_u=400.0, c_tups=100, u_tups=50)
    assert sorted_lookup_cost(10, strong, PROFILE, HW) < sorted_lookup_cost(
        10, weak, PROFILE, HW
    )


def test_sorted_cost_grows_with_lookups_until_scan():
    corr = CorrelationProfile(c_per_u=50.0, c_tups=700, u_tups=100)
    costs = [sorted_lookup_cost(n, corr, PROFILE, HW) for n in (1, 4, 16, 64, 256)]
    assert costs == sorted(costs)
    assert costs[-1] == pytest.approx(scan_cost(PROFILE, HW))


def test_few_valued_clustered_attribute_is_penalised():
    """Small c_per_u from a tiny clustered domain implies huge c_pages."""
    # Clustered on a 2-value attribute: c_per_u small but each value covers
    # half the table.
    corr = CorrelationProfile(c_per_u=1.5, c_tups=500_000, u_tups=100)
    cost = sorted_lookup_cost(10, corr, PROFILE, HW)
    assert cost == pytest.approx(scan_cost(PROFILE, HW))


def test_cm_cost_tracks_sorted_cost_for_equivalent_stats():
    corr = CorrelationProfile(c_per_u=3.0, c_tups=100, u_tups=10)
    sorted_cost = sorted_lookup_cost(5, corr, PROFILE, HW)
    cm_inputs = CMCostInputs(buckets_per_lookup=3.0, pages_per_bucket=1.0)
    cm_cost = cm_lookup_cost(5, cm_inputs, PROFILE, HW)
    assert cm_cost == pytest.approx(sorted_cost, rel=0.05)


def test_cm_cost_grows_with_bucket_width():
    narrow = CMCostInputs(buckets_per_lookup=2.0, pages_per_bucket=1.0)
    wide = CMCostInputs(buckets_per_lookup=2.0, pages_per_bucket=40.0)
    assert cm_lookup_cost(3, narrow, PROFILE, HW) < cm_lookup_cost(3, wide, PROFILE, HW)


def test_cm_cost_adds_read_cost_when_not_resident():
    inputs_resident = CMCostInputs(buckets_per_lookup=1.0, pages_per_bucket=1.0, cm_pages=100)
    inputs_cold = CMCostInputs(
        buckets_per_lookup=1.0, pages_per_bucket=1.0, cm_pages=100, cm_resident=False
    )
    assert cm_lookup_cost(1, inputs_cold, PROFILE, HW) > cm_lookup_cost(
        1, inputs_resident, PROFILE, HW
    )


def test_cm_cost_clamped_by_scan():
    inputs = CMCostInputs(buckets_per_lookup=100_000.0, pages_per_bucket=10.0)
    assert cm_lookup_cost(100, inputs, PROFILE, HW) == pytest.approx(scan_cost(PROFILE, HW))


def test_cm_cost_rejects_negative_lookups():
    with pytest.raises(ValueError):
        cm_lookup_cost(-1, CMCostInputs(1.0, 1.0), PROFILE, HW)


def test_speedup_over_scan():
    assert speedup_over_scan(scan_cost(PROFILE, HW) / 4, PROFILE, HW) == pytest.approx(4.0)
    assert speedup_over_scan(0.0, PROFILE, HW) == float("inf")


def test_figure3_shape_correlated_vs_uncorrelated():
    """The cost model reproduces the shape of Figure 3.

    With a correlated clustering (shipdate ~ receiptdate, c_per_u ~ 4) the
    cost of 100 lookups stays far below a scan; with an uncorrelated
    clustering (c_per_u ~ 7000 receipt dates per shipdate ... effectively
    scattered) the cost reaches the scan cost within a handful of lookups.
    """
    # TPC-H scale-3-like lineitem: 18M rows, ~60 tuples/page.
    profile = TableProfile(total_tups=18_000_000, tups_per_page=60, btree_height=3)
    correlated = CorrelationProfile(c_per_u=4.0, c_tups=7200, u_tups=7200)
    uncorrelated = CorrelationProfile(c_per_u=2400.0, c_tups=7200, u_tups=7200)

    cost_corr_100 = sorted_lookup_cost(100, correlated, profile, HW)
    cost_uncorr_4 = sorted_lookup_cost(4, uncorrelated, profile, HW)
    scan = scan_cost(profile, HW)

    assert cost_corr_100 < 0.5 * scan
    assert cost_uncorr_4 >= 0.9 * scan
