"""Focused tests for the advisor's recommendation rules (Section 6.2.2)."""

import random

import pytest

from repro.core.advisor import CMAdvisor, TrainingQuery
from repro.core.composite import ValueConstraint
from repro.core.model import TableProfile


def rows_with_useless_and_useful_attributes(n=15_000, seed=2):
    """``good`` soft-determines the clustered key; ``flag`` is 2-valued."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        clustered = rng.randrange(200)
        rows.append(
            {
                "id": i,
                "clustered": clustered,
                "good": clustered * 3 + rng.randrange(3),
                "flag": i % 2,
                "rand": rng.randrange(10_000),
            }
        )
    return rows


@pytest.fixture(scope="module")
def advisor():
    rows = rows_with_useless_and_useful_attributes()
    return CMAdvisor(
        rows,
        "clustered",
        table_profile=TableProfile(total_tups=100 * len(rows), tups_per_page=100),
        sample_size=6_000,
        performance_target=0.10,
        seed=3,
    )


def test_correlated_attribute_gets_a_recommendation(advisor):
    recommendation = advisor.recommend(TrainingQuery.over_attributes("good"))
    assert recommendation.recommended is not None
    chosen = recommendation.recommended
    assert chosen.slowdown <= advisor.performance_target + 1e-9
    assert chosen.estimated_cost_ms < recommendation.scan_cost_ms


def test_recommended_design_is_smallest_useful_one(advisor):
    recommendation = advisor.recommend(TrainingQuery.over_attributes("good"))
    useful = [
        d
        for d in recommendation.designs
        if d.slowdown <= advisor.performance_target
        and d.estimated_cost_ms < recommendation.scan_cost_ms
    ]
    assert recommendation.recommended.estimated_size_bytes == min(
        d.estimated_size_bytes for d in useful
    )


def test_degenerate_designs_are_never_recommended(advisor):
    """A 2-valued attribute has 'zero slowdown' only because both the CM and
    the B+Tree degenerate to a scan; the advisor must not recommend it."""
    recommendation = advisor.recommend(
        TrainingQuery(constraints={"flag": ValueConstraint.equals(1)})
    )
    if recommendation.recommended is not None:
        assert "flag" not in recommendation.recommended.key_spec.attributes
        assert recommendation.recommended.estimated_cost_ms < recommendation.scan_cost_ms


def test_uncorrelated_attribute_recommendation_beats_scan_or_is_none(advisor):
    recommendation = advisor.recommend(TrainingQuery.over_attributes("rand"))
    if recommendation.recommended is not None:
        assert recommendation.recommended.estimated_cost_ms < recommendation.scan_cost_ms


def test_bucket_level_labels_survive_into_designs(advisor):
    """Designs report the paper-style 2^level labels for bucketed attributes."""
    recommendation = advisor.recommend(TrainingQuery.over_attributes("good"))
    labelled = [
        design.describe()
        for design in recommendation.designs
        if any(level > 0 for _attr, level in design.bucket_levels)
    ]
    assert labelled
    assert any("2^" in label for label in labelled)
