"""Tests for attribute bucketing (Sections 5.4 and 6.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketing import (
    IdentityBucketer,
    QuantileBucketer,
    WidthBucketer,
    assign_clustered_buckets,
    candidate_bucketings,
    iter_bucket_keys_in_range,
)


class TestIdentityBucketer:
    def test_identity(self):
        bucketer = IdentityBucketer()
        assert bucketer.bucket("Boston") == "Boston"
        assert bucketer.bucket(3.7) == 3.7
        assert bucketer.describe() == "none"

    def test_equality_and_hash(self):
        assert IdentityBucketer() == IdentityBucketer()
        assert len({IdentityBucketer(), IdentityBucketer()}) == 1


class TestWidthBucketer:
    def test_truncation_to_lower_bound(self):
        bucketer = WidthBucketer(1.0)
        assert bucketer.bucket(12.3) == 12.0
        assert bucketer.bucket(12.7) == 12.0
        assert bucketer.bucket(14.4) == 14.0

    def test_paper_temperature_example(self):
        """The Section 5.4 example: 1-degree buckets merge 12.3 and 12.7."""
        bucketer = WidthBucketer(1.0)
        assert bucketer.bucket(12.3) == bucketer.bucket(12.7)
        assert bucketer.bucket(12.3) != bucketer.bucket(14.4)

    def test_origin_offsets_buckets(self):
        bucketer = WidthBucketer(10, origin=5)
        assert bucketer.bucket(5) == 5
        assert bucketer.bucket(14.9) == 5
        assert bucketer.bucket(15) == 15

    def test_negative_values(self):
        bucketer = WidthBucketer(10)
        assert bucketer.bucket(-1) == -10
        assert bucketer.bucket(-10) == -10
        assert bucketer.bucket(-11) == -20

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            WidthBucketer(0)

    def test_bucket_index(self):
        bucketer = WidthBucketer(100)
        assert bucketer.bucket_index(250) == 2

    def test_bucket_range(self):
        bucketer = WidthBucketer(100)
        assert bucketer.bucket_range(150, 420) == (100, 400)

    def test_equality(self):
        assert WidthBucketer(8) == WidthBucketer(8)
        assert WidthBucketer(8) != WidthBucketer(16)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_subnormal=False),
        st.integers(1, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_bucket_is_lower_bound(self, value, width):
        bucketer = WidthBucketer(width)
        key = bucketer.bucket(value)
        assert key <= value < key + width


class TestQuantileBucketer:
    def test_from_sample_equal_counts(self):
        values = list(range(100))
        bucketer = QuantileBucketer.from_sample(values, 4)
        buckets = [bucketer.bucket(v) for v in values]
        counts = {b: buckets.count(b) for b in set(buckets)}
        assert len(counts) == 4
        assert all(20 <= c <= 30 for c in counts.values())

    def test_skewed_sample_gets_variable_widths(self):
        values = [1] * 50 + list(range(2, 52))
        bucketer = QuantileBucketer.from_sample(values, 5)
        # The heavy value 1 gets (at least) a bucket of its own; the tail of
        # rare values is spread over the remaining buckets.
        assert bucketer.bucket(1) != bucketer.bucket(51)
        assert bucketer.num_buckets >= 3

    def test_empty_sample(self):
        bucketer = QuantileBucketer.from_sample([], 4)
        assert bucketer.bucket(42) == 0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            QuantileBucketer.from_sample([1, 2], 0)


class TestCandidateBucketings:
    def test_few_valued_attribute_only_identity(self):
        """Table 4: 'mode' (3 values) is offered without bucketing."""
        options = candidate_bucketings("mode", [1, 2, 3] * 10)
        assert [o.level for o in options] == [0]

    def test_many_valued_numeric_attribute_gets_levels(self):
        """Table 4: psfMag_g (196k values) gets bucket widths 2^2 ~ 2^16."""
        values = [i * 0.01 for i in range(20_000)]
        options = candidate_bucketings("psfMag_g", values)
        levels = [o.level for o in options if o.level > 0]
        assert min(levels) == 1
        assert max(levels) >= 12
        # Every option keeps the bucket count within the configured range.
        for option in options:
            if option.level > 0:
                assert 4 <= option.estimated_buckets <= 2 ** 16

    def test_levels_scale_exponentially(self):
        """The paper's example: a 100-value column considers 2^1 ... 2^5.

        (2^6 = 64 values per bucket would yield fewer than 4 buckets.)
        """
        values = list(range(100))
        options = candidate_bucketings("x", values)
        levels = [o.level for o in options if o.level > 0]
        assert levels == [1, 2, 3, 4, 5]

    def test_non_numeric_attribute_only_identity(self):
        options = candidate_bucketings("city", [f"city{i}" for i in range(1000)])
        assert [o.level for o in options] == [0]

    def test_identity_can_be_excluded(self):
        options = candidate_bucketings("x", list(range(100)), include_identity=False)
        assert all(o.level > 0 for o in options)

    def test_constant_attribute(self):
        options = candidate_bucketings("x", [7] * 50)
        assert [o.level for o in options] == [0]

    def test_describe(self):
        options = candidate_bucketings("x", list(range(100)))
        assert options[0].describe() == "none"
        assert options[1].describe() == "2^1"


class TestClusteredBucketing:
    def test_rejects_non_positive_bucket_size(self):
        with pytest.raises(ValueError):
            assign_clustered_buckets([1, 2, 3], 0)

    def test_empty_input(self):
        ids, buckets = assign_clustered_buckets([], 10)
        assert ids == []
        assert buckets == []

    def test_simple_even_split(self):
        keys = [1, 1, 2, 2, 3, 3]
        ids, buckets = assign_clustered_buckets(keys, 2)
        assert ids == [0, 0, 1, 1, 2, 2]
        assert len(buckets) == 3
        assert buckets[0].min_key == 1 and buckets[0].max_key == 1

    def test_value_never_straddles_buckets(self):
        """Section 6.1.1: a clustered value must stay within one bucket."""
        keys = [1, 1, 1, 1, 1, 2, 2, 3]
        ids, buckets = assign_clustered_buckets(keys, 2)
        # All five 1s stay in bucket 0 even though the target size is 2.
        assert ids[:5] == [0] * 5
        assert ids[5] == 1
        by_value = {}
        for key, bucket_id in zip(keys, ids):
            by_value.setdefault(key, set()).add(bucket_id)
        assert all(len(bucket_ids) == 1 for bucket_ids in by_value.values())

    def test_bucket_descriptors_cover_all_rows(self):
        keys = sorted([i // 3 for i in range(100)])
        ids, buckets = assign_clustered_buckets(keys, 7)
        covered = []
        for bucket in buckets:
            covered.extend(range(bucket.first_row, bucket.last_row + 1))
        assert covered == list(range(100))
        assert [ids[b.first_row] for b in buckets] == [b.bucket_id for b in buckets]

    def test_bucket_ids_are_consecutive(self):
        keys = sorted([i % 50 for i in range(500)])
        ids, buckets = assign_clustered_buckets(keys, 13)
        assert ids == sorted(ids)
        assert [b.bucket_id for b in buckets] == list(range(len(buckets)))

    def test_num_rows_property(self):
        keys = [1, 1, 2, 3]
        _ids, buckets = assign_clustered_buckets(keys, 10)
        assert buckets[0].num_rows == 4

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=300),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_invariants(self, raw_keys, bucket_size):
        keys = sorted(raw_keys)
        ids, buckets = assign_clustered_buckets(keys, bucket_size)
        assert len(ids) == len(keys)
        # Bucket ids are non-decreasing and consecutive starting at zero.
        assert ids == sorted(ids)
        assert set(ids) == set(range(len(buckets)))
        # No clustered value appears in two buckets.
        value_to_buckets = {}
        for key, bucket_id in zip(keys, ids):
            value_to_buckets.setdefault(key, set()).add(bucket_id)
        assert all(len(s) == 1 for s in value_to_buckets.values())
        # Buckets reach the target size unless cut short by a value boundary
        # or the end of the table.
        for bucket in buckets[:-1]:
            next_key = keys[bucket.last_row + 1]
            assert bucket.num_rows >= bucket_size or keys[bucket.last_row] != next_key


def test_iter_bucket_keys_in_range():
    bucketer = WidthBucketer(10)
    keys = [0, 10, 20, 30, 40]
    assert list(iter_bucket_keys_in_range(bucketer, keys, 15, 35)) == [10, 20, 30]
    assert list(iter_bucket_keys_in_range(bucketer, keys, None, 15)) == [0, 10]
    assert list(iter_bucket_keys_in_range(bucketer, keys, 35, None)) == [30, 40]
