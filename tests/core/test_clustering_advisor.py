"""Tests for the clustering advisor (the Figure 2 analysis)."""

import pytest

from repro.core.clustering_advisor import SPEEDUP_THRESHOLDS, ClusteringAdvisor
from repro.core.model import TableProfile
from repro.datasets.sdss import ATTRIBUTE_FAMILIES, SDSSConfig, generate_photoobj


@pytest.fixture(scope="module")
def rows():
    return generate_photoobj(
        SDSSConfig(fields_ra=16, fields_dec=16, objects_per_field=40, seed=5)
    )


@pytest.fixture(scope="module")
def advisor(rows):
    return ClusteringAdvisor(
        rows,
        table_profile=TableProfile(total_tups=len(rows), tups_per_page=20, btree_height=2),
        n_lookups=1,
    )


def one_percent_predicates(rows, attributes, selectivity=0.01):
    """Per-attribute range predicates selecting ~1 % of the rows."""
    from repro.datasets.workloads import one_percent_range

    predicates = {}
    for position, attribute in enumerate(attributes):
        low, high = one_percent_range(rows, attribute, selectivity=selectivity, seed=position)
        predicates[attribute] = (
            lambda row, a=attribute, lo=low, hi=high: lo <= row[a] <= hi
        )
    return predicates


def test_requires_rows():
    with pytest.raises(ValueError):
        ClusteringAdvisor([])


def test_analytic_model_prefers_correlated_clustering(advisor):
    """Analytic path: a strongly correlated pair costs less than a weak one."""
    strong = advisor.evaluate_clustering("fieldid", ["run"]).speedups[0]
    weak = advisor.evaluate_clustering("noise1", ["run"]).speedups[0]
    assert strong.c_per_u < weak.c_per_u
    assert strong.lookup_cost_ms <= weak.lookup_cost_ms


def test_simulated_query_on_clustered_attribute_always_speeds_up(advisor, rows):
    predicates = one_percent_predicates(rows, ["fieldid"])
    benefit = advisor.simulate_clustering("fieldid", predicates)
    assert benefit.speedups[0].speedup > 2


def test_simulated_correlated_family_benefits_from_clustering(advisor, rows):
    """Clustering on one position attribute accelerates the whole family.

    At this (deliberately small) test scale a full scan is only ~40 ms of
    simulated time, so even ideal lookups cap out at a few x; the benchmark
    reproduces the paper's 2x/4x/8x/16x histogram at a larger scale.
    """
    position = ["fieldid", "run", "mjd"]
    predicates = one_percent_predicates(rows, position)
    benefit = advisor.simulate_clustering("mjd", predicates)
    assert benefit.queries_with_speedup(1.5) >= 2


def test_simulated_uncorrelated_clustering_does_not_help(advisor, rows):
    predicates = one_percent_predicates(rows, ["psfmag_g", "fieldid"])
    benefit = advisor.simulate_clustering("noise1", predicates)
    helped = [s for s in benefit.speedups if s.speedup >= 1.5]
    assert len(helped) == 0


def test_histogram_thresholds_are_monotone(advisor, rows):
    attributes = ["fieldid", "run", "mjd", "psfmag_g", "noise1"]
    predicates = one_percent_predicates(rows, attributes)
    benefit = advisor.simulate_clustering("fieldid", predicates)
    histogram = benefit.histogram()
    assert set(histogram) == set(SPEEDUP_THRESHOLDS)
    counts = [histogram[t] for t in SPEEDUP_THRESHOLDS]
    assert counts == sorted(counts, reverse=True)


def test_evaluate_all_and_best_clustering(advisor):
    candidates = ["fieldid", "psfmag_g", "noise1"]
    queries = ["fieldid", "run", "mjd", "extinction_r", "psfmag_r", "noise1"]
    benefits = advisor.evaluate_all(candidates, queries)
    assert len(benefits) == 3
    best = advisor.best_clustering(candidates, queries)
    # The position family is the largest, so clustering on fieldid wins.
    assert best.clustered_attribute == "fieldid"


def test_speedup_handles_zero_cost():
    from repro.core.clustering_advisor import QuerySpeedup

    speedup = QuerySpeedup("a", "b", 1.0, 0.0, 100.0)
    assert speedup.speedup == float("inf")
