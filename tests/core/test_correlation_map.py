"""Tests for the Correlation Map data structure (Section 5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketing import IdentityBucketer, WidthBucketer
from repro.core.composite import CompositeKeySpec, ValueConstraint
from repro.core.correlation_map import CorrelationMap


def city_cm():
    """The Figure 4 example CM on city with clustered attribute state."""
    rows = [
        {"city": "Boston", "state": "MA"},
        {"city": "Boston", "state": "MA"},
        {"city": "Boston", "state": "NH"},
        {"city": "Cambridge", "state": "MA"},
        {"city": "Manchester", "state": "NH"},
        {"city": "Manchester", "state": "MN"},
        {"city": "Springfield", "state": "MA"},
        {"city": "Springfield", "state": "OH"},
        {"city": "Toledo", "state": "OH"},
        {"city": "Jackson", "state": "MS"},
    ]
    cm = CorrelationMap("cm_city", CompositeKeySpec.build(["city"]), "state")
    cm.build(rows)
    return cm, rows


class TestBuildAndLookup:
    def test_figure4_mapping(self):
        cm, _rows = city_cm()
        assert cm.lookup({"city": "Boston"}) == ["MA", "NH"]
        assert cm.lookup({"city": "Springfield"}) == ["MA", "OH"]
        assert cm.lookup({"city": "Toledo"}) == ["OH"]

    def test_lookup_of_multiple_values_unions_targets(self):
        """Figure 4 query: city = 'Boston' OR city = 'Springfield'."""
        cm, _rows = city_cm()
        targets = cm.lookup([{"city": "Boston"}, {"city": "Springfield"}])
        assert targets == ["MA", "NH", "OH"]

    def test_lookup_of_unknown_value_is_empty(self):
        cm, _rows = city_cm()
        assert cm.lookup({"city": "Lyon"}) == []

    def test_co_occurrence_counts(self):
        cm, _rows = city_cm()
        assert cm.co_occurrence_count(("Boston",), "MA") == 2
        assert cm.co_occurrence_count(("Boston",), "NH") == 1
        assert cm.co_occurrence_count(("Boston",), "OH") == 0

    def test_distinct_keys_and_entries(self):
        cm, _rows = city_cm()
        assert cm.distinct_keys == 6
        assert cm.total_entries == 9  # unique (city, state) pairs
        assert cm.total_rows_represented == 10

    def test_measured_c_per_u(self):
        cm, _rows = city_cm()
        assert cm.measured_c_per_u() == pytest.approx(9 / 6)


class TestMaintenance:
    def test_insert_adds_target(self):
        cm, _rows = city_cm()
        cm.insert({"city": "Boston", "state": "OH"})
        assert cm.lookup({"city": "Boston"}) == ["MA", "NH", "OH"]

    def test_delete_decrements_and_removes_at_zero(self):
        """Algorithm 1's deletion counts: Boston->MA has count 2."""
        cm, _rows = city_cm()
        assert cm.delete({"city": "Boston", "state": "MA"})
        assert cm.lookup({"city": "Boston"}) == ["MA", "NH"]
        assert cm.delete({"city": "Boston", "state": "MA"})
        assert cm.lookup({"city": "Boston"}) == ["NH"]

    def test_delete_removes_key_when_empty(self):
        cm, _rows = city_cm()
        cm.delete({"city": "Jackson", "state": "MS"})
        assert cm.lookup({"city": "Jackson"}) == []
        assert ("Jackson",) not in cm.keys()

    def test_delete_of_absent_row_returns_false(self):
        cm, _rows = city_cm()
        assert not cm.delete({"city": "Lyon", "state": "FR"})
        assert not cm.delete({"city": "Boston", "state": "TX"})

    def test_update_is_delete_plus_insert(self):
        cm, _rows = city_cm()
        cm.update(
            {"city": "Toledo", "state": "OH"}, {"city": "Toledo", "state": "ES"}
        )
        assert cm.lookup({"city": "Toledo"}) == ["ES"]

    def test_build_then_delete_everything_leaves_empty_map(self):
        cm, rows = city_cm()
        for row in rows:
            assert cm.delete(row)
        assert cm.distinct_keys == 0
        assert cm.total_entries == 0
        assert cm.total_rows_represented == 0


class TestMaintenanceEdgeCases:
    """Algorithm 1 corner cases: unrepresented deletes, cross-bucket moves,
    and count-reaches-zero eviction of targets and keys."""

    def test_delete_of_unrepresented_row_leaves_map_untouched(self):
        cm, _rows = city_cm()
        keys_before = sorted(cm.keys())
        entries_before = cm.total_entries
        rows_before = cm.total_rows_represented
        # Unknown key, and known key with an unrepresented target.
        assert not cm.delete({"city": "Lyon", "state": "FR"})
        assert not cm.delete({"city": "Boston", "state": "TX"})
        assert sorted(cm.keys()) == keys_before
        assert cm.total_entries == entries_before
        assert cm.total_rows_represented == rows_before
        assert cm.co_occurrence_count(("Boston",), "MA") == 2

    def test_count_reaches_zero_evicts_target_but_not_key(self):
        cm, _rows = city_cm()
        # Boston -> {MA: 2, NH: 1}; dropping NH evicts the target only.
        assert cm.delete({"city": "Boston", "state": "NH"})
        assert cm.lookup({"city": "Boston"}) == ["MA"]
        assert ("Boston",) in cm.keys()
        assert cm.co_occurrence_count(("Boston",), "NH") == 0

    def test_count_reaches_zero_evicts_key_when_last_target_goes(self):
        cm, _rows = city_cm()
        assert cm.delete({"city": "Jackson", "state": "MS"})
        assert ("Jackson",) not in cm.keys()
        # A later insert resurrects the key cleanly.
        cm.insert({"city": "Jackson", "state": "TN"})
        assert cm.lookup({"city": "Jackson"}) == ["TN"]
        assert cm.co_occurrence_count(("Jackson",), "TN") == 1

    def test_update_moving_row_across_clustered_bucket_boundary(self):
        """An update that changes the clustered target (Section 5.1): the old
        bucket's count decrements (evicting at zero) and the new bucket's
        increments -- exactly a delete followed by an insert."""
        rows = [
            {"price": 10.0, "bucket": 0},
            {"price": 10.0, "bucket": 0},
            {"price": 20.0, "bucket": 1},
        ]
        cm = CorrelationMap(
            "cm",
            CompositeKeySpec.build(["price"]),
            "bucket",
            target_of=lambda row: row["bucket"],
        ).build(rows)
        assert cm.lookup({"price": 10.0}) == [0]
        # Move one price=10 row from bucket 0 to bucket 2.
        cm.update({"price": 10.0, "bucket": 0}, {"price": 10.0, "bucket": 2})
        assert cm.lookup({"price": 10.0}) == [0, 2]
        assert cm.co_occurrence_count((10.0,), 0) == 1
        # Move the second one too: bucket 0 is evicted from the key.
        cm.update({"price": 10.0, "bucket": 0}, {"price": 10.0, "bucket": 2})
        assert cm.lookup({"price": 10.0}) == [2]
        assert cm.co_occurrence_count((10.0,), 2) == 2


class TestBucketedCM:
    def test_bucketing_both_sides_section54_example(self):
        """The temperature/humidity example of Section 5.4."""
        pairs = [
            (12.3, 17.5), (12.3, 18.3),
            (12.7, 18.9), (12.7, 20.1),
            (14.4, 20.7), (14.4, 22.0),
            (14.9, 21.3), (14.9, 22.2),
            (17.8, 25.6), (17.8, 25.9),
        ]
        rows = [{"temperature": t, "humidity": h} for t, h in pairs]
        cm = CorrelationMap(
            "cm_temp",
            CompositeKeySpec.build(
                ["temperature"], {"temperature": WidthBucketer(1.0)}
            ),
            "humidity",
            clustered_bucketer=WidthBucketer(1.0),
        )
        cm.build(rows)
        assert cm.lookup({"temperature": 12.5}) == [17.0, 18.0, 20.0]
        assert cm.lookup({"temperature": 14.0}) == [20.0, 21.0, 22.0]
        assert cm.lookup({"temperature": 17.9}) == [25.0]
        # Bucketing shrinks the key count from 5 values to 3 buckets.
        assert cm.distinct_keys == 3

    def test_bucketing_reduces_size(self):
        rng = random.Random(0)
        # Price is correlated with the category (the eBay data set's soft FD).
        rows = []
        for _ in range(5000):
            price = rng.uniform(0, 10_000)
            rows.append({"price": price, "cat": int(price // 100)})
        fine = CorrelationMap(
            "fine", CompositeKeySpec.build(["price"]), "cat"
        ).build(rows)
        coarse = CorrelationMap(
            "coarse",
            CompositeKeySpec.build(["price"], {"price": WidthBucketer(500)}),
            "cat",
        ).build(rows)
        assert coarse.size_bytes() < fine.size_bytes() / 10

    def test_range_lookup_on_bucketed_key(self):
        rows = [{"price": float(i), "cat": i // 10} for i in range(100)]
        cm = CorrelationMap(
            "cm_price",
            CompositeKeySpec.build(["price"], {"price": WidthBucketer(10)}),
            "cat",
        ).build(rows)
        targets = cm.lookup_constraints({"price": ValueConstraint.between(25, 44)})
        assert targets == [2, 3, 4]

    def test_target_of_override(self):
        rows = [{"u": i % 5, "c": i, "bucket": i // 10} for i in range(50)]
        cm = CorrelationMap(
            "cm",
            CompositeKeySpec.build(["u"]),
            "c",
            target_of=lambda row: row["bucket"],
        ).build(rows)
        assert cm.lookup({"u": 0}) == [0, 1, 2, 3, 4]


class TestCompositeCM:
    def test_composite_lookup_exact(self):
        rows = [
            {"ra": 1.0, "dec": 1.0, "objid": 10},
            {"ra": 1.0, "dec": 2.0, "objid": 20},
            {"ra": 2.0, "dec": 1.0, "objid": 30},
        ]
        cm = CorrelationMap(
            "cm_radec", CompositeKeySpec.build(["ra", "dec"]), "objid"
        ).build(rows)
        assert cm.lookup({"ra": 1.0, "dec": 2.0}) == [20]

    def test_composite_constraint_lookup_with_ranges(self):
        rows = []
        for ra in range(10):
            for dec in range(10):
                rows.append({"ra": float(ra), "dec": float(dec), "objid": ra * 10 + dec})
        cm = CorrelationMap(
            "cm_radec",
            CompositeKeySpec.build(
                ["ra", "dec"], {"ra": WidthBucketer(2), "dec": WidthBucketer(2)}
            ),
            "objid",
        ).build(rows)
        targets = cm.lookup_constraints(
            {
                "ra": ValueConstraint.between(2.0, 3.0),
                "dec": ValueConstraint.between(4.0, 5.0),
            }
        )
        assert targets == [24, 25, 34, 35]

    def test_partially_constrained_composite_key(self):
        rows = [
            {"ra": 1.0, "dec": 1.0, "objid": 10},
            {"ra": 1.0, "dec": 2.0, "objid": 20},
            {"ra": 2.0, "dec": 1.0, "objid": 30},
        ]
        cm = CorrelationMap(
            "cm_radec", CompositeKeySpec.build(["ra", "dec"]), "objid"
        ).build(rows)
        targets = cm.lookup_constraints({"ra": ValueConstraint.equals(1.0)})
        assert targets == [10, 20]


class TestSizeAccounting:
    def test_cm_much_smaller_than_dense_structure(self):
        """A CM stores value pairs, not tuples: duplicates collapse."""
        rng = random.Random(1)
        rows = [
            {"cat5": f"cat{rng.randrange(200)}", "catid": rng.randrange(50)}
            for _ in range(20_000)
        ]
        cm = CorrelationMap(
            "cm", CompositeKeySpec.build(["cat5"]), "catid"
        ).build(rows)
        dense_entries = len(rows)
        assert cm.total_entries < dense_entries / 2
        assert cm.size_bytes() < dense_entries * 20 / 2

    def test_stats_summary(self):
        cm, _rows = city_cm()
        stats = cm.stats()
        assert stats.distinct_keys == 6
        assert stats.total_entries == 9
        assert stats.max_targets_per_key == 2
        assert stats.avg_targets_per_key == pytest.approx(1.5)
        assert stats.size_bytes == cm.size_bytes()
        assert stats.size_megabytes == pytest.approx(stats.size_bytes / 2 ** 20)

    def test_size_pages(self):
        cm, _rows = city_cm()
        assert cm.size_pages() == 1

    def test_describe(self):
        cm, _rows = city_cm()
        assert "city" in cm.describe()
        assert "state" in cm.describe()


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 10)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_lookup_matches_reference(self, pairs):
        """CM lookups agree with a brute-force co-occurrence computation."""
        rows = [{"u": u, "c": c} for u, c in pairs]
        cm = CorrelationMap("cm", CompositeKeySpec.build(["u"]), "c").build(rows)
        reference: dict[int, set[int]] = {}
        for u, c in pairs:
            reference.setdefault(u, set()).add(c)
        for u, targets in reference.items():
            assert cm.lookup({"u": u}) == sorted(targets)
        assert cm.total_rows_represented == len(rows)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 5)),
            min_size=1,
            max_size=200,
        ),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_insert_delete_roundtrip(self, pairs, data):
        """Deleting the same multiset of rows that was inserted empties the CM."""
        rows = [{"u": u, "c": c} for u, c in pairs]
        cm = CorrelationMap("cm", CompositeKeySpec.build(["u"]), "c").build(rows)
        order = data.draw(st.permutations(range(len(rows))))
        for index in order:
            assert cm.delete(rows[index])
        assert cm.distinct_keys == 0
        assert cm.total_entries == 0
