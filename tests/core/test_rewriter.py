"""Tests for CM-based query rewriting (predicate introduction)."""

import pytest

from repro.core.bucketing import WidthBucketer
from repro.core.composite import CompositeKeySpec, ValueConstraint
from repro.core.correlation_map import CorrelationMap
from repro.core.rewriter import QueryRewriter, RewrittenPredicate


def build_city_cm():
    rows = [
        {"city": "Boston", "state": "MA"},
        {"city": "Boston", "state": "NH"},
        {"city": "Springfield", "state": "MA"},
        {"city": "Springfield", "state": "OH"},
        {"city": "Toledo", "state": "OH"},
    ]
    return CorrelationMap("cm_city", CompositeKeySpec.build(["city"]), "state").build(rows)


def test_introduction_section1_example():
    """SELECT ... WHERE city='Boston' gains AND state IN ('MA','NH')."""
    rewriter = QueryRewriter(build_city_cm())
    rewritten = rewriter.rewrite({"city": ValueConstraint.equals("Boston")})
    assert rewritten.clustered_attribute == "state"
    assert rewritten.clustered_values == ("MA", "NH")
    assert not rewritten.is_empty
    sql = rewritten.to_sql("emp")
    assert "city = 'Boston'" in sql
    assert "state IN ('MA', 'NH')" in sql


def test_multiple_cities_union():
    rewriter = QueryRewriter(build_city_cm())
    rewritten = rewriter.rewrite(
        {"city": ValueConstraint.in_set(["Boston", "Springfield"])}
    )
    assert rewritten.clustered_values == ("MA", "NH", "OH")


def test_unknown_value_yields_empty_rewrite():
    rewriter = QueryRewriter(build_city_cm())
    rewritten = rewriter.rewrite({"city": ValueConstraint.equals("Lyon")})
    assert rewritten.is_empty


def test_not_applicable_without_cm_attribute_predicate():
    rewriter = QueryRewriter(build_city_cm())
    assert not rewriter.applicable({"salary": ValueConstraint.between(0, 10)})
    with pytest.raises(ValueError):
        rewriter.rewrite({"salary": ValueConstraint.between(0, 10)})


def test_non_cm_predicates_are_not_forwarded():
    rewriter = QueryRewriter(build_city_cm())
    rewritten = rewriter.rewrite(
        {
            "city": ValueConstraint.equals("Toledo"),
            "salary": ValueConstraint.between(0, 100),
        }
    )
    assert set(rewritten.residual_constraints) == {"city"}


def test_clustered_column_override_for_bucket_ids():
    """When the table stores bucket ids the IN list ranges over that column."""
    rows = [{"receiptdate": 10 + i, "shipdate": i, "_bucket": i // 5} for i in range(20)]
    cm = CorrelationMap(
        "cm",
        CompositeKeySpec.build(["receiptdate"]),
        "shipdate",
        target_of=lambda row: row["_bucket"],
    ).build(rows)
    rewriter = QueryRewriter(cm, clustered_column="_bucket")
    rewritten = rewriter.rewrite({"receiptdate": ValueConstraint.equals(12)})
    assert rewritten.clustered_attribute == "_bucket"
    assert rewritten.clustered_values == (0,)


def test_range_predicate_rewrite_tpch_style():
    rows = [{"receiptdate": i + 3, "shipdate": i} for i in range(100)]
    cm = CorrelationMap(
        "cm", CompositeKeySpec.build(["receiptdate"]), "shipdate",
        clustered_bucketer=WidthBucketer(10),
    ).build(rows)
    rewriter = QueryRewriter(cm)
    rewritten = rewriter.rewrite({"receiptdate": ValueConstraint.between(20, 25)})
    assert rewritten.clustered_values == (10.0, 20.0)
    sql = rewritten.to_sql("lineitem", select_list="COUNT(*)")
    assert sql.startswith("SELECT COUNT(*) FROM lineitem WHERE")
    assert "BETWEEN 20 AND 25" in sql


def test_to_sql_open_ranges_and_strings():
    predicate = RewrittenPredicate(
        clustered_attribute="state",
        clustered_values=("MA",),
        residual_constraints={
            "low_only": ValueConstraint(low=5),
            "high_only": ValueConstraint(high=9),
            "nothing": ValueConstraint(),
            "quoted": ValueConstraint.equals("O'Brien"),
        },
    )
    sql = predicate.to_sql("t")
    assert "low_only >= 5" in sql
    assert "high_only <= 9" in sql
    assert "TRUE" in sql
    assert "O''Brien" in sql
