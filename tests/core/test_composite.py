"""Tests for composite CM keys and value/bucket constraints."""

import pytest

from repro.core.bucketing import IdentityBucketer, WidthBucketer
from repro.core.composite import (
    AttributeBucketing,
    CompositeKeySpec,
    ValueConstraint,
    key_matches,
)


def test_spec_requires_attributes():
    with pytest.raises(ValueError):
        CompositeKeySpec(parts=())


def test_spec_rejects_duplicate_attributes():
    with pytest.raises(ValueError):
        CompositeKeySpec.build(["ra", "ra"])


def test_single_attribute_key_is_one_tuple():
    spec = CompositeKeySpec.build(["city"])
    assert spec.key_of({"city": "Boston", "state": "MA"}) == ("Boston",)
    assert spec.attributes == ("city",)
    assert len(spec) == 1


def test_composite_key_order_preserved():
    spec = CompositeKeySpec.build(["ra", "dec"])
    assert spec.key_of({"dec": 2.0, "ra": 1.0}) == (1.0, 2.0)


def test_bucketed_key():
    spec = CompositeKeySpec.build(
        ["ra", "dec"], {"ra": WidthBucketer(10), "dec": WidthBucketer(5)}
    )
    assert spec.key_of({"ra": 23.0, "dec": 7.0}) == (20.0, 5.0)


def test_describe():
    spec = CompositeKeySpec.build(["ra", "dec"], {"dec": WidthBucketer(4)})
    assert spec.describe() == "ra, dec(width=4)"
    assert AttributeBucketing("ra").describe() == "ra"


def test_value_constraint_equals_and_in():
    eq = ValueConstraint.equals("Boston")
    assert eq.matches("Boston")
    assert not eq.matches("Toledo")
    inset = ValueConstraint.in_set(["a", "b"])
    assert inset.matches("a") and inset.matches("b") and not inset.matches("c")


def test_value_constraint_range():
    rng = ValueConstraint.between(10, 20)
    assert rng.matches(10) and rng.matches(20) and rng.matches(15)
    assert not rng.matches(9) and not rng.matches(21)
    open_low = ValueConstraint(low=None, high=5)
    assert open_low.matches(-100) and not open_low.matches(6)
    unconstrained = ValueConstraint()
    assert unconstrained.matches("anything")


def test_bucket_constraints_equality_translated_to_buckets():
    spec = CompositeKeySpec.build(["price"], {"price": WidthBucketer(100)})
    constraints = spec.bucket_constraints({"price": ValueConstraint.equals(250)})
    assert len(constraints) == 1
    assert constraints[0].buckets == {200}


def test_bucket_constraints_range_translated_to_bucket_range():
    spec = CompositeKeySpec.build(["price"], {"price": WidthBucketer(100)})
    constraints = spec.bucket_constraints(
        {"price": ValueConstraint.between(150, 420)}
    )
    assert constraints[0].low == 100
    assert constraints[0].high == 400


def test_unconstrained_attribute_matches_everything():
    spec = CompositeKeySpec.build(["ra", "dec"])
    constraints = spec.bucket_constraints({"ra": ValueConstraint.equals(1.0)})
    assert key_matches((1.0, 99.0), constraints)
    assert not key_matches((2.0, 99.0), constraints)


def test_key_matches_multiple_constraints():
    spec = CompositeKeySpec.build(
        ["ra", "dec"], {"ra": WidthBucketer(10), "dec": WidthBucketer(10)}
    )
    constraints = spec.bucket_constraints(
        {
            "ra": ValueConstraint.between(15, 25),
            "dec": ValueConstraint.equals(42),
        }
    )
    assert key_matches((20.0, 40.0), constraints)
    assert not key_matches((40.0, 40.0), constraints)
    assert not key_matches((20.0, 90.0), constraints)
