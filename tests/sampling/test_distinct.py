"""Tests for Gibbons' Distinct Sampling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.distinct import DistinctSampler, distinct_sample_estimate


def test_sample_size_must_be_positive():
    with pytest.raises(ValueError):
        DistinctSampler(0)


def test_exact_when_sample_never_overflows():
    sampler = DistinctSampler(sample_size=100)
    sampler.extend([1, 2, 3, 2, 1, 4])
    assert sampler.is_exact
    assert sampler.estimate() == 4
    assert sampler.rows_seen == 6


def test_duplicates_do_not_grow_the_sample():
    sampler = DistinctSampler(sample_size=4)
    sampler.extend([7] * 1000)
    assert sampler.estimate() == 1
    assert sampler.is_exact


def test_estimate_accuracy_with_overflow():
    rng = random.Random(0)
    true_distinct = 5000
    values = [rng.randrange(true_distinct) for _ in range(50_000)]
    # Force many level raises with a small sample.
    estimate = distinct_sample_estimate(values, sample_size=512, seed=1)
    observed_distinct = len(set(values))
    assert 0.7 * observed_distinct <= estimate <= 1.3 * observed_distinct


def test_estimate_accuracy_unique_values():
    values = list(range(20_000))
    estimate = distinct_sample_estimate(values, sample_size=1024, seed=2)
    assert 0.7 * 20_000 <= estimate <= 1.3 * 20_000


def test_deterministic_for_fixed_seed():
    values = [i % 1000 for i in range(10_000)]
    a = distinct_sample_estimate(values, sample_size=128, seed=5)
    b = distinct_sample_estimate(values, sample_size=128, seed=5)
    assert a == b


def test_string_values_supported():
    values = [f"city-{i % 300}" for i in range(3000)]
    estimate = distinct_sample_estimate(values, sample_size=64, seed=3)
    assert 150 <= estimate <= 600


@given(st.lists(st.integers(min_value=0, max_value=200), max_size=500))
@settings(max_examples=50, deadline=None)
def test_property_exact_mode_matches_set(values):
    """With a big enough sample the estimate equals the exact distinct count."""
    sampler = DistinctSampler(sample_size=1000)
    sampler.extend(values)
    assert sampler.estimate() == len(set(values))


@given(st.lists(st.integers(), min_size=1, max_size=300), st.integers(2, 64))
@settings(max_examples=50, deadline=None)
def test_property_sample_respects_bound(values, sample_size):
    sampler = DistinctSampler(sample_size=sample_size)
    sampler.extend(values)
    assert len(sampler.sample_values) <= sample_size
    assert sampler.estimate() >= 0
