"""Tests for reservoir sampling."""

import random
from collections import Counter

import pytest

from repro.sampling.reservoir import ReservoirSampler


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ReservoirSampler(0)


def test_small_streams_are_kept_entirely():
    sampler = ReservoirSampler(10, seed=1)
    sampler.extend(range(5))
    assert sorted(sampler.sample) == [0, 1, 2, 3, 4]
    assert len(sampler) == 5
    assert sampler.items_seen == 5


def test_sample_never_exceeds_capacity():
    sampler = ReservoirSampler(16, seed=1)
    sampler.extend(range(1000))
    assert len(sampler) == 16
    assert sampler.items_seen == 1000


def test_sample_items_come_from_the_stream():
    sampler = ReservoirSampler(8, seed=3)
    sampler.extend(range(100, 200))
    assert all(100 <= item < 200 for item in sampler)


def test_from_iterable_equivalent_to_extend():
    a = ReservoirSampler.from_iterable(range(50), 5, seed=7)
    b = ReservoirSampler(5, seed=7)
    b.extend(range(50))
    assert a.sample == b.sample


def test_uniformity_over_many_runs():
    """Every element should be selected roughly equally often."""
    hits = Counter()
    runs = 400
    population = 20
    capacity = 5
    for seed in range(runs):
        sampler = ReservoirSampler(capacity, seed=seed)
        sampler.extend(range(population))
        hits.update(sampler.sample)
    expected = runs * capacity / population
    for element in range(population):
        assert expected * 0.6 < hits[element] < expected * 1.4


def test_deterministic_for_fixed_seed():
    a = ReservoirSampler.from_iterable(range(1000), 10, seed=42)
    b = ReservoirSampler.from_iterable(range(1000), 10, seed=42)
    assert a.sample == b.sample


class TestDiscard:
    def test_discard_by_identity(self):
        rows = [{"k": i} for i in range(5)]
        sampler = ReservoirSampler(10, seed=0)
        sampler.extend(rows)
        assert sampler.discard(rows[2])
        assert sampler.items_seen == 4
        assert len(sampler) == 4
        assert rows[2] not in sampler.sample

    def test_discard_equal_but_distinct_object(self):
        rows = [{"k": i} for i in range(5)]
        sampler = ReservoirSampler(10, seed=0)
        sampler.extend(rows)
        assert sampler.discard({"k": 3})
        assert len(sampler) == 4
        assert {"k": 3} not in sampler.sample

    def test_discard_missing_item_still_shrinks_stream(self):
        sampler = ReservoirSampler(4, seed=0)
        sampler.extend(range(100))
        seen_before = sampler.items_seen
        assert not sampler.discard(-1)
        assert sampler.items_seen == seen_before - 1
        assert len(sampler) == 4

    def test_discard_everything_empties_the_reservoir(self):
        rows = [{"k": i} for i in range(20)]
        sampler = ReservoirSampler(50, seed=0)
        sampler.extend(rows)
        for row in rows:
            assert sampler.discard(row)
        assert len(sampler) == 0
        assert sampler.items_seen == 0

    def test_discard_keeps_identity_index_consistent_under_replacement(self):
        """Adds past capacity replace slots; discards after that must still
        remove exactly the requested (identical) objects."""
        rows = [{"k": i} for i in range(200)]
        sampler = ReservoirSampler(16, seed=9)
        sampler.extend(rows)
        stored = sampler.sample
        for row in stored[:8]:
            assert sampler.discard(row)
        remaining = sampler.sample
        assert len(remaining) == 8
        for row in stored[:8]:
            assert all(r is not row for r in remaining)
