"""Tests for the Adaptive Estimator and GEE."""

import random

import pytest

from repro.sampling.adaptive import (
    adaptive_estimate,
    frequency_of_frequencies,
    gee_estimate,
)
from repro.sampling.reservoir import ReservoirSampler


def sample_of(population, sample_size, seed=0):
    return ReservoirSampler.from_iterable(population, sample_size, seed=seed).sample


def test_frequency_of_frequencies():
    freq = frequency_of_frequencies(["a", "a", "b", "c", "c", "c"])
    assert freq == {2: 1, 1: 1, 3: 1}


def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        gee_estimate([], 100)
    with pytest.raises(ValueError):
        adaptive_estimate([], 100)


def test_total_rows_must_cover_sample():
    with pytest.raises(ValueError):
        gee_estimate([1, 2, 3], 2)


def test_sample_equal_to_table_is_exact():
    values = [1, 1, 2, 3, 3, 3]
    assert gee_estimate(values, len(values)) == pytest.approx(len(set(values)), rel=0.75)
    assert adaptive_estimate(values, len(values)) == pytest.approx(3, abs=1.0)


def test_estimates_bounded_by_table_size():
    sample = list(range(100))
    assert gee_estimate(sample, 200) <= 200
    assert adaptive_estimate(sample, 200) <= 200


def test_low_cardinality_column_estimated_well():
    """A 10-value column sampled at 1% must not be wildly overestimated."""
    rng = random.Random(1)
    population = [rng.randrange(10) for _ in range(100_000)]
    sample = sample_of(population, 1000, seed=2)
    estimate = adaptive_estimate(sample, len(population))
    assert estimate <= 20


def test_high_cardinality_column_scaled_up():
    """A nearly-unique column must be estimated well above the sample size.

    GEE (and AE's rare-only fallback) scale the singletons by sqrt(n/r), so a
    unique column sampled at 1 % is estimated at ~10x the sample's distinct
    count -- a deliberate underestimate with guaranteed error, not a bug.
    """
    population = list(range(100_000))
    sample = sample_of(population, 1000, seed=3)
    estimate = adaptive_estimate(sample, len(population))
    assert estimate >= 9_000
    gee = gee_estimate(sample, len(population))
    assert gee >= 9_000


def test_moderate_cardinality_reasonable():
    rng = random.Random(7)
    true_distinct = 2_000
    population = [rng.randrange(true_distinct) for _ in range(100_000)]
    sample = sample_of(population, 5_000, seed=4)
    estimate = adaptive_estimate(sample, len(population))
    assert 0.3 * true_distinct <= estimate <= 3.0 * true_distinct


def test_skewed_distribution_ae_not_worse_than_gee():
    """AE's frequent/rare split should cope with heavy skew."""
    rng = random.Random(9)
    # One very frequent value plus a long tail of rare values.
    population = [0] * 50_000 + [rng.randrange(1, 5_000) for _ in range(50_000)]
    rng.shuffle(population)
    true_distinct = len(set(population))
    sample = sample_of(population, 3_000, seed=5)
    ae = adaptive_estimate(sample, len(population))
    gee = gee_estimate(sample, len(population))
    ae_error = abs(ae - true_distinct) / true_distinct
    gee_error = abs(gee - true_distinct) / true_distinct
    assert ae_error <= gee_error * 1.5 + 0.05


def test_composite_key_estimation():
    """Estimating |D(Au, Ac)| from tuples, the CM Advisor's main use."""
    rng = random.Random(11)
    rows = [(rng.randrange(50), rng.randrange(40)) for _ in range(50_000)]
    true_distinct = len(set(rows))
    sample = sample_of(rows, 2_000, seed=6)
    estimate = adaptive_estimate(sample, len(rows))
    assert 0.5 * true_distinct <= estimate <= 1.8 * true_distinct


def test_estimates_never_below_sample_distinct():
    sample = ["a", "b", "c", "d", "d"]
    assert adaptive_estimate(sample, 1_000_000) >= 4
    assert gee_estimate(sample, 1_000_000) >= 4
