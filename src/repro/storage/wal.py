"""Write-ahead log with group commit.

The paper's prototype keeps correlation maps in main memory and makes them
recoverable by writing their updates to a transaction log that is flushed
during two-phase commit with PostgreSQL.  Secondary B+Trees likewise pay WAL
costs for every page they dirty.  This module reproduces the accounting: log
records accumulate in a buffer and each flush (commit / prepare) charges one
fsync seek plus the sequential write of the buffered log pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.disk import DiskModel


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One logical WAL record."""

    lsn: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("log record size must be positive")


class WriteAheadLog:
    """An append-only log shared by the engine's durable structures."""

    __slots__ = (
        "disk",
        "name",
        "records",
        "_next_lsn",
        "_pending_bytes",
        "_flushed_lsn",
        "flush_count",
        "pages_written",
    )

    def __init__(self, disk: DiskModel, *, name: str = "wal") -> None:
        self.disk = disk
        self.name = name
        self.records: list[LogRecord] = []
        self._next_lsn = 0
        self._pending_bytes = 0
        self._flushed_lsn = -1
        self.flush_count = 0
        self.pages_written = 0

    @property
    def page_size_bytes(self) -> int:
        return self.disk.params.page_size_bytes

    @property
    def pending_records(self) -> int:
        return self._next_lsn - (self._flushed_lsn + 1)

    def append(self, kind: str, payload: dict[str, Any] | None = None, *, size_bytes: int = 64) -> LogRecord:
        """Append a record to the in-memory log buffer (no I/O yet)."""
        record = LogRecord(
            lsn=self._next_lsn, kind=kind, payload=dict(payload or {}), size_bytes=size_bytes
        )
        self.records.append(record)
        self._next_lsn += 1
        self._pending_bytes += size_bytes
        return record

    def flush(self) -> int:
        """Force the buffered records to disk (fsync).  Returns pages written.

        A flush with an empty buffer still pays the fsync seek, matching the
        behaviour of a commit record that fits in an already-buffered page.
        """
        pages = max(1, -(-self._pending_bytes // self.page_size_bytes))
        self.disk.log_flush(pages)
        self.flush_count += 1
        self.pages_written += pages
        self._pending_bytes = 0
        self._flushed_lsn = self._next_lsn - 1
        return pages

    def commit(self, payload: dict[str, Any] | None = None) -> None:
        """Append a commit record and flush (simple single-phase commit)."""
        self.append("commit", payload)
        self.flush()

    def prepare(self, payload: dict[str, Any] | None = None) -> None:
        """First phase of two-phase commit: persist the prepare record."""
        self.append("prepare", payload)
        self.flush()

    def commit_prepared(self, payload: dict[str, Any] | None = None) -> None:
        """Second phase of two-phase commit."""
        self.append("commit_prepared", payload)
        self.flush()

    def records_for_xid(self, xid: int) -> list[LogRecord]:
        """Every record tagged with transaction ``xid``, in LSN order.

        Transactional writers tag each record's payload with its xid (see
        :meth:`repro.engine.transactions.Transaction.log`): MVCC writes log
        ``insert_version`` / ``delete_version`` / ``update_version``,
        correlation-map maintenance logs ``cm_update``, and termination logs
        ``prepare`` + ``commit_prepared`` (2PC), ``commit`` (single-phase)
        or ``abort``.  Recovery-style inspection and the isolation tests use
        this to audit what one transaction durably claimed to have done.
        """
        return [record for record in self.records if record.payload.get("xid") == xid]

    def truncate(self) -> None:
        """Discard all records (checkpoint complete)."""
        self.records.clear()
        self._pending_bytes = 0
        self._flushed_lsn = self._next_lsn - 1
