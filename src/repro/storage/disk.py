"""Simulated disk with the paper's cost parameters.

The reproduction replaces the paper's physical 7200 rpm SATA disk with an
accounting model.  Every page access issued by the storage engine is recorded
as either *sequential* (the page immediately follows the previously accessed
page of the same file) or *random* (anything else, which on a real disk incurs
a head seek).  Simulated elapsed time is derived from these counts using the
constants the paper measured on its experimental platform (Table 1):

* ``seek_cost``      -- 5.5 ms to seek to a random page and read it
* ``seq_page_cost``  -- 0.078 ms to read the next sequential page

Writes are charged with the same constants; a write-ahead-log flush is charged
as one seek plus the sequential write of the pending log pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class DiskParameters:
    """Hardware constants used to convert I/O counts into simulated time.

    The defaults are the measured values reported in Table 1 of the paper.
    """

    seek_cost_ms: float = 5.5
    seq_page_cost_ms: float = 0.078
    #: CPU cost charged per tuple that the executor materialises or filters.
    #: The paper's workloads are disk bound; this small constant only breaks
    #: ties (e.g. the CM's extra filtering of false-positive tuples).
    cpu_tuple_cost_ms: float = 0.0002
    page_size_bytes: int = 8192

    def random_read_cost(self, pages: int = 1) -> float:
        """Cost of ``pages`` page reads, each preceded by a seek."""
        return pages * self.seek_cost_ms

    def sequential_read_cost(self, pages: int) -> float:
        """Cost of reading ``pages`` consecutive pages with no seek."""
        return pages * self.seq_page_cost_ms


@dataclass(slots=True)
class IOBreakdown:
    """A snapshot of I/O counters, used to report per-query statistics."""

    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    log_flushes: int = 0
    log_pages_written: int = 0
    cpu_tuples: int = 0

    @property
    def pages_read(self) -> int:
        return self.sequential_reads + self.random_reads

    @property
    def pages_written(self) -> int:
        return self.sequential_writes + self.random_writes

    @property
    def seeks(self) -> int:
        return self.random_reads + self.random_writes + self.log_flushes

    def elapsed_ms(self, params: DiskParameters) -> float:
        """Convert the recorded counts into simulated milliseconds."""
        read_ms = (
            self.random_reads * params.seek_cost_ms
            + self.sequential_reads * params.seq_page_cost_ms
        )
        write_ms = (
            self.random_writes * params.seek_cost_ms
            + self.sequential_writes * params.seq_page_cost_ms
        )
        log_ms = (
            self.log_flushes * params.seek_cost_ms
            + self.log_pages_written * params.seq_page_cost_ms
        )
        cpu_ms = self.cpu_tuples * params.cpu_tuple_cost_ms
        return read_ms + write_ms + log_ms + cpu_ms

    def subtract(self, other: "IOBreakdown") -> "IOBreakdown":
        """Return the difference ``self - other`` (used for windows)."""
        return IOBreakdown(
            sequential_reads=self.sequential_reads - other.sequential_reads,
            random_reads=self.random_reads - other.random_reads,
            sequential_writes=self.sequential_writes - other.sequential_writes,
            random_writes=self.random_writes - other.random_writes,
            log_flushes=self.log_flushes - other.log_flushes,
            log_pages_written=self.log_pages_written - other.log_pages_written,
            cpu_tuples=self.cpu_tuples - other.cpu_tuples,
        )

    def add(self, other: "IOBreakdown") -> "IOBreakdown":
        """Return the sum ``self + other`` (used to accumulate windows).

        The scheduler attributes each quantum's I/O window to the query that
        ran it; summing the windows rebuilds that query's total breakdown
        even though its execution was interleaved with other queries'.
        """
        return IOBreakdown(
            sequential_reads=self.sequential_reads + other.sequential_reads,
            random_reads=self.random_reads + other.random_reads,
            sequential_writes=self.sequential_writes + other.sequential_writes,
            random_writes=self.random_writes + other.random_writes,
            log_flushes=self.log_flushes + other.log_flushes,
            log_pages_written=self.log_pages_written + other.log_pages_written,
            cpu_tuples=self.cpu_tuples + other.cpu_tuples,
        )

    def copy(self) -> "IOBreakdown":
        return IOBreakdown(
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            sequential_writes=self.sequential_writes,
            random_writes=self.random_writes,
            log_flushes=self.log_flushes,
            log_pages_written=self.log_pages_written,
            cpu_tuples=self.cpu_tuples,
        )


@dataclass(slots=True)
class IOTracker:
    """Accumulates I/O counts and decides sequential vs random accesses.

    The tracker keeps the identity of the last page touched on the (single)
    simulated disk.  An access is sequential only when it touches the next
    page of the same file; interleaved access to different files therefore
    costs seeks, exactly as it would on one spindle.
    """

    counters: IOBreakdown = field(default_factory=IOBreakdown)
    _last_file: str | None = field(default=None, repr=False)
    _last_page: int | None = field(default=None, repr=False)

    def _is_sequential(self, file_name: str, page_no: int) -> bool:
        return self._last_file == file_name and self._last_page is not None and (
            page_no == self._last_page + 1 or page_no == self._last_page
        )

    def record_read(self, file_name: str, page_no: int) -> None:
        if self._is_sequential(file_name, page_no):
            self.counters.sequential_reads += 1
        else:
            self.counters.random_reads += 1
        self._last_file = file_name
        self._last_page = page_no

    def record_read_run(self, file_name: str, start_page: int, count: int) -> None:
        """Record ``count`` consecutive page reads with one call.

        Equivalent to ``count`` :meth:`record_read` calls over
        ``start_page .. start_page + count - 1``: only the first page can be
        a seek (it is classified against the head position exactly as a
        single read would be), every following page of the run is sequential
        by construction.  The batched executor uses this to charge a page
        run it read back-to-back without paying ``count`` Python calls into
        the tracker.
        """
        if count <= 0:
            return
        if self._is_sequential(file_name, start_page):
            self.counters.sequential_reads += count
        else:
            self.counters.random_reads += 1
            self.counters.sequential_reads += count - 1
        self._last_file = file_name
        self._last_page = start_page + count - 1

    def record_write(self, file_name: str, page_no: int) -> None:
        if self._is_sequential(file_name, page_no):
            self.counters.sequential_writes += 1
        else:
            self.counters.random_writes += 1
        self._last_file = file_name
        self._last_page = page_no

    def record_log_flush(self, pages: int) -> None:
        """A log flush: one fsync seek plus ``pages`` sequential log writes."""
        self.counters.log_flushes += 1
        self.counters.log_pages_written += pages
        # The disk head is now at the log; the next data access seeks back.
        self._last_file = None
        self._last_page = None

    def record_cpu_tuples(self, count: int) -> None:
        self.counters.cpu_tuples += count

    def record_spill(self, file_name: str, pages: int) -> None:
        """One spill round-trip: stream ``pages`` out, then stream them back.

        Charged as a seek to the scratch file plus ``pages - 1`` sequential
        writes, then a rewind seek plus ``pages - 1`` sequential reads --
        the access pattern of a hash-repartition that writes each bucket
        run once and re-reads it once.  The head ends at the last scratch
        page, so the consumer's next data access pays its seek back.
        """
        if pages <= 0:
            return
        self.counters.random_writes += 1
        self.counters.sequential_writes += pages - 1
        self.counters.random_reads += 1
        self.counters.sequential_reads += pages - 1
        self._last_file = file_name
        self._last_page = pages - 1

    def head_position(self) -> tuple[str | None, int | None]:
        """The simulated head position ``(file, page)`` (``(None, None)`` parked)."""
        return (self._last_file, self._last_page)

    def set_head_position(self, file_name: str | None, page_no: int | None) -> None:
        """Restore a head position captured by :meth:`head_position`.

        Used when replaying I/O performed elsewhere (a forked parallel
        worker) onto this tracker: the counters are folded in separately,
        and the head must land where the replayed accesses left it so every
        *later* sequential/random classification matches a serial run.
        """
        self._last_file = file_name
        self._last_page = page_no

    def snapshot(self) -> IOBreakdown:
        return self.counters.copy()

    def reset(self) -> None:
        self.counters = IOBreakdown()
        self._last_file = None
        self._last_page = None


class DiskModel:
    """The simulated disk: cost parameters plus the global I/O tracker.

    All storage components (heap files, B+Tree index files, the WAL) share a
    single :class:`DiskModel`, mirroring the single-spindle experimental
    platform of the paper.
    """

    __slots__ = ("params", "tracker")

    def __init__(self, params: DiskParameters | None = None) -> None:
        self.params = params or DiskParameters()
        self.tracker = IOTracker()

    # -- accounting entry points used by the storage layer ------------------

    def read_page(self, file_name: str, page_no: int) -> None:
        self.tracker.record_read(file_name, page_no)

    def read_page_run(self, file_name: str, start_page: int, count: int) -> None:
        """Charge ``count`` consecutive page reads in one accounting call."""
        self.tracker.record_read_run(file_name, start_page, count)

    def write_page(self, file_name: str, page_no: int) -> None:
        self.tracker.record_write(file_name, page_no)

    def log_flush(self, pages: int) -> None:
        self.tracker.record_log_flush(pages)

    def charge_cpu_tuples(self, count: int) -> None:
        self.tracker.record_cpu_tuples(count)

    def charge_spill(self, file_name: str, pages: int) -> None:
        """Charge a spill round-trip (write out + read back) on a scratch file."""
        self.tracker.record_spill(file_name, pages)

    # -- reporting -----------------------------------------------------------

    @property
    def counters(self) -> IOBreakdown:
        return self.tracker.counters

    def elapsed_ms(self) -> float:
        """Total simulated time since the last reset."""
        return self.tracker.counters.elapsed_ms(self.params)

    def snapshot(self) -> IOBreakdown:
        return self.tracker.snapshot()

    def window_since(self, snapshot: IOBreakdown) -> IOBreakdown:
        """I/O performed since ``snapshot`` was taken."""
        return self.tracker.counters.subtract(snapshot)

    def elapsed_since(self, snapshot: IOBreakdown) -> float:
        return self.window_since(snapshot).elapsed_ms(self.params)

    def absorb(
        self, window: IOBreakdown, head: tuple[str | None, int | None]
    ) -> None:
        """Fold I/O performed on a forked copy of this device back in.

        A process-parallel worker inherits this device by fork, performs its
        partition's accesses on the copy, and ships back the counter delta
        plus the final head position.  Replaying both here leaves the parent
        tracker exactly as if the accesses had run in this process.
        """
        self.tracker.counters = self.tracker.counters.add(window)
        self.tracker.set_head_position(*head)

    def reset(self) -> None:
        self.tracker.reset()
