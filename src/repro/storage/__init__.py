"""Storage substrate: simulated disk, pages, heap files, buffer pool and WAL.

The paper's experiments run against PostgreSQL on a single SATA disk and are
disk bound.  This package reproduces the storage-level mechanisms those
experiments exercise -- sequential vs random page accesses, buffer-pool
pressure from dirty index pages, and write-ahead logging -- using a simulated
disk that charges the same per-page costs the paper reports (Table 1:
``seek_cost`` = 5.5 ms, ``seq_page_cost`` = 0.078 ms).
"""

from repro.storage.disk import DiskModel, DiskParameters, IOBreakdown, IOTracker
from repro.storage.page import PAGE_SIZE_BYTES, Page, RID
from repro.storage.heap import HeapFile
from repro.storage.buffer_pool import BufferPool
from repro.storage.wal import LogRecord, WriteAheadLog

__all__ = [
    "DiskModel",
    "DiskParameters",
    "IOBreakdown",
    "IOTracker",
    "PAGE_SIZE_BYTES",
    "Page",
    "RID",
    "HeapFile",
    "BufferPool",
    "LogRecord",
    "WriteAheadLog",
]
