"""An LRU buffer pool with dirty-page write-back.

The buffer pool is central to the paper's maintenance experiments
(Experiment 3, Figures 8 and 9): inserting into many large secondary B+Trees
dirties leaf pages scattered across files far larger than RAM, so dirty pages
are continually evicted and written back with random I/O.  Correlation maps
are small enough to stay resident, which is exactly why their maintenance cost
stays flat.

Pages are identified by ``(file_name, page_no)``.  The pool does not hold the
page payloads themselves (the heap and index structures keep their own Python
objects); it models *residency*: which pages would be cached, which reads hit
the disk, and which evictions force a write.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.storage.disk import DiskModel

PageKey = tuple[str, int]


@dataclass(slots=True)
class BufferPoolStats:
    """Hit/miss/eviction counters, reported alongside query I/O."""

    hits: int = 0
    misses: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class BufferPool:
    """A fixed-capacity LRU cache of disk pages shared by all files.

    ``capacity_pages`` plays the role of the 1 GB of RAM in the paper's
    experimental platform (scaled down together with the data sets).
    """

    __slots__ = ("disk", "capacity_pages", "stats", "_frames")

    def __init__(self, disk: DiskModel, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.stats = BufferPoolStats()
        #: LRU ordering: oldest first.  Value is the dirty flag.
        self._frames: OrderedDict[PageKey, bool] = OrderedDict()

    # -- internal helpers ----------------------------------------------------

    def _touch(self, key: PageKey, dirty: bool) -> None:
        already_dirty = self._frames.pop(key, False)
        self._frames[key] = already_dirty or dirty

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self.capacity_pages:
            key, dirty = self._frames.popitem(last=False)
            if dirty:
                self.stats.dirty_evictions += 1
                self.disk.write_page(*key)
            else:
                self.stats.clean_evictions += 1

    # -- public API ----------------------------------------------------------

    def access(self, file_name: str, page_no: int, *, dirty: bool = False) -> bool:
        """Access a page, reading it from disk on a miss.

        Returns ``True`` on a buffer hit.  ``dirty=True`` marks the page
        modified so that a later eviction writes it back.
        """
        key = (file_name, page_no)
        if key in self._frames:
            self.stats.hits += 1
            self._touch(key, dirty)
            return True
        self.stats.misses += 1
        self.disk.read_page(file_name, page_no)
        self._touch(key, dirty)
        self._evict_if_needed()
        return False

    def access_run(self, file_name: str, page_nos: Iterable[int]) -> int:
        """Access a batch of pages, charging consecutive misses as one run.

        Behaviourally identical to calling :meth:`access` once per page --
        same hits/misses, same evictions in the same order, same
        sequential/random classification -- but misses of consecutive pages
        reach the disk tracker through a single
        :meth:`~repro.storage.disk.DiskModel.read_page_run` call.  A pending
        run is flushed before any eviction, so a dirty write-back lands
        between the same reads it would under per-page access (the simulated
        head position, and with it every later classification, is
        preserved).  Returns the number of buffer hits.
        """
        frames = self._frames
        stats = self.stats
        disk = self.disk
        hits = 0
        run_start = 0
        run_len = 0
        for page_no in page_nos:
            key = (file_name, page_no)
            if key in frames:
                stats.hits += 1
                self._touch(key, False)
                hits += 1
                continue
            stats.misses += 1
            if run_len and page_no == run_start + run_len:
                run_len += 1
            else:
                if run_len:
                    disk.read_page_run(file_name, run_start, run_len)
                run_start, run_len = page_no, 1
            frames[key] = False
            if len(frames) > self.capacity_pages:
                disk.read_page_run(file_name, run_start, run_len)
                run_len = 0
                self._evict_if_needed()
        if run_len:
            disk.read_page_run(file_name, run_start, run_len)
        return hits

    def create(self, file_name: str, page_no: int) -> None:
        """Register a freshly allocated page (no read I/O) as dirty."""
        key = (file_name, page_no)
        if key in self._frames:
            self._touch(key, True)
        else:
            self.stats.misses += 1
            self._touch(key, True)
            self._evict_if_needed()

    def mark_dirty(self, file_name: str, page_no: int) -> None:
        """Mark an already resident page dirty (reads it first otherwise)."""
        self.access(file_name, page_no, dirty=True)

    def contains(self, file_name: str, page_no: int) -> bool:
        return (file_name, page_no) in self._frames

    def is_dirty(self, file_name: str, page_no: int) -> bool:
        return self._frames.get((file_name, page_no), False)

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def dirty_pages(self) -> int:
        return sum(1 for dirty in self._frames.values() if dirty)

    def flush_all(self) -> int:
        """Write back every dirty page (checkpoint).  Returns pages written."""
        written = 0
        for key, dirty in list(self._frames.items()):
            if dirty:
                self.disk.write_page(*key)
                self._frames[key] = False
                written += 1
        return written

    def drop_file(self, file_name: str) -> None:
        """Discard all cached pages of ``file_name`` without writing them.

        Used when a file is rebuilt wholesale (e.g. re-clustering a heap).
        """
        for key in [key for key in self._frames if key[0] == file_name]:
            del self._frames[key]

    def clear(self, *, write_dirty: bool = False) -> None:
        """Empty the pool, optionally writing dirty pages back first.

        ``write_dirty=False`` mirrors the paper's cold-cache methodology of
        dropping OS and database caches between runs.
        """
        if write_dirty:
            self.flush_all()
        self._frames.clear()
