"""Pages and record identifiers.

A :class:`Page` is the unit of disk transfer and buffer-pool residency.  Heap
pages hold a fixed number of tuples (``tups_per_page`` in the paper's cost
model); index files use pages to account for node storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Default page size used for size accounting (PostgreSQL's 8 KB pages).
PAGE_SIZE_BYTES = 8192


@dataclass(frozen=True, order=True, slots=True)
class RID:
    """A record identifier: heap page number plus slot within the page.

    ``slots=True``: RIDs exist by the million (one per tuple, held by every
    secondary index), so dropping the per-instance ``__dict__`` measurably
    shrinks index memory and speeds attribute access on the probe hot path.
    """

    page_no: int
    slot: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RID({self.page_no}, {self.slot})"


@dataclass(slots=True)
class Page:
    """A slotted heap page holding up to ``capacity`` tuples.

    Tuples are stored as plain dictionaries keyed by column name.  Deleted
    slots are set to ``None`` so that RIDs of surviving tuples stay valid.
    ``slots=True`` keeps the per-page object slim and its attribute reads
    cheap -- the batched scan kernel touches ``page.slots`` once per page.
    """

    page_no: int
    capacity: int
    slots: list[dict[str, Any] | None] = field(default_factory=list)

    @property
    def num_tuples(self) -> int:
        """Number of live (non-deleted) tuples on the page."""
        return sum(1 for slot in self.slots if slot is not None)

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    def append(self, row: dict[str, Any]) -> int:
        """Append ``row`` and return its slot number.

        Raises :class:`ValueError` when the page is full; the heap file is
        responsible for allocating a new page in that case.
        """
        if self.is_full:
            raise ValueError(f"page {self.page_no} is full ({self.capacity} slots)")
        self.slots.append(row)
        return len(self.slots) - 1

    def get(self, slot: int) -> dict[str, Any] | None:
        if slot < 0 or slot >= len(self.slots):
            raise IndexError(f"slot {slot} out of range on page {self.page_no}")
        return self.slots[slot]

    def delete(self, slot: int) -> dict[str, Any] | None:
        """Mark ``slot`` deleted and return the tuple it held (if any)."""
        row = self.get(slot)
        self.slots[slot] = None
        return row

    def live_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(slot, row)`` pairs for live tuples, in slot order."""
        for slot, row in enumerate(self.slots):
            if row is not None:
                yield slot, row
