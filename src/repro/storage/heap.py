"""Heap files: the on-disk tuple storage for a table.

A heap file is an ordered sequence of slotted pages.  Clustering a table
(PostgreSQL's ``CLUSTER`` command, which the paper uses to choose the
clustered attribute) sorts all tuples by the clustering key and rebuilds the
file, so that tuples with equal or adjacent key values become physically
co-located -- the property the correlation-aware access methods exploit.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import Page, RID


class HeapFile:
    """Tuple storage for one table, backed by the simulated disk.

    Parameters
    ----------
    name:
        File name used for I/O accounting (one file per table).
    tups_per_page:
        Page capacity; this is the ``tups_per_page`` statistic of the
        paper's cost model (Table 1).
    buffer_pool:
        Shared buffer pool through which every page access is charged.
    """

    __slots__ = (
        "name",
        "tups_per_page",
        "buffer_pool",
        "pages",
        "_num_tuples",
        "_min_append_page",
        "logical_page_reads",
    )

    def __init__(self, name: str, tups_per_page: int, buffer_pool: BufferPool) -> None:
        if tups_per_page <= 0:
            raise ValueError("tups_per_page must be positive")
        self.name = name
        self.tups_per_page = tups_per_page
        self.buffer_pool = buffer_pool
        self.pages: list[Page] = []
        self._num_tuples = 0
        #: Appends never reuse pages below this index (see :meth:`seal`).
        self._min_append_page = 0
        #: Count of every page whose tuples were read, including accounting-free
        #: reads (:meth:`all_rows`, ``charge_io=False`` scans).  Lets tests
        #: assert that a code path -- e.g. the planner -- never touches the
        #: heap at all, which buffer-pool counters alone cannot show.
        self.logical_page_reads = 0

    # -- basic properties ----------------------------------------------------

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    # -- writes ----------------------------------------------------------------

    def append(self, row: dict[str, Any], *, charge_io: bool = True) -> RID:
        """Append a tuple at the end of the file and return its RID.

        Appends dirty the last page; a new page is allocated when it fills.
        ``charge_io=False`` is used by bulk loads that account their own cost.
        """
        needs_new_page = (
            not self.pages
            or self.pages[-1].is_full
            or len(self.pages) - 1 < self._min_append_page
        )
        if needs_new_page:
            page = Page(page_no=len(self.pages), capacity=self.tups_per_page)
            self.pages.append(page)
            if charge_io:
                self.buffer_pool.create(self.name, page.page_no)
        else:
            page = self.pages[-1]
            if charge_io:
                self.buffer_pool.mark_dirty(self.name, page.page_no)
        slot = page.append(row)
        self._num_tuples += 1
        return RID(page.page_no, slot)

    def bulk_load(self, rows: Iterator[dict[str, Any]] | list[dict[str, Any]]) -> list[RID]:
        """Load many rows without charging per-row buffer traffic.

        Bulk loads model the initial population of a table (the paper builds
        its data sets before measuring), so they bypass the buffer pool; the
        file simply exists on disk afterwards.
        """
        rids = []
        for row in rows:
            rids.append(self.append(row, charge_io=False))
        return rids

    def seal(self) -> None:
        """Freeze the current pages: future appends start on a fresh page.

        Used after clustering so that newly inserted tuples land in a clearly
        delimited unclustered tail rather than in free space of sorted pages.
        """
        self._min_append_page = len(self.pages)

    def delete(self, rid: RID, *, charge_io: bool = True) -> dict[str, Any] | None:
        """Delete the tuple at ``rid``; the page becomes dirty."""
        page = self._page(rid.page_no)
        if charge_io:
            self.buffer_pool.access(self.name, rid.page_no, dirty=True)
        row = page.delete(rid.slot)
        if row is not None:
            self._num_tuples -= 1
        return row

    # -- reads -----------------------------------------------------------------

    def _page(self, page_no: int) -> Page:
        if page_no < 0 or page_no >= len(self.pages):
            raise IndexError(f"page {page_no} out of range in heap {self.name!r}")
        return self.pages[page_no]

    def fetch(self, rid: RID, *, charge_io: bool = True) -> dict[str, Any] | None:
        """Fetch a single tuple by RID (one page access)."""
        self.logical_page_reads += 1
        if charge_io:
            self.buffer_pool.access(self.name, rid.page_no)
        return self._page(rid.page_no).get(rid.slot)

    def read_page(self, page_no: int, *, charge_io: bool = True) -> Page:
        """Read one page (through the buffer pool) and return it."""
        page = self._page(page_no)
        self.logical_page_reads += 1
        if charge_io:
            self.buffer_pool.access(self.name, page_no)
        return page

    def scan(self, *, charge_io: bool = True) -> Iterator[tuple[RID, dict[str, Any]]]:
        """Full sequential scan in physical order."""
        for page in self.pages:
            self.logical_page_reads += 1
            if charge_io:
                self.buffer_pool.access(self.name, page.page_no)
            for slot, row in page.live_rows():
                yield RID(page.page_no, slot), row

    def read_pages(
        self, page_numbers: Iterable[int], *, charge_io: bool = True
    ) -> list[Page]:
        """Read a batch of pages and return them, charging runs in one call.

        The batched scan kernel reads its next chunk of pages back-to-back
        before filtering any of their tuples, so consecutive misses are
        charged through :meth:`BufferPool.access_run` -- identical counters
        to per-page :meth:`read_page` calls, fewer accounting calls.
        """
        pages = [self._page(page_no) for page_no in page_numbers]
        self.logical_page_reads += len(pages)
        if charge_io:
            self.buffer_pool.access_run(self.name, [page.page_no for page in pages])
        return pages

    def scan_pages(
        self, page_numbers: Iterator[int] | list[int], *, charge_io: bool = True
    ) -> Iterator[tuple[RID, dict[str, Any]]]:
        """Scan only the given pages, in the order provided.

        Used by sorted (bitmap) index scans and CM scans; the disk tracker
        decides which of these accesses are sequential.
        """
        for page_no in page_numbers:
            page = self._page(page_no)
            self.logical_page_reads += 1
            if charge_io:
                self.buffer_pool.access(self.name, page_no)
            for slot, row in page.live_rows():
                yield RID(page_no, slot), row

    def all_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate every live row without any I/O accounting (internal use)."""
        for page in self.pages:
            self.logical_page_reads += 1
            for _slot, row in page.live_rows():
                yield row

    # -- clustering ------------------------------------------------------------

    def rebuild_clustered(
        self, sort_key: Callable[[dict[str, Any]], Any]
    ) -> list[tuple[RID, dict[str, Any]]]:
        """Sort all tuples by ``sort_key`` and rebuild the file in that order.

        Returns the new ``(RID, row)`` assignment so that indexes and
        correlation maps can be rebuilt against the new physical layout.
        Cached pages of the old layout are dropped from the buffer pool.
        """
        rows = sorted(self.all_rows(), key=sort_key)
        self.buffer_pool.drop_file(self.name)
        self.pages = []
        self._num_tuples = 0
        self._min_append_page = 0
        placed: list[tuple[RID, dict[str, Any]]] = []
        for row in rows:
            rid = self.append(row, charge_io=False)
            placed.append((rid, row))
        return placed
