"""The TPC-H ``lineitem`` and ``orders`` tables (Section 7.1.1).

The paper uses ``lineitem`` at scale factor 3 (~18 M rows, 2.5 GB) and relies
on two of its built-in correlations (Figure 1):

* ``shipdate`` is close to ``receiptdate``: TPC-H generates
  ``shipdate = orderdate + U[1, 121]`` and
  ``receiptdate = shipdate + U[1, 30]``; the paper observes most goods are
  received 2, 4 or 5 days after shipping, so this generator skews the
  receipt lag towards those values.
* ``suppkey`` is moderately correlated with ``partkey``: each part is
  supplied by exactly four suppliers determined by the TPC-H formula
  ``suppkey = (partkey + i * (S/4 + (partkey - 1)/S)) mod S + 1``.

Dates are represented as integer day numbers (days since 1992-01-01) so that
they bucket and compare like the ``date`` columns they stand in for.

:func:`iter_orders` generates the matching ``orders`` table for the
lineitem-orders join workload; see its docstring for the (deliberate)
deviations from stock TPC-H that give the join a CM-exploitable
``orderkey``/``orderdate`` correlation.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Any, Iterator

#: TPC-H order dates span 1992-01-01 .. 1998-08-02.
EPOCH = datetime.date(1992, 1, 1)
ORDERDATE_SPAN_DAYS = 2406 - 151  # leave room for ship + receipt lags

#: Receipt lag distribution: the paper's "roughly 4 days for standard UPS,
#: 2 days for air shipping, etc." bumps, with a thin uniform tail.
_RECEIPT_LAG_CHOICES = (2, 2, 2, 4, 4, 4, 4, 5, 5, 5)

_SHIPMODES = ("AIR", "RAIL", "TRUCK", "SHIP", "MAIL", "FOB", "REG AIR")
_SHIPINSTRUCT = ("DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN", "NONE")


@dataclass(frozen=True)
class TPCHConfig:
    """Scaled-down knobs for the lineitem generator.

    ``num_orders`` orders with 1-7 lineitems each (TPC-H's distribution);
    the defaults produce ~100 k rows.  The paper's scale factor 3 corresponds
    to ``num_orders=4_500_000``.
    """

    num_orders: int = 25_000
    num_parts: int = 5_000
    num_suppliers: int = 250
    #: Number of days order dates span.  TPC-H uses ~2255; scaled-down runs
    #: shrink it so that the rows-per-date density (and with it the length of
    #: the sequential runs a correlated clustering produces) stays realistic.
    orderdate_span_days: int = ORDERDATE_SPAN_DAYS
    seed: int = 7

    def __post_init__(self) -> None:
        if min(self.num_orders, self.num_parts, self.num_suppliers) <= 0:
            raise ValueError("row counts must be positive")
        if self.num_suppliers < 4:
            raise ValueError("TPC-H needs at least 4 suppliers")
        if self.orderdate_span_days <= 0:
            raise ValueError("orderdate_span_days must be positive")


def day_to_date(day_number: int) -> datetime.date:
    """Convert an integer day number back to a calendar date."""
    return EPOCH + datetime.timedelta(days=int(day_number))


def date_to_day(date: datetime.date) -> int:
    """Convert a calendar date to the integer day number used in rows."""
    return (date - EPOCH).days


def supplier_for_part(partkey: int, replica: int, num_suppliers: int) -> int:
    """The TPC-H supplier assignment: each part has exactly 4 suppliers."""
    s = num_suppliers
    return ((partkey + replica * (s // 4 + (partkey - 1) // s)) % s) + 1


def generate_lineitem(config: TPCHConfig | None = None) -> list[dict[str, Any]]:
    """Generate lineitem rows (materialised in memory)."""
    return list(iter_lineitem(config))


def iter_lineitem(config: TPCHConfig | None = None) -> Iterator[dict[str, Any]]:
    """Stream lineitem rows order by order."""
    config = config or TPCHConfig()
    rng = random.Random(config.seed)
    for orderkey in range(1, config.num_orders + 1):
        orderdate = rng.randrange(config.orderdate_span_days)
        lines = rng.randint(1, 7)
        for linenumber in range(1, lines + 1):
            partkey = rng.randint(1, config.num_parts)
            replica = rng.randrange(4)
            suppkey = supplier_for_part(partkey, replica, config.num_suppliers)
            quantity = rng.randint(1, 50)
            extendedprice = round(quantity * rng.uniform(900.0, 101_000.0 / 50), 2)
            discount = round(rng.uniform(0.0, 0.10), 2)
            tax = round(rng.uniform(0.0, 0.08), 2)
            ship_lag_span = max(2, min(121, config.orderdate_span_days // 18))
            shipdate = orderdate + rng.randint(1, ship_lag_span)
            commitdate = orderdate + rng.randint(30, 90)
            if rng.random() < 0.9:
                receipt_lag = rng.choice(_RECEIPT_LAG_CHOICES)
            else:
                receipt_lag = rng.randint(1, 30)
            receiptdate = shipdate + receipt_lag
            yield {
                "orderkey": orderkey,
                "linenumber": linenumber,
                "partkey": partkey,
                "suppkey": suppkey,
                "quantity": quantity,
                "extendedprice": extendedprice,
                "discount": discount,
                "tax": tax,
                "returnflag": "R" if rng.random() < 0.25 else "N",
                "linestatus": "F" if shipdate < config.orderdate_span_days // 2 else "O",
                "shipdate": shipdate,
                "commitdate": commitdate,
                "receiptdate": receiptdate,
                "shipinstruct": rng.choice(_SHIPINSTRUCT),
                "shipmode": rng.choice(_SHIPMODES),
            }


def expected_schema_columns() -> list[str]:
    """The lineitem columns generated here, in order."""
    return [
        "orderkey", "linenumber", "partkey", "suppkey", "quantity",
        "extendedprice", "discount", "tax", "returnflag", "linestatus",
        "shipdate", "commitdate", "receiptdate", "shipinstruct", "shipmode",
    ]


# ---------------------------------------------------------------------------
# The ORDERS side of the lineitem-orders join workload
# ---------------------------------------------------------------------------

_ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")


def generate_orders(config: TPCHConfig | None = None) -> list[dict[str, Any]]:
    """Generate orders rows (materialised in memory)."""
    return list(iter_orders(config))


def iter_orders(config: TPCHConfig | None = None) -> Iterator[dict[str, Any]]:
    """Stream orders rows, one per ``orderkey`` that lineitem references.

    The generator models a time-ordered order log: order keys are assigned
    monotonically as orders arrive, so ``orderkey`` is strongly correlated
    with ``orderdate`` (a small jitter keeps the correlation soft rather
    than functional).  That cross-table correlation is what a correlation
    map on ``orders.orderkey`` exploits when the table is clustered by
    ``orderdate``: each join probe resolves to a couple of adjacent date
    buckets instead of a B+Tree descent.

    The only invariant shared with :func:`iter_lineitem` is the key space:
    both tables cover orderkeys ``1 .. num_orders``, so a lineitem-orders
    equi-join on ``orderkey`` is lossless.  The lineitem generator's internal
    date columns are drawn independently (its RNG stream predates this table
    and is kept bit-stable for the benchmarks), so ``shipdate`` is *not*
    guaranteed to trail this table's ``orderdate`` row by row.
    """
    config = config or TPCHConfig()
    rng = random.Random(config.seed + 0x0D0E)
    span = config.orderdate_span_days
    jitter = max(1, span // 40)
    customers = max(10, config.num_orders // 10)
    for orderkey in range(1, config.num_orders + 1):
        arrival = (orderkey - 1) * span // config.num_orders
        orderdate = min(span - 1, arrival + rng.randint(0, jitter))
        yield {
            "orderkey": orderkey,
            "custkey": rng.randint(1, customers),
            "orderstatus": rng.choice(("O", "F", "P")),
            "totalprice": round(rng.uniform(900.0, 550_000.0), 2),
            "orderdate": orderdate,
            "orderpriority": rng.choice(_ORDER_PRIORITIES),
            "clerk": f"Clerk#{rng.randint(1, max(2, config.num_orders // 1000)):09d}",
            "shippriority": 0,
        }


def expected_orders_columns() -> list[str]:
    """The orders columns generated here, in order."""
    return [
        "orderkey", "custkey", "orderstatus", "totalprice",
        "orderdate", "orderpriority", "clerk", "shippriority",
    ]
