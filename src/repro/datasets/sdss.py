"""A synthetic Sloan Digital Sky Survey catalogue (Section 7.1.1).

The paper uses the SDSS ``PhotoObj`` fact table (446 attributes) and its
partial copy ``PhotoTag`` (69 attributes), 200 k rows scaled up 100x by
copying the (ra, dec) window.  The original extract is not included here, so
this generator synthesises a sky catalogue with the correlation structure the
experiments rely on:

* objects are emitted in *survey scan order*: the sky is tiled into fields
  and ``objID`` is assigned sequentially while sweeping the fields, so
  ``fieldID`` (and everything derived from the field: ``run``, ``camcol``,
  ``field``, ``mjd``, extinction) is strongly correlated with ``objID``;
* the fields are swept block-by-block, so neither ``ra`` nor ``dec`` alone
  pins down a small ``objID`` range, but the *pair* ``(ra, dec)`` does --
  the composite correlation of Experiment 5 / Table 6;
* photometric magnitudes (``psfmag_*``, ``petromag_*``, ``modelmag_*``, ``g``)
  share a latent per-object brightness and are strongly correlated with each
  other but not with the sky position;
* shape parameters (``petrorad_r``, ``rho``, ...) share a latent size;
* a handful of attributes are pure noise.

Together this yields the 39 numeric query attributes used by the Figure 2
benchmark, with a realistic mix of strong, family-wise and absent
correlations, plus the low-cardinality ``mode`` and ``type`` columns used by
the CM Advisor experiments (Tables 4 and 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator

#: Sky window covered by the synthetic survey (degrees).
RA_WINDOW = (180.0, 200.0)
DEC_WINDOW = (0.0, 10.0)


@dataclass(frozen=True)
class SDSSConfig:
    """Scaled-down knobs for the synthetic sky survey.

    The defaults generate ~20 k rows (1024 fields x 20 objects); the paper's
    desktop extract has 200 k rows.
    """

    fields_ra: int = 32
    fields_dec: int = 32
    objects_per_field: int = 20
    #: Fields are swept in blocks of this many fields per side, which is what
    #: makes (ra, dec) jointly -- but not individually -- determine objID.
    block_size: int = 8
    seed: int = 11

    def __post_init__(self) -> None:
        if min(self.fields_ra, self.fields_dec, self.objects_per_field) <= 0:
            raise ValueError("field grid and objects per field must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    @property
    def num_fields(self) -> int:
        return self.fields_ra * self.fields_dec

    @property
    def num_rows(self) -> int:
        return self.num_fields * self.objects_per_field


#: The 39 numeric attributes used as the Figure 2 query set, grouped by the
#: latent factor that drives them.
ATTRIBUTE_FAMILIES: dict[str, tuple[str, ...]] = {
    "position": (
        "ra", "dec", "fieldid", "run", "camcol", "field", "mjd",
        "extinction_u", "extinction_g", "extinction_r",
    ),
    "brightness": (
        "psfmag_u", "psfmag_g", "psfmag_r", "psfmag_i", "psfmag_z",
        "petromag_u", "petromag_g", "petromag_r", "petromag_i", "petromag_z",
        "modelmag_u", "modelmag_g", "modelmag_r", "modelmag_i", "modelmag_z",
        "g",
    ),
    "shape": ("petrorad_r", "petror50_r", "petror90_r", "isoa_r", "isob_r", "rho"),
    "uncorrelated": (
        "rowc", "colc", "skyversion", "nchild", "priority", "noise1", "noise2",
    ),
}


def photoobj_attributes() -> list[str]:
    """The 39 numeric query attributes of the Figure 2 benchmark, in order."""
    attributes: list[str] = []
    for family in ("position", "brightness", "shape", "uncorrelated"):
        attributes.extend(ATTRIBUTE_FAMILIES[family])
    return attributes


def _field_sweep_order(config: SDSSConfig) -> list[tuple[int, int]]:
    """(ra_index, dec_index) pairs in the order the survey sweeps the fields."""
    block = config.block_size
    fields = [
        (ra_idx, dec_idx)
        for ra_idx in range(config.fields_ra)
        for dec_idx in range(config.fields_dec)
    ]
    return sorted(
        fields,
        key=lambda rd: (rd[0] // block, rd[1] // block, rd[0] % block, rd[1] % block),
    )


def generate_photoobj(config: SDSSConfig | None = None) -> list[dict[str, Any]]:
    """Generate the PhotoObj/PhotoTag-style rows (materialised in memory)."""
    return list(iter_photoobj(config))


def iter_photoobj(config: SDSSConfig | None = None) -> Iterator[dict[str, Any]]:
    """Stream rows in survey scan order (``objID`` ascending)."""
    config = config or SDSSConfig()
    rng = random.Random(config.seed)
    ra_low, ra_high = RA_WINDOW
    dec_low, dec_high = DEC_WINDOW
    ra_step = (ra_high - ra_low) / config.fields_ra
    dec_step = (dec_high - dec_low) / config.fields_dec

    objid = 0
    for sweep_position, (ra_idx, dec_idx) in enumerate(_field_sweep_order(config)):
        fieldid = sweep_position  # field ids follow the sweep, like objID
        run = fieldid // 64
        camcol = (fieldid // 16) % 6 + 1
        field = fieldid % 64
        mjd = 51_000 + fieldid // 4
        field_extinction = rng.uniform(0.01, 0.25)
        for _ in range(config.objects_per_field):
            ra = ra_low + (ra_idx + rng.random()) * ra_step
            dec = dec_low + (dec_idx + rng.random()) * dec_step
            brightness = rng.gauss(20.0, 2.0)
            size = abs(rng.gauss(3.0, 1.5)) + 0.1

            def mag(offset: float, noise: float) -> float:
                return round(brightness + offset + rng.gauss(0.0, noise), 3)

            row = {
                "objid": objid,
                "ra": round(ra, 5),
                "dec": round(dec, 5),
                "fieldid": fieldid,
                "run": run,
                "camcol": camcol,
                "field": field,
                "mjd": mjd,
                "mode": 1 if rng.random() < 0.8 else rng.choice([2, 3]),
                "type": rng.choice([0, 3, 3, 6, 6, 6, 5]),
                "status": rng.getrandbits(12),
                "extinction_u": round(field_extinction * 1.6 + rng.gauss(0, 0.01), 4),
                "extinction_g": round(field_extinction * 1.2 + rng.gauss(0, 0.01), 4),
                "extinction_r": round(field_extinction + rng.gauss(0, 0.01), 4),
                "psfmag_u": mag(1.8, 0.3),
                "psfmag_g": mag(0.6, 0.3),
                "psfmag_r": mag(0.0, 0.3),
                "psfmag_i": mag(-0.3, 0.3),
                "psfmag_z": mag(-0.5, 0.3),
                "petromag_u": mag(1.7, 0.5),
                "petromag_g": mag(0.5, 0.5),
                "petromag_r": mag(-0.1, 0.5),
                "petromag_i": mag(-0.4, 0.5),
                "petromag_z": mag(-0.6, 0.5),
                "modelmag_u": mag(1.75, 0.4),
                "modelmag_g": mag(0.55, 0.4),
                "modelmag_r": mag(-0.05, 0.4),
                "modelmag_i": mag(-0.35, 0.4),
                "modelmag_z": mag(-0.55, 0.4),
                "g": mag(0.6, 0.2),
                "petrorad_r": round(size, 3),
                "petror50_r": round(size * 0.5 + rng.gauss(0, 0.1), 3),
                "petror90_r": round(size * 0.9 + rng.gauss(0, 0.2), 3),
                "isoa_r": round(size * 1.2 + rng.gauss(0, 0.3), 3),
                "isob_r": round(size * 0.8 + rng.gauss(0, 0.3), 3),
                "rho": round(size + rng.gauss(0, 0.2), 3),
                "rowc": round(rng.uniform(0, 1489), 2),
                "colc": round(rng.uniform(0, 2048), 2),
                "skyversion": rng.randrange(16),
                "nchild": rng.randrange(8),
                "priority": rng.randrange(1_000_000),
                "noise1": round(rng.uniform(0, 1000), 3),
                "noise2": rng.randrange(10_000),
            }
            yield row
            objid += 1


def expected_schema_columns() -> list[str]:
    """All generated columns, in row order."""
    sample = next(iter_photoobj(SDSSConfig(fields_ra=1, fields_dec=1, objects_per_field=1)))
    return list(sample)
