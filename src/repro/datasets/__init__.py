"""Synthetic data sets and workloads reproducing the paper's evaluation inputs.

The paper evaluates on three data sets; none of the original files ship with
this repository (the eBay category feed and the SDSS extract are not
redistributable), so each generator synthesises data with the same schema and
-- crucially -- the same correlation structure the experiments exploit:

* :mod:`repro.datasets.ebay` -- a product-catalog hierarchy where ``Price``
  soft-determines ``CATID`` and ``CAT1..CAT6`` roll it up;
* :mod:`repro.datasets.tpch` -- the TPC-H ``lineitem`` table, where
  ``shipdate``/``receiptdate`` and ``partkey``/``suppkey`` are correlated;
* :mod:`repro.datasets.sdss` -- a sky-survey catalogue whose object id is
  assigned in scan order, making ``fieldID`` and the photometric magnitudes
  correlated with it while ``(ra, dec)`` only determines it jointly.

Row counts are scaled down by default so that every experiment runs on a
laptop in seconds; each generator takes an explicit row count, and the
benchmarks honour the ``REPRO_SCALE`` environment variable.
"""

from repro.datasets.ebay import EbayConfig, generate_categories, generate_items
from repro.datasets.tpch import TPCHConfig, generate_lineitem
from repro.datasets.sdss import SDSSConfig, generate_photoobj, photoobj_attributes
from repro.datasets import workloads

__all__ = [
    "EbayConfig",
    "generate_categories",
    "generate_items",
    "TPCHConfig",
    "generate_lineitem",
    "SDSSConfig",
    "generate_photoobj",
    "photoobj_attributes",
    "workloads",
]
