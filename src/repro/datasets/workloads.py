"""Workload generators: the queries the paper's experiments run.

Each helper builds :class:`repro.engine.query.Query` objects (and, where the
CM Advisor is involved, the matching
:class:`repro.core.advisor.TrainingQuery`) for one of the paper's
experiments:

* 1 %-selectivity single-attribute selections over SDSS attributes
  (Section 3.4, Figure 2);
* ``shipdate IN (...)`` aggregations over TPC-H lineitem (Figure 3);
* ``Price BETWEEN ...`` aggregations over the eBay catalog
  (Experiments 1 and 2, Figures 6 and 7);
* the ``AVG(Price) WHERE CATx = ...`` selections of the mixed workload
  (Experiment 3, Figure 9) and of the cost-model validation (Figure 10);
* the SDSS SX6 and Q2-variant queries (Tables 3-6, Experiment 5).
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Sequence

from repro.core.advisor import TrainingQuery
from repro.core.composite import ValueConstraint
from repro.engine.predicates import Between, Equals, ExpressionPredicate, InSet
from repro.engine.query import Aggregate, Query


# ---------------------------------------------------------------------------
# SDSS: 1%-selectivity selections (Figure 2)
# ---------------------------------------------------------------------------

def one_percent_range(
    rows: Sequence[Mapping[str, Any]],
    attribute: str,
    *,
    selectivity: float = 0.01,
    seed: int = 0,
) -> tuple[Any, Any]:
    """An inclusive value range on ``attribute`` selecting ~``selectivity`` rows.

    The range is taken from the sorted values (a random window of the right
    width), so the actual selectivity matches the target regardless of skew.
    """
    if not rows:
        raise ValueError("need rows to derive a selectivity window")
    values = sorted(row[attribute] for row in rows)
    window = max(1, int(len(values) * selectivity))
    rng = random.Random(seed)
    start = rng.randrange(0, max(1, len(values) - window))
    return values[start], values[start + window - 1]


def sdss_selection_queries(
    rows: Sequence[Mapping[str, Any]],
    attributes: Sequence[str],
    *,
    table: str = "photoobj",
    selectivity: float = 0.01,
    seed: int = 0,
) -> list[Query]:
    """One ~1 %-selectivity selection per attribute (the Figure 2 query set)."""
    queries = []
    for position, attribute in enumerate(attributes):
        low, high = one_percent_range(
            rows, attribute, selectivity=selectivity, seed=seed + position
        )
        queries.append(
            Query.select(
                table,
                Between(attribute, low, high),
                aggregate=Aggregate.count(),
                name=f"q_{attribute}",
            )
        )
    return queries


# ---------------------------------------------------------------------------
# TPC-H: shipdate IN (...) (Figure 3)
# ---------------------------------------------------------------------------

def tpch_shipdate_query(
    rows: Sequence[Mapping[str, Any]],
    num_dates: int,
    *,
    table: str = "lineitem",
    seed: int = 0,
) -> Query:
    """``SELECT AVG(extendedprice * discount) WHERE shipdate IN (...)``."""
    rng = random.Random(seed)
    distinct_dates = sorted({row["shipdate"] for row in rows})
    chosen = rng.sample(distinct_dates, min(num_dates, len(distinct_dates)))
    return Query.select(
        table,
        InSet("shipdate", sorted(chosen)),
        aggregate=Aggregate.avg(lambda row: row["extendedprice"] * row["discount"]),
        name=f"shipdates_{num_dates}",
    )


# ---------------------------------------------------------------------------
# eBay: price ranges and category selections (Experiments 1-4)
# ---------------------------------------------------------------------------

def ebay_price_range_query(
    low: float,
    price_range: float,
    *,
    table: str = "items",
    count_distinct: str = "cat2",
) -> Query:
    """``SELECT COUNT(DISTINCT CATx) WHERE Price BETWEEN low AND low+range``."""
    return Query.select(
        table,
        Between("price", low, low + price_range),
        aggregate=Aggregate.count_distinct(count_distinct),
        name=f"price_{low}_{price_range}",
    )


def ebay_category_query(
    attribute: str, value: Any, *, table: str = "items"
) -> Query:
    """``SELECT AVG(Price) WHERE CATx = value`` (Experiments 3 and 4)."""
    return Query.select(
        table,
        Equals(attribute, value),
        aggregate=Aggregate.avg("price"),
        name=f"{attribute}_{value}",
    )


def ebay_mixed_workload(
    rows: Sequence[Mapping[str, Any]],
    *,
    num_rounds: int = 50,
    inserts_per_round: int = 10_000,
    selects_per_round: int = 100,
    category_attributes: Sequence[str] = ("cat1", "cat2", "cat3", "cat4", "cat5", "cat6"),
    seed: int = 0,
) -> list[tuple[str, Any]]:
    """The Experiment 3 mixed workload: INSERT batches interleaved with SELECTs.

    Returns a list of ``("insert", rows)`` and ``("select", Query)`` steps.
    The inserted rows are fresh items drawn from the same distribution as the
    table (new ItemIDs, existing categories).
    """
    rng = random.Random(seed)
    categories: dict[int, Mapping[str, Any]] = {}
    for row in rows:
        categories.setdefault(row["catid"], row)
    category_rows = list(categories.values())
    next_itemid = max(row["itemid"] for row in rows) + 1 if rows else 0

    steps: list[tuple[str, Any]] = []
    for _round in range(num_rounds):
        batch = []
        for _ in range(inserts_per_round):
            template = rng.choice(category_rows)
            batch.append(
                {
                    "catid": template["catid"],
                    **{f"cat{i}": template[f"cat{i}"] for i in range(1, 7)},
                    "itemid": next_itemid,
                    "price": max(0.0, rng.gauss(template["price"], 100.0)),
                }
            )
            next_itemid += 1
        steps.append(("insert", batch))
        for _ in range(selects_per_round):
            attribute = rng.choice(list(category_attributes))
            template = rng.choice(category_rows)
            steps.append(("select", ebay_category_query(attribute, template[attribute])))
    return steps


def ebay_cat_values_by_c_per_u(
    rows: Sequence[Mapping[str, Any]],
    attribute: str = "cat5",
    *,
    clustered: str = "catid",
    targets: Sequence[int] = (4, 15, 24, 62, 145),
) -> list[tuple[Any, int]]:
    """Values of ``attribute`` whose c_per_u is closest to each target.

    Reproduces the Experiment 4 selection of CAT5 values with c_per_u ranging
    from 4 to 145 (Figure 10).  Returns ``(value, actual_c_per_u)`` pairs.
    """
    co_occurring: dict[Any, set[Any]] = {}
    for row in rows:
        co_occurring.setdefault(row[attribute], set()).add(row[clustered])
    available = sorted(co_occurring.items(), key=lambda item: len(item[1]))
    chosen: list[tuple[Any, int]] = []
    used: set[Any] = set()
    for target in targets:
        best = min(
            (item for item in available if item[0] not in used),
            key=lambda item: abs(len(item[1]) - target),
            default=None,
        )
        if best is None:
            break
        chosen.append((best[0], len(best[1])))
        used.add(best[0])
    return chosen


# ---------------------------------------------------------------------------
# Concurrent serving: interleaved readers and snapshot-isolated writers
# ---------------------------------------------------------------------------

def concurrent_mixed_workload(
    rows: Sequence[Mapping[str, Any]],
    *,
    num_readers: int = 8,
    num_writer_batches: int = 4,
    rows_per_writer_batch: int = 50,
    table: str = "items",
    seed: int = 0,
) -> list[tuple[str, Any]]:
    """A reader/writer mix for the concurrent-serving benchmark and tests.

    Returns interleaved ``("read", Query)`` and ``("write", rows)`` steps:
    the readers are full-range *streaming* scans (every one sweeps the
    whole table, so buffer-pool sharing between them is maximal, and they
    yield batch by batch -- an aggregate would block and finish in one
    scheduling quantum), the writers are batches of fresh rows to insert
    under a transaction.  The driver decides the concurrency semantics --
    the benchmark harness submits the reads to a
    :class:`~repro.engine.scheduler.QueryScheduler` and runs each write
    batch as one snapshot-isolated transaction between scheduling quanta,
    then checks every reader's matched-row count equals the live rows at
    the snapshot it was admitted under.
    """
    rng = random.Random(seed)
    prices = sorted(row["price"] for row in rows)
    next_itemid = max(row["itemid"] for row in rows) + 1 if rows else 0
    steps: list[tuple[str, Any]] = []
    writer_slots = set(
        rng.sample(range(1, num_readers + num_writer_batches), num_writer_batches)
        if num_writer_batches
        else []
    )
    readers_emitted = 0
    for position in range(num_readers + num_writer_batches):
        if position in writer_slots:
            batch = []
            for _ in range(rows_per_writer_batch):
                batch.append(
                    {
                        "itemid": next_itemid,
                        "catid": rng.randrange(0, 200),
                        "price": rng.uniform(prices[0], prices[-1]),
                    }
                )
                next_itemid += 1
            steps.append(("write", batch))
        else:
            low = prices[0]
            high = prices[-1]
            steps.append(
                (
                    "read",
                    Query.select(
                        table,
                        Between("price", low, high),
                        name=f"reader_{readers_emitted}",
                    ),
                )
            )
            readers_emitted += 1
    return steps


# ---------------------------------------------------------------------------
# SDSS: SX6 and the Q2 variant (Tables 3-6, Experiment 5)
# ---------------------------------------------------------------------------

def sdss_sx6_query(
    field_values: Sequence[int], *, table: str = "photoobj", psfmag_g_limit: float = 20.0
) -> Query:
    """The SX6-style query: fieldID IN (...) AND mode=1 AND type=6 AND psfmag_g < limit."""
    return Query.select(
        table,
        InSet("fieldid", list(field_values)),
        Equals("mode", 1),
        Equals("type", 6),
        Between("psfmag_g", None, psfmag_g_limit),
        aggregate=Aggregate.count(),
        name="sx6",
    )


def sdss_sx6_training_query(n_lookups: int = 2) -> TrainingQuery:
    """The SX6 predicate set as CM Advisor input (Tables 4 and 5)."""
    return TrainingQuery(
        constraints={
            "fieldid": ValueConstraint(),
            "mode": ValueConstraint.equals(1),
            "type": ValueConstraint.equals(6),
            "psfmag_g": ValueConstraint(high=20.0),
        },
        n_lookups=n_lookups,
        name="SX6",
    )


def sdss_q2_query(
    ra_range: tuple[float, float] = (193.117, 194.517),
    dec_range: tuple[float, float] = (1.411, 1.555),
    *,
    table: str = "photoobj",
    surface_range: tuple[float, float] = (23.0, 25.0),
) -> Query:
    """The Experiment 5 query: a sky region restricted to blue, bright surfaces.

    ``g + rho BETWEEN 23 AND 25`` cannot drive an index, so it is expressed as
    a residual expression predicate, exactly as in the paper's plan.
    """
    low, high = surface_range
    return Query.select(
        table,
        Between("ra", *ra_range),
        Between("dec", *dec_range),
        ExpressionPredicate("g + rho", lambda row: low <= row["g"] + row["rho"] <= high),
        aggregate=Aggregate.count(),
        name="q2_variant",
    )


def sdss_q2_training_query(
    ra_range: tuple[float, float] = (193.117, 194.517),
    dec_range: tuple[float, float] = (1.411, 1.555),
) -> TrainingQuery:
    """The Q2-variant predicate set as CM Advisor input (Experiment 5)."""
    return TrainingQuery(
        constraints={
            "ra": ValueConstraint.between(*ra_range),
            "dec": ValueConstraint.between(*dec_range),
        },
        n_lookups=1,
        name="Q2-variant",
    )


def training_queries_from_queries(queries: Sequence[Query]) -> list[TrainingQuery]:
    """Convert executable queries into CM Advisor training queries."""
    training = []
    for query in queries:
        constraints = query.predicates.constraints()
        n_lookups = 1
        for predicate in query.predicates.indexable_predicates():
            values = predicate.lookup_values
            if values is not None:
                n_lookups = max(n_lookups, len(values))
        training.append(
            TrainingQuery(constraints=constraints, n_lookups=n_lookups, name=query.name)
        )
    return training
