"""The eBay-style hierarchical product catalog (Section 7.1.1).

The paper's data set is built from eBay's public category tree: 24 000
categories arranged in a hierarchy of up to 6 levels, populated with 500-3000
items per category (43 M rows).  Prices are generated per category: the
category's median price is uniform in [$0, $1M] and individual prices are
Gaussian around the median with a $100 standard deviation, so ``Price``
strongly (but not exactly) soft-determines ``CATID``.

Schema::

    ITEMS(CATID, CAT1, CAT2, CAT3, CAT4, CAT5, CAT6, ItemID, Price)

The original category feed is not redistributable, so this generator builds a
synthetic hierarchy with the same statistical shape: an *irregular* tree
(random fan-out, random depth up to 6) over a contiguous CATID space, which
gives the CAT1..CAT6 rollup columns a realistic spread of soft-FD strengths
with CATID -- exactly what Experiment 4 (Figure 10) relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator

#: Example top-level departments, in the spirit of the eBay hierarchy.
_TOP_LEVEL_NAMES = (
    "antiques", "art", "books", "business", "cameras", "clothing",
    "coins", "collectibles", "computers", "crafts", "dolls", "electronics",
    "garden", "health", "jewelry", "motors", "music", "pottery",
    "sports", "stamps", "tickets", "toys", "travel", "video-games",
)


@dataclass(frozen=True)
class EbayConfig:
    """Scaled-down knobs for the eBay catalog generator.

    The paper's full scale is ``num_categories=24_000`` and
    ``items_per_category=(500, 3000)``; the defaults here generate ~120 k rows
    so that the maintenance experiments run in seconds.
    """

    num_categories: int = 600
    max_depth: int = 6
    items_per_category: tuple[int, int] = (100, 300)
    price_median_range: tuple[float, float] = (0.0, 1_000_000.0)
    price_stddev: float = 100.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_categories <= 0:
            raise ValueError("num_categories must be positive")
        if not 1 <= self.max_depth <= 6:
            raise ValueError("max_depth must be between 1 and 6")
        low, high = self.items_per_category
        if low <= 0 or high < low:
            raise ValueError("items_per_category must be a positive (low, high) range")


@dataclass(frozen=True)
class Category:
    """One leaf category: its id, full hierarchy path and price distribution."""

    catid: int
    path: tuple[str, ...]
    median_price: float

    def path_levels(self) -> dict[str, str]:
        """CAT1..CAT6 columns (empty string beyond the category's depth)."""
        levels = {}
        for level in range(6):
            levels[f"cat{level + 1}"] = self.path[level] if level < len(self.path) else ""
        return levels


def _build_hierarchy(config: EbayConfig, rng: random.Random) -> dict[int, list[str]]:
    """Split the CATID space into an irregular tree of sub-category labels."""
    paths: dict[int, list[str]] = {catid: [] for catid in range(config.num_categories)}

    def split(lo: int, hi: int, level: int) -> None:
        if level == 0:
            label = _TOP_LEVEL_NAMES[lo % len(_TOP_LEVEL_NAMES)]
        else:
            label = f"{paths[lo][0]}/L{level}-{lo}"
        for catid in range(lo, hi):
            paths[catid].append(label)
        if level + 1 >= config.max_depth or hi - lo <= 1:
            return
        children = rng.randint(2, 5)
        interior = range(lo + 1, hi)
        cuts = sorted(rng.sample(interior, min(children - 1, len(interior))))
        bounds = [lo] + cuts + [hi]
        for child_lo, child_hi in zip(bounds[:-1], bounds[1:]):
            # Some subtrees stop early, giving the tree its uneven depth.
            if level >= 1 and rng.random() < 0.15:
                continue
            split(child_lo, child_hi, level + 1)

    # Top level: carve the CATID space into one range per department.
    departments = min(len(_TOP_LEVEL_NAMES), max(1, config.num_categories // 25))
    step = max(1, config.num_categories // departments)
    start = 0
    while start < config.num_categories:
        end = min(config.num_categories, start + step)
        split(start, end, 0)
        start = end
    return paths


def generate_categories(config: EbayConfig | None = None) -> list[Category]:
    """Generate the (synthetic) category hierarchy."""
    config = config or EbayConfig()
    rng = random.Random(config.seed)
    paths = _build_hierarchy(config, rng)
    categories = []
    for catid in range(config.num_categories):
        median = rng.uniform(*config.price_median_range)
        categories.append(
            Category(catid=catid, path=tuple(paths[catid]), median_price=median)
        )
    return categories


def generate_items(
    config: EbayConfig | None = None, categories: list[Category] | None = None
) -> list[dict[str, Any]]:
    """Generate the ITEMS table rows (materialised in memory)."""
    return list(iter_items(config, categories))


def iter_items(
    config: EbayConfig | None = None, categories: list[Category] | None = None
) -> Iterator[dict[str, Any]]:
    """Stream ITEMS rows, category by category."""
    config = config or EbayConfig()
    categories = categories if categories is not None else generate_categories(config)
    rng = random.Random(config.seed + 1)
    item_id = 0
    for category in categories:
        count = rng.randint(*config.items_per_category)
        levels = category.path_levels()
        for _ in range(count):
            price = rng.gauss(category.median_price, config.price_stddev)
            price = max(0.0, price)
            yield {
                "catid": category.catid,
                **levels,
                "itemid": item_id,
                "price": round(price, 2),
            }
            item_id += 1


def expected_schema_columns() -> list[str]:
    """The ITEMS schema in column order (for DDL helpers and tests)."""
    return ["catid", "cat1", "cat2", "cat3", "cat4", "cat5", "cat6", "itemid", "price"]
