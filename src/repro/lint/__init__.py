"""``repro-lint``: AST-based static checks for the engine's invariants.

Seven PRs of growth accumulated contracts that runtime tests can only probe
dynamically -- the planner's zero-heap-reads rule, the bit-identical
row/batch parity accounting, replayable seeded-only randomness, cooperative
scheduler generator safety, ``__slots__`` on hot-path containers.  This
package machine-checks them *statically*, before any test runs: every rule
is a pure function over a module's :mod:`ast` tree, registered with the
rule registry and driven by :class:`LintEngine` over the ``src/repro``
source tree.

Layout:

``violations``
    :class:`Violation` -- one finding: rule id, file, line, column, message.

``registry``
    :class:`Rule` base class plus the global rule registry
    (:func:`register_rule`, :func:`all_rules`).

``engine``
    :class:`ModuleSource` (parsed module + suppression table) and
    :class:`LintEngine` (walks files, applies rules, filters
    ``# lint: disable=RULE`` suppressions into a :class:`LintReport`).

``reporters``
    Text and JSON renderings of a report (the JSON form is the CI
    artifact).

``rules``
    The engine-specific checkers; importing :mod:`repro.lint.rules`
    populates the registry.

The command-line entry point is ``scripts/lint.py``; the test fixture
corpus under ``tests/lint/`` pins each rule's exact findings, and
``tests/lint/test_repo_clean.py`` is the dogfooding gate: the repository
itself must lint clean.
"""

from repro.lint.engine import LintEngine, LintReport, ModuleSource
from repro.lint.registry import Rule, all_rules, register_rule
from repro.lint.reporters import render_json, render_text
from repro.lint.violations import Violation

# Importing the rules package registers every built-in checker.
from repro.lint import rules as _rules  # noqa: F401  # lint: disable=REPRO107

__all__ = [
    "LintEngine",
    "LintReport",
    "ModuleSource",
    "Rule",
    "Violation",
    "all_rules",
    "register_rule",
    "render_json",
    "render_text",
]
