"""Rule base class and the global rule registry.

A rule is a small visitor over one module's AST.  Rules self-register via
the :func:`register_rule` class decorator, so adding a checker is one new
module under :mod:`repro.lint.rules` -- the engine, the CLI and the test
corpus all pick it up from :func:`all_rules`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import ModuleSource
    from repro.lint.violations import Violation


class Rule:
    """One invariant checker.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to the files whose contract it
    guards (paths are repository-relative, ``/``-separated).
    """

    #: Stable machine id (``REPRO101`` ...), used in reports and in
    #: ``# lint: disable=`` comments.
    rule_id: str = ""
    #: Human-readable slug (``planner-purity``), accepted by ``disable=``
    #: comments and ``--select``/``--ignore`` interchangeably with the id.
    name: str = ""
    #: One-line statement of the contract the rule guards.
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (repo-relative, posix) is in this rule's scope."""
        return True

    def check(self, module: "ModuleSource") -> Iterator["Violation"]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def violation(
        self, module: "ModuleSource", line: int, column: int, message: str
    ) -> "Violation":
        from repro.lint.violations import Violation

        return Violation(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=module.relpath,
            line=line,
            column=column,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}

RuleType = TypeVar("RuleType", bound=type[Rule])


def register_rule(rule_class: RuleType) -> RuleType:
    """Class decorator adding a rule to the global registry.

    Ids must be unique; re-registering the same class is a no-op so that
    re-imports (pytest, interactive use) stay harmless.
    """
    rule_id = rule_class.rule_id
    if not rule_id or not rule_class.name:
        raise ValueError(f"{rule_class.__name__} must set rule_id and name")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """A fresh instance of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def resolve_rule_ids(tokens: Iterable[str]) -> set[str]:
    """Map ``--select``/``--ignore`` tokens (ids or names) to rule ids."""
    by_name = {cls.name: rule_id for rule_id, cls in _REGISTRY.items()}
    resolved: set[str] = set()
    for token in tokens:
        if token in _REGISTRY:
            resolved.add(token)
        elif token in by_name:
            resolved.add(by_name[token])
        else:
            known = ", ".join(sorted(_REGISTRY) + sorted(by_name))
            raise ValueError(f"unknown rule {token!r} (known: {known})")
    return resolved
