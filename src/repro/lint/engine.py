"""The lint driver: parse modules, run rules, filter suppressions.

Suppression grammar (mirrors the familiar ``noqa`` shape, but per rule --
a blanket "disable everything here" is deliberately not offered):

``# lint: disable=REPRO105`` (or ``disable=slots``)
    Suppresses that rule on the *line carrying the comment*.  Several
    rules separate with commas: ``# lint: disable=REPRO103,REPRO104``.

``# lint: disable-file=REPRO107``
    Suppresses the rule for the whole module (any line of the file).

Every suppression is per-rule by id or by name; an unknown token in a
disable comment is itself reported (``REPRO100``), so typos cannot
silently turn a gate off.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.registry import Rule, all_rules
from repro.lint.violations import Violation

#: Matches the ``disable=`` / ``disable-file=`` suppression comments.
_DISABLE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(slots=True)
class Suppressions:
    """Parsed ``# lint: disable`` comments of one module."""

    #: line number -> rule tokens disabled on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule tokens disabled for the whole file.
    whole_file: set[str] = field(default_factory=set)
    #: (line, column, token) of disable comments (for unknown-token checks).
    tokens: list[tuple[int, int, str]] = field(default_factory=list)

    def is_suppressed(self, violation: Violation) -> bool:
        wanted = {violation.rule_id, violation.rule_name}
        if wanted & self.whole_file:
            return True
        return bool(wanted & self.by_line.get(violation.line, set()))


def parse_suppressions(text: str) -> Suppressions:
    """Collect disable comments via the tokenizer.

    Tokenizing (rather than regex over raw lines) keeps the grammar out of
    string literals -- a docstring *showing* ``# lint: disable=...`` is not
    a suppression.
    """
    suppressions = Suppressions()
    try:
        comments = [
            (token.start[0], token.start[1] + 1, token.string)
            for token in tokenize.generate_tokens(io.StringIO(text).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions  # the parse-error path reports the real problem
    for lineno, column, comment in comments:
        match = _DISABLE.search(comment)
        if match is None:
            continue
        tokens = {token.strip() for token in match.group("rules").split(",")}
        tokens.discard("")
        for token in tokens:
            suppressions.tokens.append((lineno, column, token))
        if match.group("scope") == "disable-file":
            suppressions.whole_file |= tokens
        else:
            suppressions.by_line.setdefault(lineno, set()).update(tokens)
    return suppressions


class ModuleSource:
    """One parsed module handed to every rule.

    ``relpath`` is the repository-relative posix path rules match their
    scope against; ``tree`` the parsed AST; ``lines`` the raw source lines
    (1-indexed via ``line(n)``) for the few checks that need the text.
    """

    __slots__ = ("path", "relpath", "text", "lines", "tree", "suppressions")

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.suppressions = parse_suppressions(text)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass(slots=True)
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation]
    files_checked: int
    rules_run: list[str]
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def _known_tokens(rules: Sequence[Rule]) -> set[str]:
    known: set[str] = set()
    for rule in rules:
        known.add(rule.rule_id)
        known.add(rule.name)
    return known


class LintEngine:
    """Runs a set of rules over a set of files.

    ``root`` anchors the repository-relative paths rules scope on; rules
    default to the full registry.  Unparseable files surface as ``REPRO000``
    violations rather than crashing the run, and unknown tokens in disable
    comments surface as ``REPRO100`` -- both are ordinary findings, so the
    exit code catches them.
    """

    def __init__(self, root: Path, rules: Sequence[Rule] | None = None) -> None:
        self.root = root.resolve()
        self.rules = list(rules) if rules is not None else all_rules()

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def iter_files(self, targets: Iterable[Path]) -> list[Path]:
        """Expand directories to their ``*.py`` files, sorted, deduplicated."""
        files: dict[Path, None] = {}
        for target in targets:
            if target.is_dir():
                for path in sorted(target.rglob("*.py")):
                    files[path] = None
            else:
                files[target] = None
        return list(files)

    def run(self, targets: Iterable[Path]) -> LintReport:
        violations: list[Violation] = []
        suppressed = 0
        files = self.iter_files(targets)
        known = _known_tokens(self.rules)
        for path in files:
            relpath = self._relpath(path)
            try:
                module = ModuleSource(path, relpath, path.read_text())
            except (SyntaxError, UnicodeDecodeError, OSError) as error:
                line = getattr(error, "lineno", None) or 1
                violations.append(
                    Violation(
                        rule_id="REPRO000",
                        rule_name="parse-error",
                        path=relpath,
                        line=line,
                        column=1,
                        message=f"could not parse module: {error}",
                    )
                )
                continue
            for lineno, column, token in module.suppressions.tokens:
                if token not in known:
                    violations.append(
                        Violation(
                            rule_id="REPRO100",
                            rule_name="unknown-suppression",
                            path=relpath,
                            line=lineno,
                            column=column,
                            message=f"disable comment names unknown rule {token!r}",
                        )
                    )
            for rule in self.rules:
                if not rule.applies_to(relpath):
                    continue
                for violation in rule.check(module):
                    if module.suppressions.is_suppressed(violation):
                        suppressed += 1
                    else:
                        violations.append(violation)
        violations.sort(key=lambda violation: violation.sort_key)
        return LintReport(
            violations=violations,
            files_checked=len(files),
            rules_run=[rule.rule_id for rule in self.rules],
            suppressed=suppressed,
        )
