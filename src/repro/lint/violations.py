"""The unit of lint output: one violation of one rule at one location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule fired at a source location.

    ``rule_id`` is the stable machine identifier (``REPRO101`` ...);
    ``rule_name`` the human-readable slug (``planner-purity``).  ``path``
    is repository-relative so reports are machine-independent (the JSON
    report is uploaded as a CI artifact and diffed across runs).
    """

    rule_id: str
    rule_name: str
    path: str
    line: int
    column: int
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id}[{self.rule_name}] {self.message}"
        )
