"""Render a :class:`~repro.lint.engine.LintReport` as text or JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [violation.render() for violation in report.violations]
    noun = "violation" if len(report.violations) == 1 else "violations"
    summary = (
        f"{len(report.violations)} {noun} "
        f"({report.files_checked} files, {len(report.rules_run)} rules"
        + (f", {report.suppressed} suppressed" if report.suppressed else "")
        + ")"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules_run": report.rules_run,
        "suppressed": report.suppressed,
        "violations": [violation.to_dict() for violation in report.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
