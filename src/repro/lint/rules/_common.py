"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local alias -> fully qualified name, from the module's imports.

    ``import time`` maps ``time -> time``; ``import numpy as np`` maps
    ``np -> numpy``; ``from time import sleep as s`` maps
    ``s -> time.sleep``.  Only top-level and nested plain imports are
    considered (relative imports carry no useful qualified name here).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def qualified_call_name(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """The fully qualified name a call resolves to, via the import table.

    ``time.time()`` resolves to ``time.time`` when ``time`` was imported;
    ``s()`` resolves to ``time.sleep`` under ``from time import sleep as
    s``.  Calls on local objects (``self.x()``, ``rng.random()``) resolve
    to ``None`` -- their root name is not an imported module.
    """
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    qualified_root = aliases.get(root)
    if qualified_root is None:
        return None
    return f"{qualified_root}.{rest}" if rest else qualified_root


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_generator(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``function`` contains a yield of its own (not in a nested def)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested defs own their yields; walk visits them later
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def walk_own_nodes(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Nodes of ``function``'s own body, excluding nested def/lambda bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested defs are visited on their own
        stack.extend(ast.iter_child_nodes(node))


def in_directory(relpath: str, directory: str) -> bool:
    """Whether ``relpath`` has ``directory`` as one of its path segments."""
    return directory in relpath.split("/")[:-1]


def terminal_attribute(node: ast.AST) -> str | None:
    """The final identifier of a Name/Attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
