"""REPRO108: partition fan-out code never touches heap pages directly.

The bit-identical parity contract between single-heap, partitioned-serial
and partitioned-parallel execution (``tests/engine/test_fuzz_parity.py``)
holds because every physical page a partitioned plan reads flows through
the same two shared scan kernels as an unpartitioned plan
(``_sweep_pages`` / ``_sweep_pages_batched`` in ``engine/access.py``,
pinned by REPRO102).  The partition layer itself -- partition routing,
pruning, the exchange fan-out and the process-parallel worker protocol --
must therefore stay *accounting-free*: it may hand devices and child scan
nodes around, but it may not pull heap pages or poke the buffer pool
itself, or partitioned counters would drift from the single-heap baseline
in ways the differential fuzzer can only detect after the fact.

This rule extends REPRO102 inside the partition fan-out modules
(``engine/partition.py``, ``engine/parallel.py`` and the exchange
operators in ``engine/exchange.py`` -- the k-way merge, broadcast and
repartition nodes move rows between partition subtrees but never read
pages) with the *full* heap read surface -- including
``fetch``/``scan``/``scan_pages``, which maintenance code elsewhere may
use -- plus direct buffer-pool page access (``access``/``access_run``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import terminal_attribute, walk_functions, walk_own_nodes
from repro.lint.violations import Violation

#: Modules implementing the partition fan-out (routing, pruning, exchange
#: operators, process-parallel workers).  They orchestrate scans but never
#: perform them.
FANOUT_MODULES = (
    "engine/partition.py",
    "engine/parallel.py",
    "engine/exchange.py",
)

#: Every page-pulling heap API, a superset of REPRO102's ``PAGE_READS``.
HEAP_READS = frozenset(
    {"read_page", "read_pages", "read_page_run", "fetch", "scan", "scan_pages"}
)

#: Direct buffer-pool page access -- physical I/O accounting lives behind
#: the scan kernels, never in fan-out code.
POOL_ACCESS = frozenset({"access", "access_run"})


@register_rule
class PartitionAccountingRule(Rule):
    rule_id = "REPRO108"
    name = "partition-accounting"
    description = (
        "partition fan-out modules must not read heap pages or touch the "
        "buffer pool directly; all physical access goes through the shared "
        "scan kernels"
    )

    def applies_to(self, path: str) -> bool:
        return path.endswith(FANOUT_MODULES)

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for function in walk_functions(module.tree):
            for node in walk_own_nodes(function):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                name = terminal_attribute(node.func)
                if name in HEAP_READS:
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f".{name}() in partition fan-out code -- heap pages "
                        "are read only by the shared scan kernels in "
                        "engine/access.py so partitioned counters stay "
                        "bit-identical to the single-heap plan",
                    )
                elif name in POOL_ACCESS:
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f".{name}() in partition fan-out code -- buffer-pool "
                        "page access belongs to the scan kernels, not the "
                        "exchange/worker layer",
                    )
