"""REPRO107: no unused imports.

Dead imports in this codebase have twice masked real coupling (a stray
``Predicate`` import in ``engine/access.py`` suggested the scan layer
still depended on the old predicate protocol).  The check resolves names
used anywhere in the module -- including inside *quoted* annotations,
which stay string constants even under ``from __future__ import
annotations`` (e.g. ``"Database"`` on a parameter whose class is only
imported under ``TYPE_CHECKING``).

``__init__.py`` files are exempt: re-exports are their purpose (mark
intent with ``__all__`` or a trailing ``# lint: disable=REPRO107``
elsewhere).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.violations import Violation


def _names_in_expression(text: str) -> set[str]:
    """Identifiers appearing in a quoted annotation like ``"list[RID]"``."""
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError:
        return set()
    return {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Quoted annotations ("Database", "list[RID]") keep names alive.
            if len(node.value) < 200 and node.value.isprintable():
                used |= _names_in_expression(node.value)
    return used


def _exported_names(tree: ast.Module) -> set[str]:
    """Names listed in a module-level ``__all__``."""
    exported: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant):
                            if isinstance(element.value, str):
                                exported.add(element.value)
    return exported


@register_rule
class UnusedImportRule(Rule):
    rule_id = "REPRO107"
    name = "unused-import"
    description = "imported names must be used (quoted annotations count)"

    def applies_to(self, path: str) -> bool:
        return not path.endswith("__init__.py")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        used = _used_names(module.tree)
        exported = _exported_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if local not in used and local not in exported:
                        yield self.violation(
                            module,
                            node.lineno,
                            node.col_offset + 1,
                            f"import {alias.name!r} is unused",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue  # compiler directive, never "used" by name
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    if local not in used and local not in exported:
                        yield self.violation(
                            module,
                            node.lineno,
                            node.col_offset + 1,
                            f"imported name {local!r} is unused",
                        )
