"""Importing this package registers every built-in rule."""

from repro.lint.rules import (  # noqa: F401
    determinism,
    imports,
    parity_accounting,
    partition_accounting,
    planner_purity,
    scheduler_safety,
    slots,
    typed_defs,
)
