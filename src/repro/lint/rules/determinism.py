"""REPRO103: the engine must be replayable from a seed.

The differential fuzzer and the anomaly suites replay whole workloads
from a single integer seed; one ambient clock read or module-level
``random.random()`` call makes a failure unreproducible.  The rule bans:

* wall-clock reads (``time.time``, ``datetime.now`` ...) everywhere in
  ``src/repro`` -- the benchmark harness under ``bench/`` is exempt from
  the *timer* subset (``perf_counter``/``strftime``/``gmtime``), because
  measuring wall-clock time is its entire point;
* module-level randomness (``random.random()``, ``random.shuffle`` ...)
  and ``from random import`` of anything but ``Random``.  Seeded
  ``random.Random(seed)`` instances are the sanctioned source.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import import_aliases, qualified_call_name
from repro.lint.violations import Violation

#: Ambient clock reads banned everywhere (replay would diverge).
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.localtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Timer/formatting calls allowed only in the wall-clock benchmark harness.
TIMER_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.strftime",
        "time.gmtime",
    }
)

#: The benchmark package allowed to read timers.
BENCH_PREFIX = "bench/"


@register_rule
class DeterminismRule(Rule):
    rule_id = "REPRO103"
    name = "determinism"
    description = (
        "no ambient clocks or module-level random in the engine; randomness "
        "must come from seeded random.Random instances"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        aliases = import_aliases(module.tree)
        in_bench = BENCH_PREFIX in module.relpath
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                qualified = qualified_call_name(node, aliases)
                if qualified is None:
                    continue
                if qualified in CLOCK_CALLS:
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f"ambient clock read {qualified}() breaks "
                        "replay-from-seed; thread explicit timestamps instead",
                    )
                elif qualified in TIMER_CALLS and not in_bench:
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f"{qualified}() outside the bench/ harness; engine "
                        "code must not observe wall-clock time",
                    )
                elif (
                    qualified.startswith("random.")
                    and qualified != "random.Random"
                ):
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f"module-level {qualified}() shares hidden global "
                        "state; use a seeded random.Random instance",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    for alias in node.names:
                        if alias.name != "Random":
                            yield self.violation(
                                module,
                                node.lineno,
                                node.col_offset + 1,
                                f"'from random import {alias.name}' pulls the "
                                "shared global generator; import Random and "
                                "seed an instance",
                            )
