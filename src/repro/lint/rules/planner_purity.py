"""REPRO101: the planner must never touch the heap.

Plan enumeration and costing work exclusively off sampled statistics
(:class:`~repro.core.statistics.IncrementalTableStatistics`); a single heap
or buffer-pool read inside ``candidate_plans``/``choose`` would silently
turn every EXPLAIN into physical I/O.  The dynamic twin of this rule is
``benchmarks/test_planner_overhead.py`` (``HeapFile.logical_page_reads``
must stay zero across plan enumeration); this checker rejects the code
shapes that could ever charge a page before that test runs:

* importing any ``repro.storage`` module into a costing/planning module
  (``if TYPE_CHECKING:`` imports are exempt -- annotations never read a
  page);
* calling a storage read API (``read_page``, ``read_pages``, ``access``,
  ``fetch``, ``live_rows``, ...) or executing a row source
  (``iter_rows``/``iter_batches``/``execute``) from one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import terminal_attribute
from repro.lint.violations import Violation

#: Modules bound by the purity contract (planning and costing).
PLANNER_MODULES = ("core/cost.py", "core/statistics.py", "engine/planner.py")

#: Attribute calls that read (or could read) heap/buffer pages, plus the
#: execution entry points that would drive such reads.
READ_APIS = frozenset(
    {
        "read_page",
        "read_pages",
        "read_page_run",
        "access",
        "access_run",
        "fetch",
        "scan",
        "scan_pages",
        "all_rows",
        "live_rows",
        "iter_rows",
        "iter_batches",
        "execute",
    }
)


@register_rule
class PlannerPurityRule(Rule):
    rule_id = "REPRO101"
    name = "planner-purity"
    description = (
        "planning/costing modules may not import storage or call heap/buffer "
        "read APIs (static twin of benchmarks/test_planner_overhead.py)"
    )

    def applies_to(self, path: str) -> bool:
        return path.endswith(PLANNER_MODULES)

    @staticmethod
    def _type_checking_imports(tree: ast.Module) -> set[ast.AST]:
        """Import nodes living under an ``if TYPE_CHECKING:`` guard."""
        guarded: set[ast.AST] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            if terminal_attribute(node.test) != "TYPE_CHECKING":
                continue
            for child in node.body:
                for sub in ast.walk(child):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        guarded.add(sub)
        return guarded

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        guarded = self._type_checking_imports(module.tree)
        for node in ast.walk(module.tree):
            if node in guarded:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.storage"):
                        yield self.violation(
                            module,
                            node.lineno,
                            node.col_offset + 1,
                            f"planner module imports storage module {alias.name!r}",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").startswith("repro.storage"):
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f"planner module imports from storage module {node.module!r}",
                    )
            elif isinstance(node, ast.Call):
                name = terminal_attribute(node.func)
                if isinstance(node.func, ast.Attribute) and name in READ_APIS:
                    yield self.violation(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        f"planner module calls read API .{name}() -- planning "
                        "must work from sampled statistics only",
                    )
