"""REPRO106: every function signature in ``src/repro`` is fully annotated.

The container this repo develops in cannot install ``mypy``; CI runs
``mypy --strict src/repro``, but the local gate that keeps the tree
strict-clean between pushes is this rule: every parameter and every
return type annotated, no exceptions beyond the conventional ones
(``self``/``cls``, ``*args``/``**kwargs`` still need annotations, and
``__init__``/generators are not special-cased -- strict mypy requires
them too).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import walk_functions
from repro.lint.violations import Violation

#: Implicit first parameters that need no annotation.
IMPLICIT_FIRST = frozenset({"self", "cls"})


@register_rule
class TypedDefsRule(Rule):
    rule_id = "REPRO106"
    name = "typed-defs"
    description = (
        "every function must annotate all parameters and its return type "
        "(local proxy for mypy --strict)"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        methods: set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for statement in node.body:
                    if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.add(statement)
        for function in walk_functions(module.tree):
            args = function.args
            ordered = [*args.posonlyargs, *args.args]
            skip_first = bool(ordered) and function in methods
            for index, arg in enumerate(ordered):
                if skip_first and index == 0 and arg.arg in IMPLICIT_FIRST:
                    continue
                if arg.annotation is None:
                    yield self.violation(
                        module,
                        arg.lineno,
                        arg.col_offset + 1,
                        f"parameter {arg.arg!r} of {function.name!r} lacks a "
                        "type annotation",
                    )
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    yield self.violation(
                        module,
                        arg.lineno,
                        arg.col_offset + 1,
                        f"parameter {arg.arg!r} of {function.name!r} lacks a "
                        "type annotation",
                    )
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    yield self.violation(
                        module,
                        arg.lineno,
                        arg.col_offset + 1,
                        f"parameter {arg.arg!r} of {function.name!r} lacks a "
                        "type annotation",
                    )
            if function.returns is None:
                yield self.violation(
                    module,
                    function.lineno,
                    function.col_offset + 1,
                    f"function {function.name!r} lacks a return type "
                    "annotation",
                )
