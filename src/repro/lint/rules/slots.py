"""REPRO105: hot-path containers declare ``__slots__``.

Millions of :class:`RID`/page/plan-node instances live at once during a
scan; per-instance ``__dict__`` turned a 48-byte RID into 352 bytes
before PR 5 slotted it.  Classes in the storage layer, the plan tree and
the executor's operator/batch containers must therefore declare
``__slots__`` (directly or via ``@dataclass(slots=True)``).

Exemptions: ``typing.Protocol`` definitions, ``Exception`` subclasses,
``Enum`` subclasses and ``NamedTuple``s -- none of them carry
per-instance dicts worth slotting (or cannot be slotted at all).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import terminal_attribute
from repro.lint.violations import Violation

#: Paths whose classes are hot-path containers.
HOT_PATHS = ("engine/plan.py", "engine/executor.py")
HOT_DIR = "storage"

#: Base classes that exempt a class from the slots requirement.
EXEMPT_BASES = frozenset(
    {"Protocol", "Exception", "BaseException", "Enum", "IntEnum", "NamedTuple"}
)


def _has_slots_assignment(class_def: ast.ClassDef) -> bool:
    for statement in class_def.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_slots(class_def: ast.ClassDef) -> bool:
    for decorator in class_def.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if terminal_attribute(decorator.func) != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _is_exempt(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        name = terminal_attribute(base)
        if name in EXEMPT_BASES:
            return True
        # Protocol[T] / Generic subscript forms.
        if isinstance(base, ast.Subscript):
            if terminal_attribute(base.value) in EXEMPT_BASES:
                return True
    return False


@register_rule
class SlotsRule(Rule):
    rule_id = "REPRO105"
    name = "slots-on-hot-path"
    description = (
        "storage, plan-tree and executor classes must declare __slots__ "
        "(directly or via dataclass(slots=True))"
    )

    def applies_to(self, path: str) -> bool:
        if path.endswith(HOT_PATHS):
            return True
        parts = path.split("/")[:-1]
        return HOT_DIR in parts

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt(node):
                continue
            if _has_slots_assignment(node) or _dataclass_slots(node):
                continue
            yield self.violation(
                module,
                node.lineno,
                node.col_offset + 1,
                f"class {node.name!r} is on the hot path but declares no "
                "__slots__; per-instance __dict__ costs ~7x memory at scan "
                "scale",
            )
