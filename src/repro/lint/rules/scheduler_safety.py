"""REPRO104: nothing may stall or bloat a quantum-suspended pipeline.

The cooperative scheduler advances each admitted query one batch per
quantum via ``next(entry._iterator)``; fairness and the documented
latency bounds only hold if a quantum is short and bounded.  Two shapes
break that:

* ``time.sleep`` anywhere in the engine -- a blocking sleep inside an
  operator stalls every other query sharing the scheduler (and in tests
  it hides ordering bugs behind wall-clock waits);
* draining an entire row source eagerly inside scheduler code
  (``list(op.iter_rows())``, ``sorted(...iter_batches())``) -- one
  quantum would then materialize an unbounded intermediate, defeating
  batch-at-a-time admission control.  Operators that legitimately
  materialize (sort, hash build) do it behind their own operators, not
  in the scheduler loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import (
    import_aliases,
    qualified_call_name,
    terminal_attribute,
)
from repro.lint.violations import Violation

#: Eager drains banned in scheduler modules when fed by a row source.
MATERIALIZERS = frozenset({"list", "tuple", "sorted", "set"})

#: Row-source pulls that mark an argument as "a pipeline".
PIPELINE_CALLS = frozenset({"iter_rows", "iter_batches"})


def _drains_pipeline(call: ast.Call) -> bool:
    """Whether a ``list``/``sorted``/... call consumes a pipeline operand."""
    for arg in call.args:
        if isinstance(arg, ast.Call):
            if terminal_attribute(arg.func) in PIPELINE_CALLS:
                return True
        name = terminal_attribute(arg)
        if name is not None and "iterator" in name.lower():
            return True
    return False


@register_rule
class SchedulerSafetyRule(Rule):
    rule_id = "REPRO104"
    name = "scheduler-safety"
    description = (
        "no blocking sleeps in the engine and no unbounded materialization "
        "inside the cooperative scheduler's quantum loop"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        aliases = import_aliases(module.tree)
        in_scheduler = "scheduler" in module.relpath.rsplit("/", 1)[-1]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = qualified_call_name(node, aliases)
            if qualified == "time.sleep":
                yield self.violation(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    "time.sleep() blocks every query sharing the cooperative "
                    "scheduler; yield control instead",
                )
                continue
            if not in_scheduler:
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in MATERIALIZERS
                and _drains_pipeline(node)
            ):
                yield self.violation(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    f"{node.func.id}(...) drains a suspended pipeline in one "
                    "quantum; pull one batch per quantum with next()",
                )
