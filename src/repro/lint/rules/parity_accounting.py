"""REPRO102: scan kernels charge counters before filtering, and only the
two shared kernels read heap pages.

The row-at-a-time and batch-at-a-time paths must report identical
``rows_examined`` for the same snapshot, which only holds if every kernel
charges the counter *before* MVCC visibility filtering and predicate
evaluation drop rows.  The dynamic twin is the differential fuzzer
(``tests/test_fuzz_differential.py``) plus the parity assertions in
``tests/test_batch_parity.py``; this checker pins the two code shapes the
fuzzer relies on:

* ``HeapFile.read_page``/``read_pages``/``read_page_run`` may only be
  called from the two shared kernels in ``engine/access.py``
  (``_sweep_pages`` and ``_sweep_pages_batched``) -- every other operator
  goes through them, so accounting lives in exactly one place per path;
* any function that both charges an examined counter and filters rows
  must charge first (smaller line number than the first filter call).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleSource
from repro.lint.registry import Rule, register_rule
from repro.lint.rules._common import (
    terminal_attribute,
    walk_functions,
    walk_own_nodes,
)
from repro.lint.violations import Violation

#: The only functions allowed to pull heap pages.
SHARED_KERNELS = frozenset({"_sweep_pages", "_sweep_pages_batched"})
KERNEL_MODULE = "engine/access.py"

#: Page-pulling heap APIs owned by the shared kernels.
PAGE_READS = frozenset({"read_page", "read_pages", "read_page_run"})

#: Counter names whose ``+=`` constitutes "charging" an examined row.
CHARGE_NAMES = frozenset({"examined", "rows_examined"})

#: Calls that drop rows: MVCC visibility, predicate evaluation, fused
#: batch kernels.
FILTER_CALLS = frozenset({"visible", "matches", "kernel"})


def _charge_lines(function: ast.FunctionDef | ast.AsyncFunctionDef) -> list[int]:
    lines: list[int] = []
    for node in walk_own_nodes(function):
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if terminal_attribute(node.target) in CHARGE_NAMES:
                lines.append(node.lineno)
    return lines


def _filter_lines(function: ast.FunctionDef | ast.AsyncFunctionDef) -> list[int]:
    lines: list[int] = []
    for node in walk_own_nodes(function):
        if isinstance(node, ast.Call):
            if terminal_attribute(node.func) in FILTER_CALLS:
                lines.append(node.lineno)
    return lines


@register_rule
class ParityAccountingRule(Rule):
    rule_id = "REPRO102"
    name = "parity-accounting"
    description = (
        "heap page reads only inside the shared scan kernels, and examined "
        "counters charged before visibility/predicate filtering"
    )

    def applies_to(self, path: str) -> bool:
        # Storage owns the read APIs themselves; everything else in the
        # engine tree is in scope.
        parts = path.split("/")[:-1]
        return "storage" not in parts

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        in_kernel_module = module.relpath.endswith(KERNEL_MODULE)
        for function in walk_functions(module.tree):
            allowed = in_kernel_module and function.name in SHARED_KERNELS
            if not allowed:
                for node in walk_own_nodes(function):
                    if not isinstance(node, ast.Call):
                        continue
                    name = terminal_attribute(node.func)
                    if isinstance(node.func, ast.Attribute) and name in PAGE_READS:
                        yield self.violation(
                            module,
                            node.lineno,
                            node.col_offset + 1,
                            f".{name}() outside the shared scan kernels -- "
                            "route page access through _sweep_pages / "
                            "_sweep_pages_batched so parity accounting stays "
                            "in one place",
                        )
            charges = _charge_lines(function)
            filters = _filter_lines(function)
            if charges and filters and min(filters) < min(charges):
                yield self.violation(
                    module,
                    min(filters),
                    1,
                    f"{function.name!r} filters rows (line {min(filters)}) "
                    f"before charging the examined counter (line "
                    f"{min(charges)}); charge before visibility/predicate "
                    "filtering so row and batch paths agree",
                )
