"""The streaming execution layer: contexts, counters and join operators.

Access paths produce rows through generator-based ``iter_rows`` pipelines;
an :class:`ExecutionContext` travels down the pipeline carrying the shared
execution counters, the LIMIT budget and the output projection.  Keeping the
context separate from the access paths lets one query execution thread a
single set of counters through index probes, correlation-map lookups and the
heap sweep kernel, and lets LIMIT terminate the sweep as soon as enough rows
have been emitted -- no access path ever materialises the table.

Multi-table queries compose the same pipelines: a join operator
(:class:`NestedLoopJoin`, :class:`IndexNestedLoopJoin`) pulls rows from an
outer source, binds each outer row's join-key values into a fresh inner
access path, and streams the merged rows.  The operators are themselves row
sources, so left-deep chains nest naturally: ``(A join B) join C`` is just a
join operator whose outer source is another join operator.  Child pipelines
run under :meth:`ExecutionContext.child` contexts that share the parent's
:class:`ExecutionCounters` -- physical work on every input lands in one
place -- while the LIMIT budget and the projection stay with the root: a
satisfied LIMIT stops the operator from pulling further outer rows, which in
turn abandons the outer generator mid-sweep, so the remaining outer pages
are never read.

``AccessResult`` (in :mod:`repro.engine.access`) remains as the materialised
view of one finished execution for callers that want all rows at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.access import AccessResult
    from repro.engine.query import Query


@dataclass
class ExecutionCounters:
    """Counters charged by every stage of one query execution.

    One instance is shared by the whole plan: access paths charge pages and
    rows as they sweep, join operators count the rows they merge, and the
    root context counts the rows finally emitted to the caller.
    """

    rows_examined: int = 0
    pages_visited: int = 0
    lookups: int = 0
    rows_emitted: int = 0
    #: Inner-path probes performed by join operators (one per outer row per
    #: join step).
    join_probes: int = 0


@dataclass
class ExecutionContext:
    """Per-execution state threaded through a plan's row pipelines.

    Parameters
    ----------
    limit:
        Stop after emitting this many rows (``None`` = no limit).  The scan
        kernel checks the budget between rows and between pages, so a
        satisfied LIMIT never sweeps the remaining pages; join operators
        additionally stop pulling outer rows.
    projection:
        Columns to keep in emitted rows (``None`` = whole row).  Projection
        happens at emission time so residual predicates still see every
        column.
    count_output:
        Whether :meth:`emit` counts towards ``counters.rows_emitted``.  True
        for the root context; child contexts (see :meth:`child`) disable it
        so that intermediate rows flowing into a join operator do not distort
        the root's LIMIT accounting.
    """

    limit: int | None = None
    projection: tuple[str, ...] | None = None
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)
    #: Filled in by :class:`repro.engine.access.CorrelationMapScan`.
    rewritten_sql: str | None = None
    count_output: bool = True
    #: False on join inner-probe contexts, whose rewritten SQL nobody reads
    #: -- lets the CM scan skip rendering it once per probe.
    report_rewritten_sql: bool = True

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.projection is not None:
            self.projection = tuple(self.projection)

    @classmethod
    def for_query(
        cls,
        query: "Query",
        *,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> "ExecutionContext":
        """A context honouring the query's LIMIT/projection, with overrides."""
        if limit is None:
            limit = query.limit
        if projection is None:
            projection = query.projection
        return cls(
            limit=limit,
            projection=tuple(projection) if projection is not None else None,
        )

    def child(self) -> "ExecutionContext":
        """A context for a sub-pipeline feeding a parent operator.

        The child shares the parent's :class:`ExecutionCounters`, so pages
        and rows touched by either join input aggregate in one place, but it
        carries no LIMIT budget (the parent decides when to stop pulling), no
        projection (the parent needs whole rows to merge), and its emissions
        do not count as output rows.
        """
        return ExecutionContext(counters=self.counters, count_output=False)

    @property
    def limit_reached(self) -> bool:
        return self.limit is not None and self.counters.rows_emitted >= self.limit

    def emit(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Count one output row and apply the projection.

        Root contexts copy the row: emitted rows reach callers (``stream``,
        ``QueryResult.rows``) who may mutate them, and handing out the live
        heap-page dict would corrupt the page, the indexes built over it and
        the statistics sample.  Child contexts skip the copy -- their rows
        only feed a join operator, which builds a fresh merged dict anyway.
        """
        if self.count_output:
            self.counters.rows_emitted += 1
            if self.projection is None:
                return dict(row)
        if self.projection is None:
            return row if isinstance(row, dict) else dict(row)
        return {column: row[column] for column in self.projection}


class RowSource(Protocol):
    """Anything that can stream rows under an :class:`ExecutionContext`.

    Access paths and join operators both satisfy this protocol, which is what
    lets join operators nest into left-deep chains.
    """

    name: str

    def iter_rows(
        self, context: ExecutionContext | None = None
    ) -> Iterator[dict[str, Any]]: ...  # pragma: no cover - protocol


def materialize(source: "RowSource", context: ExecutionContext | None = None):
    """Drain a row source into an :class:`~repro.engine.access.AccessResult`.

    The one place the stream-to-materialised conversion lives: both
    :meth:`AccessPath.execute` and :meth:`JoinOperator.execute` delegate
    here, so a counter added to ``AccessResult`` is wired up exactly once.
    """
    from repro.engine.access import AccessResult

    context = context or ExecutionContext()
    rows = list(source.iter_rows(context))
    counters = context.counters
    return AccessResult(
        rows=rows,
        rows_examined=counters.rows_examined,
        pages_visited=counters.pages_visited,
        lookups=counters.lookups,
        rewritten_sql=context.rewritten_sql,
    )


class JoinOperator:
    """Base streaming equi-join: pull outer rows, probe the inner per row.

    ``source`` is the outer input (an access path or another join operator);
    ``probe`` builds, for each outer row, a fresh inner access path with the
    join-key equalities bound as predicates (see
    :class:`repro.engine.access.InnerPathBuilder`).  Because the bound
    equalities are ordinary predicates, the inner path both *finds* matches
    (via an index, a CM, or a residual-filtered scan) and *verifies* them --
    the operator itself only merges rows.

    Merged rows are ``{**outer, **inner}``; on the join keys both sides agree
    by construction, and other same-named columns (which :meth:`Query.join`
    cannot distinguish anyway) resolve to the inner table's value.
    """

    name = "join"
    #: The inner strategy this operator was planned with (for EXPLAIN).
    strategy = ""

    def __init__(self, source: "RowSource", probe: "InnerProbe") -> None:
        self.source = source
        self.probe = probe

    # -- streaming interface --------------------------------------------------

    def iter_rows(
        self, context: ExecutionContext | None = None
    ) -> Iterator[dict[str, Any]]:
        """Stream merged rows, charging counters on ``context`` as they flow."""
        context = context or ExecutionContext()
        if context.limit_reached:
            return
        yield from self._stream(context)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        outer_context = context.child()
        try:
            for outer_row in self.source.iter_rows(outer_context):
                context.counters.join_probes += 1
                inner_path = self.probe.bind(outer_row)
                inner_context = context.child()
                inner_context.report_rewritten_sql = False
                for inner_row in inner_path.iter_rows(inner_context):
                    yield context.emit({**outer_row, **inner_row})
                    if context.limit_reached:
                        return
        finally:
            # A CM-driven outer path writes its rewritten SQL onto the child
            # context; surface it on the root so join results report it the
            # way single-table CM scans do (nested joins bubble it up).
            if context.rewritten_sql is None:
                context.rewritten_sql = outer_context.rewritten_sql

    def execute(self, context: ExecutionContext | None = None) -> "AccessResult":
        """Materialise the stream into an :class:`AccessResult` (compatibility)."""
        return materialize(self, context)

    def describe(self) -> str:
        source = getattr(self.source, "describe", self.source.__class__.__name__)
        source_text = source() if callable(source) else str(source)
        return f"{source_text} -> {self.name}[{self.probe.describe()}]"


class InnerProbe(Protocol):
    """Builds a fresh inner access path for one outer row's join-key values."""

    def bind(self, outer_row: Mapping[str, Any]) -> "RowSource": ...  # pragma: no cover

    def describe(self) -> str: ...  # pragma: no cover - protocol


class NestedLoopJoin(JoinOperator):
    """Naive nested loops: re-scan the inner table for every outer row.

    The inner path is a sequential scan with the bound join keys applied as
    residual filters, so each outer row costs a full inner sweep -- the
    fallback when the inner table offers no useful access structure (or is
    tiny enough that rescans beat index descents).
    """

    name = "nested_loop_join"
    strategy = "seq_scan"


class IndexNestedLoopJoin(JoinOperator):
    """Index nested loops: probe an inner access structure per outer row.

    The probe binds ``Equals(inner_key, outer_value)`` predicates and runs
    them through a clustered-index scan, a sorted secondary-index scan, or a
    correlation-map scan -- whichever the planner costed cheapest.  The CM
    case is the paper's core trick applied across tables: when the join key
    is correlated with the inner table's clustered key, a tiny memory-
    resident CM narrows each probe to a few clustered buckets instead of a
    B+Tree descent per matching tuple.
    """

    name = "index_nested_loop_join"

    def __init__(self, source: "RowSource", probe: "InnerProbe", strategy: str) -> None:
        super().__init__(source, probe)
        self.strategy = strategy
