"""The streaming execution layer: contexts, counters and join operators.

Access paths produce rows through generator-based ``iter_rows`` pipelines;
an :class:`ExecutionContext` travels down the pipeline carrying the shared
execution counters, the LIMIT budget and the output projection.  Keeping the
context separate from the access paths lets one query execution thread a
single set of counters through index probes, correlation-map lookups and the
heap sweep kernel, and lets LIMIT terminate the sweep as soon as enough rows
have been emitted -- no access path ever materialises the table.

Multi-table queries compose the same pipelines.  Two operator families
exist, all of them row sources (so left-deep chains nest naturally:
``(A join B) join C`` is just a join operator whose outer source is another
join operator):

* *tuple-at-a-time* probes (:class:`NestedLoopJoin`,
  :class:`IndexNestedLoopJoin`) pull rows from the outer source and bind
  each outer row's join-key values into a fresh inner access path;
* *set-at-a-time* operators (:class:`HashJoin`, :class:`SortMergeJoin`)
  read the inner input once -- a hash-table build, or an ordered merge --
  and stream the other input through it, turning the quadratic unindexed
  fallback into O(N + M) page reads.

Child pipelines run under :meth:`ExecutionContext.child` contexts that share
the parent's :class:`ExecutionCounters` -- physical work on every input
lands in one place -- while the LIMIT budget and the projection stay with
the root: a satisfied LIMIT stops the operator from pulling further probe
rows, which in turn abandons the upstream generators mid-sweep, so the
remaining pages are never read.

``AccessResult`` (in :mod:`repro.engine.access`) remains as the materialised
view of one finished execution for callers that want all rows at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.access import AccessResult
    from repro.engine.query import Query


@dataclass
class ExecutionCounters:
    """Counters charged by every stage of one query execution.

    One instance is shared by the whole plan: access paths charge pages and
    rows as they sweep, join operators count the rows they merge, and the
    root context counts the rows finally emitted to the caller.
    """

    rows_examined: int = 0
    pages_visited: int = 0
    lookups: int = 0
    rows_emitted: int = 0
    #: Inner-path probes performed by join operators (one per outer row per
    #: join step).
    join_probes: int = 0


@dataclass
class ExecutionContext:
    """Per-execution state threaded through a plan's row pipelines.

    Parameters
    ----------
    limit:
        Stop after emitting this many rows (``None`` = no limit).  The scan
        kernel checks the budget between rows and between pages, so a
        satisfied LIMIT never sweeps the remaining pages; join operators
        additionally stop pulling outer rows.
    projection:
        Columns to keep in emitted rows (``None`` = whole row).  Projection
        happens at emission time so residual predicates still see every
        column.
    count_output:
        Whether :meth:`emit` counts towards ``counters.rows_emitted``.  True
        for the root context; child contexts (see :meth:`child`) disable it
        so that intermediate rows flowing into a join operator do not distort
        the root's LIMIT accounting.
    """

    limit: int | None = None
    projection: tuple[str, ...] | None = None
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)
    #: Filled in by :class:`repro.engine.access.CorrelationMapScan`.
    rewritten_sql: str | None = None
    count_output: bool = True
    #: False on join inner-probe contexts, whose rewritten SQL nobody reads
    #: -- lets the CM scan skip rendering it once per probe.
    report_rewritten_sql: bool = True

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.projection is not None:
            self.projection = tuple(self.projection)

    @classmethod
    def for_query(
        cls,
        query: "Query",
        *,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> "ExecutionContext":
        """A context honouring the query's LIMIT/projection, with overrides."""
        if limit is None:
            limit = query.limit
        if projection is None:
            projection = query.projection
        return cls(
            limit=limit,
            projection=tuple(projection) if projection is not None else None,
        )

    def child(self) -> "ExecutionContext":
        """A context for a sub-pipeline feeding a parent operator.

        The child shares the parent's :class:`ExecutionCounters`, so pages
        and rows touched by either join input aggregate in one place, but it
        carries no LIMIT budget (the parent decides when to stop pulling), no
        projection (the parent needs whole rows to merge), and its emissions
        do not count as output rows.
        """
        return ExecutionContext(counters=self.counters, count_output=False)

    @property
    def limit_reached(self) -> bool:
        return self.limit is not None and self.counters.rows_emitted >= self.limit

    def emit(self, row: Mapping[str, Any], *, fresh: bool = False) -> dict[str, Any]:
        """Count one output row and apply the projection.

        Root contexts copy the row: emitted rows reach callers (``stream``,
        ``QueryResult.rows``) who may mutate them, and handing out the live
        heap-page dict would corrupt the page, the indexes built over it and
        the statistics sample.  Join operators pass ``fresh=True`` because
        their merged ``{**outer, **inner}`` dict is already a private copy,
        skipping a second per-row copy on the output hot path.  Child
        contexts skip the copy too -- their rows only feed a parent
        operator, which builds a fresh merged dict anyway.
        """
        if self.count_output:
            self.counters.rows_emitted += 1
            if self.projection is None:
                return row if fresh and isinstance(row, dict) else dict(row)
        if self.projection is None:
            return row if isinstance(row, dict) else dict(row)
        return {column: row[column] for column in self.projection}


class RowSource(Protocol):
    """Anything that can stream rows under an :class:`ExecutionContext`.

    Access paths and join operators both satisfy this protocol, which is what
    lets join operators nest into left-deep chains.
    """

    name: str

    def iter_rows(
        self, context: ExecutionContext | None = None
    ) -> Iterator[dict[str, Any]]: ...  # pragma: no cover - protocol


def materialize(source: "RowSource", context: ExecutionContext | None = None):
    """Drain a row source into an :class:`~repro.engine.access.AccessResult`.

    The one place the stream-to-materialised conversion lives: both
    :meth:`AccessPath.execute` and :meth:`JoinOperator.execute` delegate
    here, so a counter added to ``AccessResult`` is wired up exactly once.
    """
    from repro.engine.access import AccessResult

    context = context or ExecutionContext()
    rows = list(source.iter_rows(context))
    counters = context.counters
    return AccessResult(
        rows=rows,
        rows_examined=counters.rows_examined,
        pages_visited=counters.pages_visited,
        lookups=counters.lookups,
        join_probes=counters.join_probes,
        rows_emitted=counters.rows_emitted,
        rewritten_sql=context.rewritten_sql,
    )


class JoinOperator:
    """Base streaming equi-join operator: a row source over an outer input.

    ``source`` is the outer input (an access path or another join operator).
    Subclasses implement :meth:`_stream`, pulling from the outer source and
    from whatever inner input they own under :meth:`ExecutionContext.child`
    contexts, so the physical work of every input lands in the one shared
    counter set.

    Merged rows are ``{**outer, **inner}``; on the join keys both sides
    agree by construction, and :meth:`repro.engine.database.Database` rejects
    queries whose joined schemas would make any *other* column ambiguous, so
    the merge never silently resolves a real collision.
    """

    name = "join"
    #: The inner strategy this operator was planned with (for EXPLAIN).
    strategy = ""

    def __init__(self, source: "RowSource") -> None:
        self.source = source

    # -- streaming interface --------------------------------------------------

    def iter_rows(
        self, context: ExecutionContext | None = None
    ) -> Iterator[dict[str, Any]]:
        """Stream merged rows, charging counters on ``context`` as they flow."""
        context = context or ExecutionContext()
        if context.limit_reached:
            return
        yield from self._stream(context)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def _bubble_rewritten_sql(
        self, context: ExecutionContext, outer_context: ExecutionContext
    ) -> None:
        """Surface a CM-driven outer path's rewritten SQL on the root context.

        The outer path writes its rewritten SQL onto the child context it
        runs under; copying it up makes join results report it the way
        single-table CM scans do (nested joins bubble it all the way up).
        """
        if context.rewritten_sql is None:
            context.rewritten_sql = outer_context.rewritten_sql

    def execute(self, context: ExecutionContext | None = None) -> "AccessResult":
        """Materialise the stream into an :class:`AccessResult` (compatibility)."""
        return materialize(self, context)

    def describe_detail(self) -> str:
        """The inner-input summary shown inside EXPLAIN structure labels."""
        return self.strategy

    def describe(self) -> str:
        source = getattr(self.source, "describe", self.source.__class__.__name__)
        source_text = source() if callable(source) else str(source)
        return f"{source_text} -> {self.name}[{self.describe_detail()}]"


class InnerProbe(Protocol):
    """Builds a fresh inner access path for one outer row's join-key values."""

    def bind(self, outer_row: Mapping[str, Any]) -> "RowSource": ...  # pragma: no cover

    def describe(self) -> str: ...  # pragma: no cover - protocol


class ProbeJoin(JoinOperator):
    """Tuple-at-a-time join: pull outer rows, probe the inner per row.

    ``probe`` builds, for each outer row, a fresh inner access path with the
    join-key equalities bound as predicates (see
    :class:`repro.engine.access.InnerPathBuilder`).  Because the bound
    equalities are ordinary predicates, the inner path both *finds* matches
    (via an index, a CM, or a residual-filtered scan) and *verifies* them --
    the operator itself only merges rows.
    """

    def __init__(self, source: "RowSource", probe: "InnerProbe") -> None:
        super().__init__(source)
        self.probe = probe

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        outer_context = context.child()
        try:
            for outer_row in self.source.iter_rows(outer_context):
                context.counters.join_probes += 1
                inner_path = self.probe.bind(outer_row)
                inner_context = context.child()
                inner_context.report_rewritten_sql = False
                for inner_row in inner_path.iter_rows(inner_context):
                    yield context.emit({**outer_row, **inner_row}, fresh=True)
                    if context.limit_reached:
                        return
        finally:
            self._bubble_rewritten_sql(context, outer_context)

    def describe_detail(self) -> str:
        return self.probe.describe()


class NestedLoopJoin(ProbeJoin):
    """Naive nested loops: re-scan the inner table for every outer row.

    The inner path is a sequential scan with the bound join keys applied as
    residual filters, so each outer row costs a full inner sweep -- O(N*M)
    page reads, kept only as the strategy of last resort (or for tiny inners
    whose rescans stay buffer-pool resident) now that :class:`HashJoin` and
    :class:`SortMergeJoin` cover the unindexed case in O(N + M).
    """

    name = "nested_loop_join"
    strategy = "seq_scan"


class IndexNestedLoopJoin(ProbeJoin):
    """Index nested loops: probe an inner access structure per outer row.

    The probe binds ``Equals(inner_key, outer_value)`` predicates and runs
    them through a clustered-index scan, a sorted secondary-index scan, or a
    correlation-map scan -- whichever the planner costed cheapest.  The CM
    case is the paper's core trick applied across tables: when the join key
    is correlated with the inner table's clustered key, a tiny memory-
    resident CM narrows each probe to a few clustered buckets instead of a
    B+Tree descent per matching tuple.
    """

    name = "index_nested_loop_join"

    def __init__(self, source: "RowSource", probe: "InnerProbe", strategy: str) -> None:
        super().__init__(source, probe)
        self.strategy = strategy


def _key_getter(columns: Sequence[str]):
    """A function extracting the (tuple) join key of one row."""
    columns = tuple(columns)

    def key_of(row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(row[column] for column in columns)

    return key_of


def _charge_cpu(path: "RowSource", tuples: int) -> None:
    """Charge in-operator CPU work to the simulated disk.

    Hash builds/probes and explicit sorts do per-row work that never touches
    a page; charging it (through the inner path's table, which reaches the
    shared disk model) keeps measured ``elapsed_ms`` aligned with what
    ``hash_join_cost``/``sort_merge_join_cost`` price, exactly as access
    paths charge CPU per examined row.
    """
    table = getattr(path, "table", None)
    if table is not None and tuples > 0:
        table.buffer_pool.disk.charge_cpu_tuples(tuples)


def _sort_cpu_tuples(rows: int) -> int:
    """The comparison count an explicit sort is charged as (cost-model's)."""
    from repro.core.cost import sort_comparison_count

    return int(sort_comparison_count(rows))


def _ordering_key_getter(columns: Sequence[str]):
    """A join-key extractor whose keys also order in the presence of None.

    Equality between wrapped keys is exactly raw-value equality (so merge
    matching agrees with the hash and nested-loop operators, where
    ``None == None`` matches), but ordering comparisons never reach a
    ``None < value`` — rows with NULL keys simply sort after everything
    else instead of crashing the merge.
    """
    columns = tuple(columns)

    def key_of(row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(
            (row[column] is None, row[column]) for column in columns
        )

    return key_of


class HashJoin(JoinOperator):
    """Streaming hash join: build one side's hash table, stream the other.

    ``inner_path`` is an access path over the joined table (a sequential
    scan carrying the table's local predicates).  ``build_side`` picks which
    input is hashed -- the planner chooses the side with fewer sampled rows:

    * ``"inner"`` -- the inner table is scanned once into a hash table on
      its join-key columns, then *outer* rows stream through it.  The outer
      stays fully pipelined, so a satisfied LIMIT stops pulling outer rows
      exactly as the probe joins do.
    * ``"outer"`` -- the outer input is drained into the hash table and the
      *inner* table streams through it; a satisfied LIMIT abandons the inner
      sweep with the remaining inner pages unread.

    Either way each input is read exactly once -- O(N + M) page reads,
    versus the nested-loop rescan's O(N*M).  An empty build side short-
    circuits: the probe side is never read at all.
    """

    name = "hash_join"
    strategy = "hash"

    def __init__(
        self,
        source: "RowSource",
        inner_path: "RowSource",
        join_on: Sequence[tuple[str, str]],
        *,
        build_side: str = "inner",
        inner_label: str = "",
    ) -> None:
        if build_side not in ("inner", "outer"):
            raise ValueError(f"unknown build side {build_side!r}")
        super().__init__(source)
        self.inner_path = inner_path
        self.join_on = tuple(join_on)
        self.build_side = build_side
        self.inner_label = inner_label
        self._outer_key = _key_getter([outer for outer, _inner in self.join_on])
        self._inner_key = _key_getter([inner for _outer, inner in self.join_on])

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        if self.build_side == "inner":
            yield from self._stream_build_inner(context)
        else:
            yield from self._stream_build_outer(context)

    def _stream_build_inner(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        build_context = context.child()
        build_context.report_rewritten_sql = False
        table: dict[tuple[Any, ...], list[Mapping[str, Any]]] = {}
        build_rows = 0
        for row in self.inner_path.iter_rows(build_context):
            table.setdefault(self._inner_key(row), []).append(row)
            build_rows += 1
        _charge_cpu(self.inner_path, build_rows)
        if not table:
            return  # empty build side: never pull a single probe row
        outer_context = context.child()
        probe_rows = 0
        try:
            for outer_row in self.source.iter_rows(outer_context):
                context.counters.join_probes += 1
                probe_rows += 1
                for inner_row in table.get(self._outer_key(outer_row), ()):
                    yield context.emit({**outer_row, **inner_row}, fresh=True)
                    if context.limit_reached:
                        return
        finally:
            _charge_cpu(self.inner_path, probe_rows)
            self._bubble_rewritten_sql(context, outer_context)

    def _stream_build_outer(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        outer_context = context.child()
        table: dict[tuple[Any, ...], list[Mapping[str, Any]]] = {}
        build_rows = 0
        try:
            for outer_row in self.source.iter_rows(outer_context):
                table.setdefault(self._outer_key(outer_row), []).append(outer_row)
                build_rows += 1
        finally:
            _charge_cpu(self.inner_path, build_rows)
            self._bubble_rewritten_sql(context, outer_context)
        if not table:
            return
        probe_context = context.child()
        probe_context.report_rewritten_sql = False
        probe_rows = 0
        try:
            for inner_row in self.inner_path.iter_rows(probe_context):
                context.counters.join_probes += 1
                probe_rows += 1
                for outer_row in table.get(self._inner_key(inner_row), ()):
                    yield context.emit({**outer_row, **inner_row}, fresh=True)
                    if context.limit_reached:
                        return
        finally:
            _charge_cpu(self.inner_path, probe_rows)

    def describe_detail(self) -> str:
        keys = ", ".join(inner for _outer, inner in self.join_on)
        label = self.inner_label or self.inner_path.__class__.__name__
        return f"{label}({keys}) hash build={self.build_side}"


class SortMergeJoin(JoinOperator):
    """Sort-merge join: merge the two inputs in join-key order.

    ``inner_path`` is an access path over the joined table.  Pre-sorted
    inputs merge directly: ``inner_sorted=True`` declares that the inner
    path already yields rows in join-key order (its clustered attribute *is*
    the join key and the heap has no unsorted tail), so the merge sweeps its
    pages lazily and a satisfied LIMIT abandons the sweep early.
    ``outer_sorted`` declares the same of the outer input (a scan of a table
    clustered on the outer join column).  Any side not declared sorted is
    materialised and explicitly sorted first -- the planner charges that
    sort from sampled row counts, which is what steers it towards the
    smaller side / a hash join when nothing is pre-ordered.

    Duplicate keys merge as group cross-products, so all-duplicate inputs
    degrade gracefully to the full cartesian block rather than losing rows.
    """

    name = "sort_merge_join"
    strategy = "merge"

    def __init__(
        self,
        source: "RowSource",
        inner_path: "RowSource",
        join_on: Sequence[tuple[str, str]],
        *,
        inner_sorted: bool = False,
        outer_sorted: bool = False,
        inner_label: str = "",
    ) -> None:
        super().__init__(source)
        self.inner_path = inner_path
        self.join_on = tuple(join_on)
        self.inner_sorted = inner_sorted
        self.outer_sorted = outer_sorted
        self.inner_label = inner_label
        self._outer_key = _ordering_key_getter(
            [outer for outer, _inner in self.join_on]
        )
        self._inner_key = _ordering_key_getter(
            [inner for _outer, inner in self.join_on]
        )

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        outer_context = context.child()
        try:
            outer_rows: Iterable[Mapping[str, Any]]
            if self.outer_sorted:
                # Lazy: the outer already streams in key order, so the merge
                # pulls outer rows on demand and a satisfied LIMIT stops the
                # outer sweep exactly as the probe joins do.
                outer_rows = self.source.iter_rows(outer_context)
            else:
                outer_rows = sorted(
                    self.source.iter_rows(outer_context), key=self._outer_key
                )
                if not outer_rows:
                    return  # nothing to merge: the inner is never read
                _charge_cpu(self.inner_path, _sort_cpu_tuples(len(outer_rows)))
            inner_context = context.child()
            inner_context.report_rewritten_sql = False

            def inner_in_key_order() -> Iterator[Mapping[str, Any]]:
                if self.inner_sorted:
                    # Heap order is key order: pull inner pages on demand,
                    # so early termination leaves the rest unread.
                    return self.inner_path.iter_rows(inner_context)
                rows = sorted(
                    self.inner_path.iter_rows(inner_context), key=self._inner_key
                )
                _charge_cpu(self.inner_path, _sort_cpu_tuples(len(rows)))
                return iter(rows)

            yield from self._merge(outer_rows, inner_in_key_order, context)
        finally:
            self._bubble_rewritten_sql(context, outer_context)

    def _merge(
        self,
        outer_rows: Iterable[Mapping[str, Any]],
        inner_in_key_order,
        context: ExecutionContext,
    ) -> Iterator[dict[str, Any]]:
        from itertools import groupby

        sentinel = object()
        inner_iter: Iterator[Mapping[str, Any]] | None = None
        inner_row: Any = sentinel
        inner_key: Any = None
        merged_rows = 0

        def advance() -> None:
            # One key construction per inner row, cached across the outer
            # groups that compare against the same parked row.
            nonlocal inner_row, inner_key, merged_rows
            inner_row = next(inner_iter, sentinel)
            if inner_row is not sentinel:
                inner_key = self._inner_key(inner_row)
                merged_rows += 1

        try:
            for key, group in groupby(outer_rows, key=self._outer_key):
                outer_group = list(group)
                context.counters.join_probes += len(outer_group)
                merged_rows += len(outer_group)
                if inner_iter is None:
                    # The inner input is opened (and, if unsorted,
                    # materialised and sorted) only once the outer proved
                    # non-empty, so an empty outer never reads the inner.
                    inner_iter = inner_in_key_order()
                    advance()
                while inner_row is not sentinel and inner_key < key:
                    advance()
                if inner_row is sentinel:
                    return
                inner_group: list[Mapping[str, Any]] = []
                while inner_row is not sentinel and inner_key == key:
                    inner_group.append(inner_row)
                    advance()
                for outer_row in outer_group:
                    for matched in inner_group:
                        yield context.emit({**outer_row, **matched}, fresh=True)
                        if context.limit_reached:
                            return
        finally:
            # The merge compares each consumed row once; charge that CPU.
            _charge_cpu(self.inner_path, merged_rows)

    def describe_detail(self) -> str:
        keys = ", ".join(inner for _outer, inner in self.join_on)
        sorts = [] if self.outer_sorted else ["outer"]
        if not self.inner_sorted:
            sorts.append("inner")
        label = self.inner_label or self.inner_path.__class__.__name__
        return f"{label}({keys}) merge sort={'+'.join(sorts) or 'none'}"
