"""The streaming execution layer.

Access paths produce rows through generator-based ``iter_rows`` pipelines;
an :class:`ExecutionContext` travels down the pipeline carrying the shared
execution counters, the LIMIT budget and the output projection.  Keeping the
context separate from the access paths lets one query execution thread a
single set of counters through index probes, correlation-map lookups and the
heap sweep kernel, and lets LIMIT terminate the sweep as soon as enough rows
have been emitted -- no access path ever materialises the table.

``AccessResult`` (in :mod:`repro.engine.access`) remains as the materialised
view of one finished execution for callers that want all rows at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.query import Query


@dataclass
class ExecutionCounters:
    """Counters charged by every stage of one query execution."""

    rows_examined: int = 0
    pages_visited: int = 0
    lookups: int = 0
    rows_emitted: int = 0


@dataclass
class ExecutionContext:
    """Per-execution state threaded through an access path's row pipeline.

    Parameters
    ----------
    limit:
        Stop after emitting this many rows (``None`` = no limit).  The scan
        kernel checks the budget between rows and between pages, so a
        satisfied LIMIT never sweeps the remaining pages.
    projection:
        Columns to keep in emitted rows (``None`` = whole row).  Projection
        happens at emission time so residual predicates still see every
        column.
    """

    limit: int | None = None
    projection: tuple[str, ...] | None = None
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)
    #: Filled in by :class:`repro.engine.access.CorrelationMapScan`.
    rewritten_sql: str | None = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.projection is not None:
            self.projection = tuple(self.projection)

    @classmethod
    def for_query(
        cls,
        query: "Query",
        *,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> "ExecutionContext":
        """A context honouring the query's LIMIT/projection, with overrides."""
        if limit is None:
            limit = query.limit
        if projection is None:
            projection = query.projection
        return cls(
            limit=limit,
            projection=tuple(projection) if projection is not None else None,
        )

    @property
    def limit_reached(self) -> bool:
        return self.limit is not None and self.counters.rows_emitted >= self.limit

    def emit(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Count one output row and apply the projection."""
        self.counters.rows_emitted += 1
        if self.projection is None:
            return row if isinstance(row, dict) else dict(row)
        return {column: row[column] for column in self.projection}
