"""The streaming execution layer: plan nodes, contexts, counters, joins.

Query execution runs a tree of :class:`PlanNode` operators (Volcano-style):
leaf ``Scan`` nodes wrap access paths, join operators compose them into
left-deep chains, and the pipeline decorators of :mod:`repro.engine.plan`
(Sort, TopK, GroupBy, Aggregate, Limit, Project) sit on top.  Every node is
a row source -- rows flow through generator-based ``iter_rows`` pipelines --
and every node owns its *own* :class:`ExecutionCounters`, so an executed
plan reports per-node actual rows and pages (the EXPLAIN ANALYZE surface)
while :meth:`PlanNode.total_counters` folds the tree back into whole-query
totals.

An :class:`ExecutionContext` travels down the pipeline carrying the
counters to charge, the (legacy, context-level) LIMIT budget, the output
projection and the per-query shared state.  Two composition rules keep the
accounting straight:

* pulling from a *child node* goes through :meth:`PlanNode.iter_rows`,
  which re-homes the context onto that node's counters
  (:meth:`PlanNode.adopt`) -- the child's physical work lands on the child;
* *intra-node* sub-pipelines (the per-outer-row probe paths of a nested-
  loop join, a hash join's build scan) run under
  :meth:`ExecutionContext.child` contexts that share the operator's
  counters -- work that has no node of its own lands on the operator that
  caused it (probe work is routed to the join's ``inner_probe`` leaf).

Two join operator families exist:

* *tuple-at-a-time* probes (:class:`NestedLoopJoin`,
  :class:`IndexNestedLoopJoin`) pull rows from the outer source and bind
  each outer row's join-key values into a fresh inner access path;
* *set-at-a-time* operators (:class:`HashJoin`, :class:`SortMergeJoin`)
  read the inner input once -- a hash-table build, or an ordered merge --
  and stream the other input through it, turning the quadratic unindexed
  fallback into O(N + M) page reads.

**Batched dataflow.**  Besides the row-at-a-time ``iter_rows`` pipelines,
every node speaks a batch-at-a-time protocol: :meth:`PlanNode.iter_batches`
pulls :class:`RowBatch` objects (plain lists of row dicts, default
``batch_size`` :data:`DEFAULT_BATCH_SIZE`) through the tree, which is what
``Database(batch_size=...)`` executes by default.  Batching amortises the
dominant interpreter overheads -- generator frame switches, per-row emit and
counter calls -- while keeping every simulated-disk number *bit-identical*
to the row-at-a-time path.  Three rules make that parity hold:

* **demand**: a ``demand`` row budget flows down from :class:`repro.engine.
  plan.LimitNode`.  An operator receiving a finite demand degrades to lazy
  row-at-a-time production (chunking its own ``_stream``), so early
  termination stops at exactly the same row, page and CPU charge as the
  row pipeline; blocking operators (Sort/TopK/Aggregate/GroupBy) ignore
  demand on their input side, exactly as they drain it fully either way.
* **run_reads**: scans may read several consecutive heap pages back-to-back
  (charged as one sequential run) only while no operator between them and
  the consumer issues per-row I/O.  A :class:`ProbeJoin` pulls its outer
  side with ``run_reads=False``, which keeps the simulated head position --
  and with it every sequential/random classification -- identical to the
  interleaved row-at-a-time order.
* **batched charging**: per-page/per-batch counter increments replace
  per-row ones, but only where the totals are provably equal (the counters
  are purely additive).

``iter_rows`` remains as the compatibility surface (``Database.stream``,
bare access paths, hand-driven contexts) and as the reference semantics the
batched path is tested against.

LIMIT enforcement lives in the plan tree (:class:`repro.engine.plan.
LimitNode` stops pulling once its budget is spent, which abandons every
upstream generator mid-sweep so the remaining pages are never read); the
context-level budget remains for access paths driven directly, outside a
tree.

``AccessResult`` (in :mod:`repro.engine.access`) remains as the materialised
view of one finished execution for callers that want all rows at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cost import CostSplit
    from repro.engine.access import AccessResult
    from repro.engine.transactions import Snapshot

#: Default number of rows per :class:`RowBatch` pulled through the batched
#: executor (the ``Database(batch_size=...)`` default).  Scans align batches
#: to page boundaries, so actual batches round up to whole pages.
DEFAULT_BATCH_SIZE = 256


class RowBatch(list):
    """One batch of rows flowing between plan nodes.

    A plain ``list`` subclass (C-speed append/extend/iteration, no wrapper
    indirection on the hot path) whose type marks the batch boundary of the
    set-at-a-time protocol.  Scan batches hold *live* heap-page dicts --
    consumers that keep or mutate rows must copy them, exactly as with the
    child-context rows of the row-at-a-time pipeline (``Database`` copies at
    the plan root before handing rows to callers).

    The row-dict view is the source of truth; per-column vectors are
    *lazily materialised* by :meth:`column`/:meth:`key_vector` with one
    C-driven pass when a kernel wants columnar input (sort keys, group
    keys, join keys).  Vectors are never cached on the batch: batches are
    consumed exactly once, and caching would tax the append/extend hot
    path of every producer for a view most batches never need.
    """

    __slots__ = ()

    def column(self, name: str) -> list[Any]:
        """This batch's values for one column, as a fresh list."""
        return [row[name] for row in self]

    def key_vector(self, columns: Sequence[str]) -> list[Any]:
        """Per-row key values for ``columns``: scalars for a single
        column, tuples for composites (matching :func:`_key_getter`)."""
        if len(columns) == 1:
            return [row[columns[0]] for row in self]
        return list(map(itemgetter(*columns), self))


@dataclass(slots=True)
class ExecutionCounters:
    """Counters charged by one plan node (or one standalone execution).

    Under a plan tree each node owns an instance, so per-node actual work is
    observable after a run; access paths executed outside a tree charge the
    single instance their context carries, exactly as before.  ``slots=True``
    because counter attribute bumps sit on the per-row/per-page hot path.
    """

    rows_examined: int = 0
    pages_visited: int = 0
    lookups: int = 0
    rows_emitted: int = 0
    #: Inner-path probes performed by join operators (one per outer row per
    #: join step).
    join_probes: int = 0
    #: Rows this node produced to its consumer (the EXPLAIN ANALYZE
    #: ``actual rows``); maintained by :meth:`PlanNode.iter_rows`.
    rows_out: int = 0


@dataclass(slots=True)
class SharedQueryState:
    """Per-execution state shared by every context of one plan tree."""

    rewritten_sql: str | None = None


@dataclass(slots=True)
class ExecutionContext:
    """Per-execution state threaded through a plan's row pipelines.

    Parameters
    ----------
    limit:
        Stop after emitting this many rows (``None`` = no limit).  The scan
        kernel checks the budget between rows and between pages, so a
        satisfied LIMIT never sweeps the remaining pages; join operators
        additionally stop pulling outer rows.
    projection:
        Columns to keep in emitted rows (``None`` = whole row).  Projection
        happens at emission time so residual predicates still see every
        column.
    count_output:
        Whether :meth:`emit` counts towards ``counters.rows_emitted``.  True
        for the root context; child contexts (see :meth:`child`) disable it
        so that intermediate rows flowing into a join operator do not distort
        the root's LIMIT accounting.
    """

    limit: int | None = None
    projection: tuple[str, ...] | None = None
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)
    count_output: bool = True
    #: False on join inner-probe contexts, whose rewritten SQL nobody reads
    #: -- lets the CM scan skip rendering it once per probe.
    report_rewritten_sql: bool = True
    #: State shared by every context of one execution (a child or adopted
    #: context sees the same object), e.g. the CM scan's rewritten SQL.
    shared: SharedQueryState = field(default_factory=SharedQueryState)
    #: MVCC snapshot the scan kernels filter row versions against (``None``
    #: = no visibility filtering; the pre-MVCC fast path).  Pinned once per
    #: query and inherited by every child/adopted context so all scans of
    #: one execution -- including join inner probes -- see the same state.
    snapshot: "Snapshot | None" = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.projection is not None:
            self.projection = tuple(self.projection)

    @property
    def rewritten_sql(self) -> str | None:
        """The CM scan's rewritten SQL (shared across the whole plan)."""
        return self.shared.rewritten_sql

    @rewritten_sql.setter
    def rewritten_sql(self, value: str | None) -> None:
        self.shared.rewritten_sql = value

    def child(self) -> "ExecutionContext":
        """A context for a sub-pipeline feeding a parent operator.

        The child shares the parent's :class:`ExecutionCounters` (work of an
        intra-node pipeline lands on the operator that caused it; a child
        *node* re-homes the context onto its own counters via
        :meth:`PlanNode.adopt`), but it carries no LIMIT budget (the parent
        decides when to stop pulling), no projection (the parent needs whole
        rows to merge), and its emissions do not count as output rows.
        """
        return ExecutionContext(
            counters=self.counters,
            count_output=False,
            shared=self.shared,
            snapshot=self.snapshot,
        )

    @property
    def limit_reached(self) -> bool:
        return self.limit is not None and self.counters.rows_emitted >= self.limit

    def emit(self, row: Mapping[str, Any], *, fresh: bool = False) -> dict[str, Any]:
        """Count one output row and apply the projection.

        Root contexts copy the row: emitted rows reach callers (``stream``,
        ``QueryResult.rows``) who may mutate them, and handing out the live
        heap-page dict would corrupt the page, the indexes built over it and
        the statistics sample.  Join operators pass ``fresh=True`` because
        their merged ``{**outer, **inner}`` dict is already a private copy,
        skipping a second per-row copy on the output hot path.  Child
        contexts skip the copy too -- their rows only feed a parent
        operator, which builds a fresh merged dict anyway.
        """
        if self.count_output:
            self.counters.rows_emitted += 1
            if self.projection is None:
                return row if fresh and isinstance(row, dict) else dict(row)
        if self.projection is None:
            return row if isinstance(row, dict) else dict(row)
        return {column: row[column] for column in self.projection}


def _chunk_rows(
    rows: Iterator[dict[str, Any]],
    batch_size: int,
    demand: int | None = None,
) -> Iterator[RowBatch]:
    """Deliver a row iterator as batches, pulling at most ``demand`` rows.

    The compatibility bridge between the two protocols: rows are produced
    lazily by the underlying generator (so its accounting -- page reads, CPU
    charges, early-termination points -- is exactly the row-at-a-time
    pipeline's) and only *delivered* in batches.  The source generator is
    closed deterministically when the budget is met or the consumer stops,
    which runs the upstream ``finally`` charges just as abandoning an
    ``iter_rows`` pipeline does.
    """
    remaining = demand
    close = getattr(rows, "close", None)
    try:
        if remaining is not None and remaining <= 0:
            return
        batch = RowBatch()
        append = batch.append
        for row in rows:
            append(row)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
            if len(batch) >= batch_size:
                yield batch
                batch = RowBatch()
                append = batch.append
        if batch:
            yield batch
    finally:
        if close is not None:
            close()


def _truncated_batches(
    stream: Iterator[RowBatch], demand: int | None
) -> Iterator[RowBatch]:
    """Guard a batch stream: drop empties, cap total rows at ``demand``.

    Central enforcement point shared by every ``iter_batches`` wrapper: a
    blocking node (Sort, TopK, GroupBy) can ignore its demand entirely --
    its full internal work matches the row-at-a-time pipeline anyway -- and
    still never over-produce, so per-node ``rows_out`` stays identical to
    what a row-at-a-time consumer would have pulled.
    """
    produced = 0
    try:
        for batch in stream:
            if not batch:
                continue
            if demand is not None and produced + len(batch) > demand:
                batch = RowBatch(batch[: demand - produced])
            produced += len(batch)
            yield batch
            if demand is not None and produced >= demand:
                return
    finally:
        close = getattr(stream, "close", None)
        if close is not None:
            close()


def _emit_batch(context: ExecutionContext, batch: RowBatch) -> RowBatch:
    """Batch-level twin of :meth:`ExecutionContext.emit` for vectorized nodes.

    Vectorized ``_stream_batches`` implementations only run when the context
    carries no projection and no row budget (anything else falls back to the
    chunked row pipeline), so emission parity reduces to the output count.
    """
    if context.count_output:
        context.counters.rows_emitted += len(batch)
    return batch


def iter_batches_of(
    source: "RowSource",
    context: ExecutionContext,
    batch_size: int,
    demand: int | None = None,
    run_reads: bool = True,
) -> Iterator[RowBatch]:
    """Pull batches from any row source, falling back to chunked rows.

    Plan nodes and access paths implement ``iter_batches`` natively; any
    other :class:`RowSource` is served through :func:`_chunk_rows` over its
    ``iter_rows`` pipeline.
    """
    method = getattr(source, "iter_batches", None)
    if method is not None:
        return method(context, batch_size, demand, run_reads)
    return _chunk_rows(source.iter_rows(context), batch_size, demand)


class RowSource(Protocol):
    """Anything that can stream rows under an :class:`ExecutionContext`.

    Access paths and plan nodes both satisfy this protocol, which is what
    lets join operators nest into left-deep chains.
    """

    name: str

    def iter_rows(
        self, context: ExecutionContext | None = None
    ) -> Iterator[dict[str, Any]]: ...  # pragma: no cover - protocol


class PlanNode:
    """One operator of a physical plan tree.

    Every node is a row source with two faces:

    * an *execution* face: :meth:`iter_rows` streams the node's output rows,
      charging physical work to the node's own :attr:`actual` counters (the
      context is re-homed via :meth:`adopt`, so a parent pulling from a
      child automatically attributes the child's work to the child);
    * a *planning* face: the planner stamps per-node estimates --
      :attr:`est_rows`, :attr:`est_pages`, :attr:`cost_split` (this node's
      own upfront/streaming cost) -- and the plan root additionally carries
      :attr:`est_cost_ms` (the whole tree) and :attr:`structure` (the
      pipeline rendering shown by ``Database.explain``).

    ``EXPLAIN ANALYZE`` is nothing more than walking an executed tree and
    printing both faces side by side (:func:`repro.engine.plan.render_plan`).
    """

    name = "node"
    #: True for pipeline decorators (Sort/TopK/GroupBy/Aggregate/Limit/
    #: Project) that plan ranking and result labelling look through: the
    #: ``method`` of a decorated plan is the underlying scan's or join's.
    is_decorator = False
    #: Whether rows leaving this node are private dicts.  False only for
    #: scans, whose rows are live heap-page dicts: whoever emits them to a
    #: caller must copy first (``ExecutionContext.emit`` handles it).
    produces_fresh_rows = True

    __slots__ = (
        "actual",
        "est_rows",
        "est_pages",
        "cost_split",
        "est_cost_ms",
        "structure",
    )

    def __init__(self) -> None:
        #: Runtime counters of *this node's own* work, filled by execution.
        self.actual = ExecutionCounters()
        #: Planner estimate of the rows this node produces.
        self.est_rows: float | None = None
        #: Planner estimate of the heap pages this node reads itself.
        self.est_pages: float | None = None
        #: This node's own cost, split for LIMIT-aware selection.
        self.cost_split: "CostSplit | None" = None
        #: Whole-subtree estimated cost; set by the planner on plan roots.
        self.est_cost_ms: float | None = None
        #: The pipeline rendering (plan roots; ``Database.explain`` shows it).
        self.structure: str = ""

    # -- streaming interface --------------------------------------------------

    def iter_rows(
        self, context: ExecutionContext | None = None
    ) -> Iterator[dict[str, Any]]:
        """Stream output rows, charging this node's :attr:`actual` counters."""
        context = self.adopt(context or ExecutionContext())
        if context.limit_reached:
            return
        for row in self._stream(context):
            self.actual.rows_out += 1
            yield row

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def iter_batches(
        self,
        context: ExecutionContext | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        demand: int | None = None,
        run_reads: bool = True,
    ) -> Iterator[RowBatch]:
        """Stream output as :class:`RowBatch` objects (the batched protocol).

        Parameters
        ----------
        batch_size:
            Target rows per batch.  Page-producing scans align batches to
            page boundaries, so batches may round up to whole pages.
        demand:
            Upper bound on the total rows the consumer will take (set by
            ``LimitNode``).  A finite demand makes streaming operators
            degrade to lazy row-at-a-time production so early termination
            charges exactly what the row pipeline would; the wrapper also
            hard-truncates, so no node ever over-reports ``rows_out``.
        run_reads:
            Whether multi-page read-ahead runs are allowed beneath this
            pull.  Operators that interleave their own I/O with the pull
            (tuple-at-a-time probe joins) pass ``False`` so the simulated
            head position stays identical to the row-at-a-time order.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        context = self.adopt(context or ExecutionContext())
        if context.limit_reached or (demand is not None and demand <= 0):
            return
        actual = self.actual
        stream = self._stream_batches(context, batch_size, demand, run_reads)
        for batch in _truncated_batches(stream, demand):
            actual.rows_out += len(batch)
            yield batch

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        """Default batch production: chunk this node's row pipeline.

        Exact row-at-a-time accounting by construction -- rows are produced
        lazily by ``_stream`` (whose ``context.emit`` calls handle output
        counting and projection) and only delivered in batches.  Hot
        operators override this with vectorized implementations gated to
        the cases whose accounting they reproduce; everything else -- and
        every demand-limited pull -- lands here.
        """
        yield from _chunk_rows(self._stream(context), batch_size, demand)

    def _vectorizable(
        self, context: ExecutionContext, demand: int | None
    ) -> bool:
        """Whether a vectorized override may run under this context.

        A finite demand, a context-level row budget or a context projection
        all carry per-row semantics the vectorized paths do not replicate;
        overrides fall back to the chunked row pipeline for them.
        """
        return (
            demand is None
            and context.limit is None
            and context.projection is None
        )

    def adopt(self, context: ExecutionContext) -> ExecutionContext:
        """``context`` re-homed onto this node's counters (same budget/flags)."""
        if context.counters is self.actual:
            return context
        return ExecutionContext(
            limit=context.limit,
            projection=context.projection,
            counters=self.actual,
            count_output=context.count_output,
            report_rewritten_sql=context.report_rewritten_sql,
            shared=context.shared,
            snapshot=context.snapshot,
        )

    def execute(self, context: ExecutionContext | None = None) -> "AccessResult":
        """Materialise the stream into an :class:`AccessResult` (compatibility)."""
        return materialize(self, context)

    # -- tree structure -------------------------------------------------------

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counters(self) -> ExecutionCounters:
        """Whole-subtree totals (the old shared-counter view of a run)."""
        total = ExecutionCounters()
        for node in self.walk():
            total.rows_examined += node.actual.rows_examined
            total.pages_visited += node.actual.pages_visited
            total.lookups += node.actual.lookups
            total.join_probes += node.actual.join_probes
        total.rows_out = self.actual.rows_out
        total.rows_emitted = self.actual.rows_out
        return total

    # -- planner-facing views -------------------------------------------------

    @property
    def estimated_cost_ms(self) -> float:
        """The planner's whole-tree estimate (plan roots)."""
        return self.est_cost_ms if self.est_cost_ms is not None else 0.0

    @property
    def method(self) -> str:
        """The plan's engine: the topmost non-decorator node's name."""
        node: PlanNode = self
        while node.is_decorator:
            node = node.source  # type: ignore[attr-defined]
        return node.name

    def join_steps(self) -> list["JoinOperator"]:
        """The join operators of this plan, root first (empty for scans)."""
        node: PlanNode = self
        while node.is_decorator:
            node = node.source  # type: ignore[attr-defined]
        steps: list[JoinOperator] = []
        while isinstance(node, JoinOperator):
            steps.append(node)
            node = node.source  # type: ignore[assignment]
        return steps

    # -- display --------------------------------------------------------------

    def describe_detail(self) -> str:
        """The inner summary shown inside EXPLAIN labels (may be empty)."""
        return ""

    def label(self) -> str:
        """One-line operator label for the EXPLAIN ANALYZE tree."""
        detail = self.describe_detail()
        return f"{self.name}[{detail}]" if detail else self.name


class ScanNode(PlanNode):
    """Leaf node wrapping one executable access path."""

    produces_fresh_rows = False

    __slots__ = ("path",)

    def __init__(self, path: "RowSource") -> None:
        super().__init__()
        self.path = path

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.path.name

    @property
    def table(self) -> Any:
        """The scanned table (lets shared CPU-charging helpers reach the disk)."""
        return self.path.table  # type: ignore[attr-defined]

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        yield from self.path.iter_rows(context)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Delegate to the access path's own batch production (bypassing its
        # public wrapper: truncation and rows_out accounting happen once, in
        # this node's iter_batches).
        inner = getattr(self.path, "_stream_batches", None)
        if inner is None:
            yield from _chunk_rows(self.path.iter_rows(context), batch_size, demand)
        else:
            yield from inner(context, batch_size, demand, run_reads)

    def label(self) -> str:
        table = getattr(self.path, "table", None)
        where = f"{table.name}: " if table is not None else ""
        detail = self.structure or self.path.__class__.__name__
        return f"{self.name}({where}{detail})"


class ProbeNode(PlanNode):
    """The repeatedly re-bound inner side of a tuple-at-a-time join.

    Not independently streamable: the owning :class:`ProbeJoin` binds a
    fresh inner access path per outer row and runs it under this node's
    counters, so per-probe pages and rows show up as this leaf's actuals in
    EXPLAIN ANALYZE.
    """

    name = "inner_probe"
    produces_fresh_rows = False

    __slots__ = ("probe",)

    def __init__(self, probe: "InnerProbe") -> None:
        super().__init__()
        self.probe = probe

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        raise RuntimeError(
            "probe nodes are driven per outer row by their join operator"
        )

    def label(self) -> str:
        return f"{self.name}({self.probe.describe()})"


def materialize(
    source: "RowSource", context: ExecutionContext | None = None
) -> AccessResult:
    """Drain a row source into an :class:`~repro.engine.access.AccessResult`.

    The one place the stream-to-materialised conversion lives: both
    :meth:`AccessPath.execute` and :meth:`PlanNode.execute` delegate here,
    so a counter added to ``AccessResult`` is wired up exactly once.  Plan
    nodes report their whole-subtree totals; bare access paths report the
    context's counters, as before.
    """
    from repro.engine.access import AccessResult

    context = context or ExecutionContext()
    rows = list(source.iter_rows(context))
    if isinstance(source, PlanNode):
        counters = source.total_counters()
    else:
        counters = context.counters
    return AccessResult(
        rows=rows,
        rows_examined=counters.rows_examined,
        pages_visited=counters.pages_visited,
        lookups=counters.lookups,
        join_probes=counters.join_probes,
        rows_emitted=counters.rows_emitted,
        rewritten_sql=context.rewritten_sql,
    )


class JoinOperator(PlanNode):
    """Base streaming equi-join operator: a plan node over an outer input.

    ``source`` is the outer input (a plan node, or a bare access path when
    composed by hand).  Subclasses implement :meth:`_stream`, pulling from
    the outer source -- whose work, when it is a node, lands on its own
    counters -- and from whatever inner input they own; intra-operator
    pipelines run under :meth:`ExecutionContext.child` contexts, so their
    work lands on this operator (or on its inner leaf node).

    Merged rows are ``{**outer, **inner}``; on the join keys both sides
    agree by construction, and :meth:`repro.engine.database.Database` rejects
    queries whose joined schemas would make any *other* column ambiguous, so
    the merge never silently resolves a real collision.
    """

    name = "join"
    #: The inner strategy this operator was planned with (for EXPLAIN).
    strategy = ""

    __slots__ = ("source",)

    def __init__(self, source: "RowSource") -> None:
        super().__init__()
        self.source = source

    @property
    def children(self) -> tuple[PlanNode, ...]:
        nodes = [self.source] if isinstance(self.source, PlanNode) else []
        inner = getattr(self, "inner", None)
        if inner is None:
            inner = getattr(self, "inner_path", None)
        if isinstance(inner, PlanNode):
            nodes.append(inner)
        return tuple(nodes)

    def describe_detail(self) -> str:
        """The inner-input summary shown inside EXPLAIN structure labels."""
        return self.strategy

    def describe(self) -> str:
        source = getattr(self.source, "describe", self.source.__class__.__name__)
        source_text = source() if callable(source) else str(source)
        return f"{source_text} -> {self.name}[{self.describe_detail()}]"


class InnerProbe(Protocol):
    """Builds a fresh inner access path for one outer row's join-key values."""

    def bind(self, outer_row: Mapping[str, Any]) -> "RowSource": ...  # pragma: no cover

    def describe(self) -> str: ...  # pragma: no cover - protocol


class ProbeJoin(JoinOperator):
    """Tuple-at-a-time join: pull outer rows, probe the inner per row.

    ``probe`` builds, for each outer row, a fresh inner access path with the
    join-key equalities bound as predicates (see
    :class:`repro.engine.access.InnerPathBuilder`).  Because the bound
    equalities are ordinary predicates, the inner path both *finds* matches
    (via an index, a CM, or a residual-filtered scan) and *verifies* them --
    the operator itself only merges rows.
    """

    __slots__ = ("probe", "inner")

    def __init__(self, source: "RowSource", probe: "InnerProbe") -> None:
        super().__init__(source)
        self.probe = probe
        #: Leaf node accumulating the per-probe inner-path work.
        self.inner = ProbeNode(probe)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        for outer_row in self.source.iter_rows(context.child()):
            context.counters.join_probes += 1
            inner_path = self.probe.bind(outer_row)
            inner_context = self.inner.adopt(context.child())
            inner_context.report_rewritten_sql = False
            for inner_row in inner_path.iter_rows(inner_context):
                self.inner.actual.rows_out += 1
                yield context.emit({**outer_row, **inner_row}, fresh=True)
                if context.limit_reached:
                    return

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Probing issues inner-path I/O per outer row, so this operator is
        # itself an interleaver: with a finite demand the chunked row
        # pipeline preserves the exact early-termination point, and beneath
        # *another* probe join (run_reads=False) it preserves the exact
        # outer/inner read interleaving.  The full-drain top-level case --
        # the hot one -- runs vectorized: outer rows arrive in page-aligned
        # batches (pulled with run_reads=False, because this operator's
        # probes interleave with the outer sweep), each probe reuses one
        # inner context, and merged rows leave in batches.
        if not run_reads or not self._vectorizable(context, demand):
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        counters = context.counters
        inner_node = self.inner
        inner_counters = inner_node.actual
        inner_context = inner_node.adopt(context.child())
        inner_context.report_rewritten_sql = False
        bind = self.probe.bind
        out = RowBatch()
        for outer_batch in iter_batches_of(
            self.source, context.child(), batch_size, None, False
        ):
            counters.join_probes += len(outer_batch)
            for outer_row in outer_batch:
                matched = 0
                for inner_row in bind(outer_row).iter_rows(inner_context):
                    matched += 1
                    out.append({**outer_row, **inner_row})
                if matched:
                    inner_counters.rows_out += matched
            if len(out) >= batch_size:
                yield _emit_batch(context, out)
                out = RowBatch()
        if out:
            yield _emit_batch(context, out)

    def describe_detail(self) -> str:
        return self.probe.describe()


class NestedLoopJoin(ProbeJoin):
    """Naive nested loops: re-scan the inner table for every outer row.

    The inner path is a sequential scan with the bound join keys applied as
    residual filters, so each outer row costs a full inner sweep -- O(N*M)
    page reads, kept only as the strategy of last resort (or for tiny inners
    whose rescans stay buffer-pool resident) now that :class:`HashJoin` and
    :class:`SortMergeJoin` cover the unindexed case in O(N + M).
    """

    name = "nested_loop_join"
    strategy = "seq_scan"

    __slots__ = ()


class IndexNestedLoopJoin(ProbeJoin):
    """Index nested loops: probe an inner access structure per outer row.

    The probe binds ``Equals(inner_key, outer_value)`` predicates and runs
    them through a clustered-index scan, a sorted secondary-index scan, or a
    correlation-map scan -- whichever the planner costed cheapest.  The CM
    case is the paper's core trick applied across tables: when the join key
    is correlated with the inner table's clustered key, a tiny memory-
    resident CM narrows each probe to a few clustered buckets instead of a
    B+Tree descent per matching tuple.
    """

    name = "index_nested_loop_join"

    __slots__ = ("strategy",)

    def __init__(self, source: "RowSource", probe: "InnerProbe", strategy: str) -> None:
        super().__init__(source, probe)
        self.strategy = strategy


def _key_getter(columns: Sequence[str]) -> Callable[[Mapping[str, Any]], Any]:
    """A function extracting the join key of one row.

    Built on :func:`operator.itemgetter` (a C-level extractor): a scalar for
    single-column keys, a tuple for composites.  Both sides of a hash join
    use the same construction, so build and probe keys always agree.
    """
    columns = tuple(columns)
    if len(columns) == 1:
        return itemgetter(columns[0])
    return itemgetter(*columns)


def _charge_cpu(path: "RowSource", tuples: int) -> None:
    """Charge in-operator CPU work to the simulated disk.

    Hash builds/probes and explicit sorts do per-row work that never touches
    a page; charging it (through the inner path's table, which reaches the
    shared disk model) keeps measured ``elapsed_ms`` aligned with what
    ``hash_join_cost``/``sort_merge_join_cost`` price, exactly as access
    paths charge CPU per examined row.
    """
    if tuples <= 0:
        return
    cpu_disk = getattr(path, "cpu_disk", None)
    if cpu_disk is not None:
        cpu_disk.charge_cpu_tuples(tuples)
        return
    table = getattr(path, "table", None)
    if table is not None:
        table.buffer_pool.disk.charge_cpu_tuples(tuples)


def _sort_cpu_tuples(rows: int) -> int:
    """The comparison count an explicit sort is charged as (cost-model's)."""
    from repro.core.cost import sort_comparison_count

    return int(sort_comparison_count(rows))


def _ordering_key_getter(
    columns: Sequence[str],
) -> Callable[[Mapping[str, Any]], tuple[Any, ...]]:
    """A join-key extractor whose keys also order in the presence of None.

    Equality between wrapped keys is exactly raw-value equality (so merge
    matching agrees with the hash and nested-loop operators, where
    ``None == None`` matches), but ordering comparisons never reach a
    ``None < value`` — rows with NULL keys simply sort after everything
    else instead of crashing the merge.
    """
    columns = tuple(columns)

    def key_of(row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(
            (row[column] is None, row[column]) for column in columns
        )

    return key_of


def _sorted_with_keys(
    rows: list[Mapping[str, Any]], columns: Sequence[str]
) -> tuple[list[Any], list[Mapping[str, Any]]]:
    """``rows`` sorted by the NULL-aware merge key, plus the key vector.

    The columnar twin of ``sorted(rows, key=_ordering_key_getter(columns))``:
    per-column ``(is_none, value)`` pair vectors are built with one
    comprehension pass each, zipped into per-row key tuples (the exact
    structure :func:`_ordering_key_getter` produces, so both construction
    routes order and equate identically), and one C-driven sort over
    ``(key, index, row)`` triples replaces per-row key building.  The unique
    index keeps the sort stable and keeps the row dicts out of comparisons.
    Returns ``(sorted_keys, sorted_rows)``.
    """
    if not rows:
        return [], []
    pair_columns = []
    for column in columns:
        values = [row[column] for row in rows]
        pair_columns.append([(value is None, value) for value in values])
    keys = list(zip(*pair_columns))
    decorated = sorted(zip(keys, range(len(rows)), rows))
    return [entry[0] for entry in decorated], [entry[2] for entry in decorated]


class HashJoin(JoinOperator):
    """Streaming hash join: build one side's hash table, stream the other.

    ``inner_path`` is an access path over the joined table (a sequential
    scan carrying the table's local predicates).  ``build_side`` picks which
    input is hashed -- the planner chooses the side with fewer sampled rows:

    * ``"inner"`` -- the inner table is scanned once into a hash table on
      its join-key columns, then *outer* rows stream through it.  The outer
      stays fully pipelined, so a satisfied LIMIT stops pulling outer rows
      exactly as the probe joins do.
    * ``"outer"`` -- the outer input is drained into the hash table and the
      *inner* table streams through it; a satisfied LIMIT abandons the inner
      sweep with the remaining inner pages unread.

    Either way each input is read exactly once -- O(N + M) page reads,
    versus the nested-loop rescan's O(N*M).  An empty build side short-
    circuits: the probe side is never read at all.
    """

    name = "hash_join"
    strategy = "hash"

    __slots__ = (
        "inner_path",
        "join_on",
        "build_side",
        "inner_label",
        "_outer_key",
        "_inner_key",
    )

    def __init__(
        self,
        source: "RowSource",
        inner_path: "RowSource",
        join_on: Sequence[tuple[str, str]],
        *,
        build_side: str = "inner",
        inner_label: str = "",
    ) -> None:
        if build_side not in ("inner", "outer"):
            raise ValueError(f"unknown build side {build_side!r}")
        super().__init__(source)
        self.inner_path = inner_path
        self.join_on = tuple(join_on)
        self.build_side = build_side
        self.inner_label = inner_label
        self._outer_key = _key_getter([outer for outer, _inner in self.join_on])
        self._inner_key = _key_getter([inner for _outer, inner in self.join_on])

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        # One implementation for both orientations: only which input builds,
        # which key extracts, and the outer/inner roles of the merged dict
        # depend on the build side.  Per-probe rewritten SQL is suppressed on
        # whichever role the inner path plays (nobody reads it there).
        build_inner = self.build_side == "inner"
        build_source = self.inner_path if build_inner else self.source
        probe_source = self.source if build_inner else self.inner_path
        build_key = self._inner_key if build_inner else self._outer_key
        probe_key = self._outer_key if build_inner else self._inner_key

        build_context = context.child()
        if build_inner:
            build_context.report_rewritten_sql = False
        table: dict[tuple[Any, ...], list[Mapping[str, Any]]] = {}
        build_rows = 0
        try:
            for row in build_source.iter_rows(build_context):
                table.setdefault(build_key(row), []).append(row)
                build_rows += 1
        finally:
            _charge_cpu(self.inner_path, build_rows)
        if not table:
            return  # empty build side: never pull a single probe row

        probe_context = context.child()
        if not build_inner:
            probe_context.report_rewritten_sql = False
        probe_rows = 0
        try:
            for probe_row in probe_source.iter_rows(probe_context):
                context.counters.join_probes += 1
                probe_rows += 1
                for matched in table.get(probe_key(probe_row), ()):
                    outer_row, inner_row = (
                        (probe_row, matched) if build_inner else (matched, probe_row)
                    )
                    yield context.emit({**outer_row, **inner_row}, fresh=True)
                    if context.limit_reached:
                        return
        finally:
            _charge_cpu(self.inner_path, probe_rows)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # The hash table itself issues no I/O, so batching reorders nothing:
        # the build side drains fully before the first probe in both
        # protocols, and probe-side page reads interleave only with memory
        # work.  run_reads is forwarded unchanged -- beneath a probe join the
        # inputs degrade to page-at-a-time reads, keeping the simulated head
        # movement identical.  A finite demand (LIMIT above) falls back to
        # the chunked row pipeline for its exact mid-probe stop.
        if not self._vectorizable(context, demand):
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        build_inner = self.build_side == "inner"
        build_source = self.inner_path if build_inner else self.source
        probe_source = self.source if build_inner else self.inner_path
        build_key = self._inner_key if build_inner else self._outer_key
        probe_key = self._outer_key if build_inner else self._inner_key

        build_context = context.child()
        if build_inner:
            build_context.report_rewritten_sql = False
        table: dict[Any, list[Mapping[str, Any]]] = {}
        setdefault = table.setdefault
        build_rows = 0
        try:
            for batch in iter_batches_of(
                build_source, build_context, batch_size, None, run_reads
            ):
                build_rows += len(batch)
                # Keys for the whole batch come from one C-level map pass;
                # the remaining per-row work is the table insert itself.
                for key, row in zip(map(build_key, batch), batch):
                    setdefault(key, []).append(row)
        finally:
            _charge_cpu(self.inner_path, build_rows)
        if not table:
            return  # empty build side: never pull a single probe row

        probe_context = context.child()
        if not build_inner:
            probe_context.report_rewritten_sql = False
        counters = context.counters
        get = table.get
        empty: tuple = ()
        probe_rows = 0
        out = RowBatch()
        try:
            for batch in iter_batches_of(
                probe_source, probe_context, batch_size, None, run_reads
            ):
                probe_rows += len(batch)
                counters.join_probes += len(batch)
                # One C-driven comprehension per probe batch: key extraction
                # (itemgetter), hash lookup and dict merge all run without a
                # per-row interpreter frame.
                if build_inner:
                    out.extend(
                        [
                            {**probe_row, **inner_row}
                            for probe_row, key in zip(batch, map(probe_key, batch))
                            for inner_row in get(key, empty)
                        ]
                    )
                else:
                    out.extend(
                        [
                            {**outer_row, **probe_row}
                            for probe_row, key in zip(batch, map(probe_key, batch))
                            for outer_row in get(key, empty)
                        ]
                    )
                if len(out) >= batch_size:
                    yield _emit_batch(context, out)
                    out = RowBatch()
        finally:
            _charge_cpu(self.inner_path, probe_rows)
        if out:
            yield _emit_batch(context, out)

    def describe_detail(self) -> str:
        keys = ", ".join(inner for _outer, inner in self.join_on)
        label = self.inner_label or self.inner_path.__class__.__name__
        return f"{label}({keys}) hash build={self.build_side}"


class SortMergeJoin(JoinOperator):
    """Sort-merge join: merge the two inputs in join-key order.

    ``inner_path`` is an access path over the joined table.  Pre-sorted
    inputs merge directly: ``inner_sorted=True`` declares that the inner
    path already yields rows in join-key order (its clustered attribute *is*
    the join key and the heap has no unsorted tail), so the merge sweeps its
    pages lazily and a satisfied LIMIT abandons the sweep early.
    ``outer_sorted`` declares the same of the outer input (a scan of a table
    clustered on the outer join column).  Any side not declared sorted is
    materialised and explicitly sorted first -- the planner charges that
    sort from sampled row counts, which is what steers it towards the
    smaller side / a hash join when nothing is pre-ordered.

    Duplicate keys merge as group cross-products, so all-duplicate inputs
    degrade gracefully to the full cartesian block rather than losing rows.

    Under the batched protocol the common both-sides-materialised case runs
    a columnar merge (:meth:`_stream_batches`): all I/O happens in two full
    upfront drains -- outer first, inner only once the outer proved
    non-empty, exactly as in the row pipeline -- so the merge interior is
    pure memory work, free to run over sorted key vectors with ``groupby``
    and ``bisect`` instead of per-row key construction.  A *pre-sorted*
    (lazy) side keeps the chunked row production instead: a lazy merge
    interleaves outer and inner page reads row by row, and may abandon the
    outer sweep the moment the inner side is exhausted -- both behaviours a
    vectorized read-ahead could not reproduce bit-identically.
    """

    name = "sort_merge_join"
    strategy = "merge"

    __slots__ = (
        "inner_path",
        "join_on",
        "inner_sorted",
        "outer_sorted",
        "inner_label",
        "_outer_key",
        "_inner_key",
    )

    def __init__(
        self,
        source: "RowSource",
        inner_path: "RowSource",
        join_on: Sequence[tuple[str, str]],
        *,
        inner_sorted: bool = False,
        outer_sorted: bool = False,
        inner_label: str = "",
    ) -> None:
        super().__init__(source)
        self.inner_path = inner_path
        self.join_on = tuple(join_on)
        self.inner_sorted = inner_sorted
        self.outer_sorted = outer_sorted
        self.inner_label = inner_label
        self._outer_key = _ordering_key_getter(
            [outer for outer, _inner in self.join_on]
        )
        self._inner_key = _ordering_key_getter(
            [inner for _outer, inner in self.join_on]
        )

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        outer_rows: Iterable[Mapping[str, Any]]
        if self.outer_sorted:
            # Lazy: the outer already streams in key order, so the merge
            # pulls outer rows on demand and a satisfied LIMIT stops the
            # outer sweep exactly as the probe joins do.
            outer_rows = self.source.iter_rows(context.child())
        else:
            outer_rows = sorted(
                self.source.iter_rows(context.child()), key=self._outer_key
            )
            if not outer_rows:
                return  # nothing to merge: the inner is never read
            _charge_cpu(self.inner_path, _sort_cpu_tuples(len(outer_rows)))
        inner_context = context.child()
        inner_context.report_rewritten_sql = False

        def inner_in_key_order() -> Iterator[Mapping[str, Any]]:
            if self.inner_sorted:
                # Heap order is key order: pull inner pages on demand,
                # so early termination leaves the rest unread.
                return self.inner_path.iter_rows(inner_context)
            rows = sorted(
                self.inner_path.iter_rows(inner_context), key=self._inner_key
            )
            _charge_cpu(self.inner_path, _sort_cpu_tuples(len(rows)))
            return iter(rows)

        yield from self._merge(outer_rows, inner_in_key_order, context)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Vectorized only when both inputs get materialised and sorted in
        # memory: the I/O then happens in two full upfront drains with
        # nothing interleaved, so batching the reads and running the merge
        # columnar changes no simulated number.  A lazy pre-sorted side, a
        # finite demand or a context budget all keep the chunked row
        # pipeline (see the class docstring).
        if (
            self.inner_sorted
            or self.outer_sorted
            or not self._vectorizable(context, demand)
        ):
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        from bisect import bisect_left, bisect_right
        from itertools import groupby

        outer_rows: list[Mapping[str, Any]] = []
        for batch in iter_batches_of(
            self.source, context.child(), batch_size, None, run_reads
        ):
            outer_rows.extend(batch)
        if not outer_rows:
            return  # nothing to merge: the inner is never read
        outer_columns = [outer for outer, _inner in self.join_on]
        inner_columns = [inner for _outer, inner in self.join_on]
        outer_keys, outer_rows = _sorted_with_keys(outer_rows, outer_columns)
        _charge_cpu(self.inner_path, _sort_cpu_tuples(len(outer_rows)))

        inner_context = context.child()
        inner_context.report_rewritten_sql = False
        inner_rows: list[Mapping[str, Any]] = []
        for batch in iter_batches_of(
            self.inner_path, inner_context, batch_size, None, run_reads
        ):
            inner_rows.extend(batch)
        inner_keys, inner_rows = _sorted_with_keys(inner_rows, inner_columns)
        _charge_cpu(self.inner_path, _sort_cpu_tuples(len(inner_rows)))

        # The merge interior, columnar: outer groups come from groupby over
        # the sorted key vector, the matching inner run from two bisects.
        # ``parked`` is the index of the inner row the row-at-a-time merge
        # would have fetched and parked; the charged fetch count below
        # reproduces its per-advance counting exactly (each fetched row
        # counts once; discovering exhaustion counts nothing).
        counters = context.counters
        n_inner = len(inner_rows)
        parked = 0
        outer_consumed = 0
        position = 0
        out = RowBatch()
        try:
            for key, group in groupby(outer_keys):
                size = sum(1 for _ in group)
                outer_group = outer_rows[position : position + size]
                position += size
                counters.join_probes += size
                outer_consumed += size
                parked = bisect_left(inner_keys, key, parked)
                if parked >= n_inner:
                    # Inner exhausted mid-skip: this group is counted (as in
                    # the row merge) and the remaining outer groups are not.
                    if out:
                        yield _emit_batch(context, out)
                    return
                if inner_keys[parked] != key:
                    continue
                end = bisect_right(inner_keys, key, parked)
                inner_group = inner_rows[parked:end]
                parked = end
                out.extend(
                    [
                        {**outer_row, **matched}
                        for outer_row in outer_group
                        for matched in inner_group
                    ]
                )
                if len(out) >= batch_size:
                    yield _emit_batch(context, out)
                    out = RowBatch()
            if out:
                yield _emit_batch(context, out)
        finally:
            inner_fetched = min(parked + 1, n_inner)
            _charge_cpu(self.inner_path, outer_consumed + inner_fetched)

    def _merge(
        self,
        outer_rows: Iterable[Mapping[str, Any]],
        inner_in_key_order: Callable[[], Iterator[Mapping[str, Any]]],
        context: ExecutionContext,
    ) -> Iterator[dict[str, Any]]:
        from itertools import groupby

        sentinel = object()
        inner_iter: Iterator[Mapping[str, Any]] | None = None
        inner_row: Any = sentinel
        inner_key: Any = None
        merged_rows = 0

        def advance() -> None:
            # One key construction per inner row, cached across the outer
            # groups that compare against the same parked row.
            nonlocal inner_row, inner_key, merged_rows
            inner_row = next(inner_iter, sentinel)
            if inner_row is not sentinel:
                inner_key = self._inner_key(inner_row)
                merged_rows += 1

        try:
            for key, group in groupby(outer_rows, key=self._outer_key):
                outer_group = list(group)
                context.counters.join_probes += len(outer_group)
                merged_rows += len(outer_group)
                if inner_iter is None:
                    # The inner input is opened (and, if unsorted,
                    # materialised and sorted) only once the outer proved
                    # non-empty, so an empty outer never reads the inner.
                    inner_iter = inner_in_key_order()
                    advance()
                while inner_row is not sentinel and inner_key < key:
                    advance()
                if inner_row is sentinel:
                    return
                inner_group: list[Mapping[str, Any]] = []
                while inner_row is not sentinel and inner_key == key:
                    inner_group.append(inner_row)
                    advance()
                for outer_row in outer_group:
                    for matched in inner_group:
                        yield context.emit({**outer_row, **matched}, fresh=True)
                        if context.limit_reached:
                            return
        finally:
            # The merge compares each consumed row once; charge that CPU.
            _charge_cpu(self.inner_path, merged_rows)

    def describe_detail(self) -> str:
        keys = ", ".join(inner for _outer, inner in self.join_on)
        sorts = [] if self.outer_sorted else ["outer"]
        if not self.inner_sorted:
            sorts.append("inner")
        label = self.inner_label or self.inner_path.__class__.__name__
        return f"{label}({keys}) merge sort={'+'.join(sorts) or 'none'}"
