"""Cooperative multi-query scheduling over one shared buffer pool.

The engine executes a query as a tree of batch-producing plan nodes
(:mod:`repro.engine.executor`); one ``RowBatch`` pull is therefore a natural
preemption point that needs no threads and no locks.  The
:class:`QueryScheduler` exploits it: it admits up to ``max_concurrent``
queries, gives each its own plan tree, :class:`ExecutionContext` and MVCC
snapshot (pinned at admission), and round-robins the *runnable* set one
scheduling quantum at a time.  A quantum pulls batches from one query's plan
until the query's per-turn budget -- heap pages visited and/or simulated
CPU-milliseconds -- is spent (one batch per turn without budgets); the query
then yields with all counters intact and resumes exactly where it stopped,
courtesy of the generator-based pipelines.

Everything physical is shared, so *cache interference is a first-class,
measurable effect*: all queries hit the same :class:`~repro.storage.
buffer_pool.BufferPool`, and each quantum's I/O window (a
:meth:`~repro.storage.disk.DiskModel.snapshot` diff) is attributed to the
query that ran it.  Interleaved readers of the same table advance through
the heap roughly in lockstep, so one query's physical page read serves the
others from cache -- the aggregate-throughput effect
``scripts/bench_concurrent.py`` measures.  Per-query latency is reported in
simulated milliseconds from submission to completion, so queueing delay and
interference are visible in the same unit as every other cost in the
repository.

Scheduling policies:

``fair``
    Strict round-robin over the runnable queries: the next query to run is
    always the one that has waited longest, so a long scan cannot starve a
    point lookup (it yields after every quantum).

``priority``
    The highest-priority runnable query runs next; ties rotate round-robin.
    Lower-priority queries run only when no higher-priority query is
    runnable, i.e. starvation of low priorities is accepted by design.

The scheduler is deterministic: no wall clock and no randomness influence
any decision, so a given submission sequence replays the exact same
interleaving -- which is what the isolation-anomaly suite builds on
(:mod:`tests.engine.test_snapshot_isolation` drives :meth:`QueryScheduler.
step` directly from seeded scripts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.engine.executor import DEFAULT_BATCH_SIZE, ExecutionContext, RowBatch
from repro.engine.plan import exchange_devices
from repro.engine.query import Query, QueryResult
from repro.engine.transactions import Snapshot, Transaction
from repro.storage.disk import DiskModel, IOBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database

#: Scheduling policies :class:`QueryScheduler` understands.
POLICIES = ("fair", "priority")

def _window_since(
    devices: Sequence[DiskModel], snapshots: Sequence[IOBreakdown]
) -> IOBreakdown:
    """Sum the I/O windows of ``devices`` since their paired ``snapshots``.

    Partitioned plans charge their reads to per-partition devices, not the
    shared disk, so a quantum's window must fold every device the plan can
    touch to attribute interleaved I/O correctly.
    """
    window = IOBreakdown()
    for device, snapshot in zip(devices, snapshots):
        window = window.add(device.window_since(snapshot))
    return window


#: Lifecycle states of a :class:`ScheduledQuery`.
WAITING = "waiting"
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"


@dataclass
class QuantumReport:
    """What one :meth:`QueryScheduler.step` call did (telemetry/tests)."""

    label: str
    batches: int
    rows: int
    pages: int
    cpu_ms: float
    finished: bool
    failed: bool = False


class ScheduledQuery:
    """One query's scheduling state, from submission to its result.

    Exposes the admission-to-completion timeline in simulated milliseconds
    (``submitted_ms`` / ``admitted_ms`` / ``finished_ms``) plus per-query
    totals: ``io`` accumulates the quantum I/O windows attributed to this
    query, ``quanta`` counts its turns.  ``result`` is the ordinary
    :class:`~repro.engine.query.QueryResult` (built from this query's own
    counters and I/O) once the query finishes; ``error`` holds the raising
    exception if it failed.
    """

    def __init__(
        self,
        query: Query,
        *,
        label: str,
        priority: int,
        page_budget: int | None,
        cpu_ms_budget: float | None,
        run_kwargs: dict[str, Any],
        snapshot: Snapshot | None,
        transaction: Transaction | None,
    ) -> None:
        self.query = query
        self.label = label
        self.priority = priority
        self.page_budget = page_budget
        self.cpu_ms_budget = cpu_ms_budget
        self.run_kwargs = run_kwargs
        self.state = WAITING
        #: The snapshot pinned at admission (or the one explicitly passed).
        self.snapshot = snapshot
        self.transaction = transaction
        self.plan = None
        self.context: ExecutionContext | None = None
        self.rows: list[dict[str, Any]] = []
        self.result: QueryResult | None = None
        self.error: Exception | None = None
        self.io = IOBreakdown()
        self.quanta = 0
        self.batches = 0
        self.submitted_ms: float = 0.0
        self.admitted_ms: float | None = None
        self.finished_ms: float | None = None
        self._iterator: Iterator[RowBatch] | None = None
        self._fresh_rows = False

    @property
    def finished(self) -> bool:
        return self.state in (FINISHED, FAILED)

    @property
    def latency_ms(self) -> float | None:
        """Simulated submission-to-completion latency (includes queueing)."""
        if self.finished_ms is None:
            return None
        return self.finished_ms - self.submitted_ms

    @property
    def queue_ms(self) -> float | None:
        """Simulated time spent waiting for admission."""
        if self.admitted_ms is None:
            return None
        return self.admitted_ms - self.submitted_ms

    def describe(self) -> str:
        return f"{self.label}[{self.state}]"


class QueryScheduler:
    """Admits queries and round-robins them one batch quantum at a time.

    Parameters
    ----------
    database:
        The engine everything runs against; its buffer pool, disk model and
        transaction manager are shared by every admitted query.
    max_concurrent:
        Admission control: at most this many queries hold execution state at
        once; the rest wait in FIFO order and are admitted as slots free up
        (their snapshots are pinned at admission, not submission).
    policy:
        ``"fair"`` or ``"priority"`` (see the module docstring).
    batch_size:
        Rows per scheduling quantum pull; defaults to the database's batch
        size.
    """

    def __init__(
        self,
        database: "Database",
        *,
        max_concurrent: int = 4,
        policy: str = "fair",
        batch_size: int | None = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r} (one of {POLICIES})")
        self.database = database
        self.max_concurrent = max_concurrent
        self.policy = policy
        size = batch_size if batch_size is not None else database.batch_size
        self.batch_size = size if size is not None else DEFAULT_BATCH_SIZE
        self._waiting: deque[ScheduledQuery] = deque()
        self._runnable: deque[ScheduledQuery] = deque()
        self._all: list[ScheduledQuery] = []

    # -- submission and admission ---------------------------------------------

    def submit(
        self,
        query: Query,
        *,
        label: str | None = None,
        priority: int = 0,
        page_budget: int | None = None,
        cpu_ms_budget: float | None = None,
        snapshot: Snapshot | None = None,
        transaction: Transaction | None = None,
        force: str | None = None,
        force_join: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> ScheduledQuery:
        """Queue a query; it is admitted as soon as a slot is free.

        ``page_budget`` / ``cpu_ms_budget`` bound one scheduling *turn* (the
        query keeps pulling batches within a turn until either is spent);
        without them a turn is exactly one batch.  ``priority`` only matters
        under the priority policy.  ``snapshot``/``transaction`` override
        the snapshot otherwise pinned at admission.
        """
        if page_budget is not None and page_budget < 1:
            raise ValueError("page_budget must be positive")
        if cpu_ms_budget is not None and cpu_ms_budget <= 0:
            raise ValueError("cpu_ms_budget must be positive")
        entry = ScheduledQuery(
            query,
            label=label or f"q{len(self._all)}",
            priority=priority,
            page_budget=page_budget,
            cpu_ms_budget=cpu_ms_budget,
            run_kwargs={
                "force": force,
                "force_join": force_join,
                "limit": limit,
                "projection": projection,
            },
            snapshot=snapshot,
            transaction=transaction,
        )
        entry.submitted_ms = self.database.elapsed_ms()
        self._all.append(entry)
        self._waiting.append(entry)
        self._admit()
        return entry

    def _admit(self) -> None:
        db = self.database
        while self._waiting and len(self._runnable) < self.max_concurrent:
            entry = self._waiting.popleft()
            # Always pin a snapshot (unlike run_query's lazy attachment):
            # under concurrent writers the first row version may appear
            # *mid-scan*, and a reader admitted before it must not see it.
            if entry.snapshot is None:
                if entry.transaction is not None:
                    entry.snapshot = entry.transaction.snapshot
                else:
                    entry.snapshot = db.transactions.snapshot()
            entry.plan = db._prepare(entry.query, **entry.run_kwargs)
            entry.context = ExecutionContext(snapshot=entry.snapshot)
            entry._iterator = entry.plan.iter_batches(entry.context, self.batch_size)
            entry._fresh_rows = entry.plan.produces_fresh_rows
            entry.admitted_ms = db.elapsed_ms()
            entry.state = RUNNING
            self._runnable.append(entry)

    # -- the scheduling loop ----------------------------------------------------

    @property
    def active(self) -> int:
        """Queries currently holding an execution slot."""
        return len(self._runnable)

    @property
    def pending(self) -> int:
        """Queries waiting for admission."""
        return len(self._waiting)

    @property
    def queries(self) -> list[ScheduledQuery]:
        """Every submitted query, in submission order."""
        return list(self._all)

    def step(self) -> QuantumReport | None:
        """Run one scheduling quantum; ``None`` when nothing is runnable.

        Deterministic: which query runs is fully decided by the policy and
        the submission/yield history, so a scripted interleaving replays
        identically -- the property the anomaly tests rely on.
        """
        if not self._runnable:
            return None
        entry = self._pick()
        report = self._run_quantum(entry)
        if entry.finished:
            self._admit()
        else:
            self._runnable.append(entry)
        return report

    def run(self) -> list[ScheduledQuery]:
        """Drive :meth:`step` until every submitted query has finished."""
        while self._runnable or self._waiting:
            self.step()
        return list(self._all)

    def _pick(self) -> ScheduledQuery:
        if self.policy == "priority":
            best = max(range(len(self._runnable)), key=lambda i: self._runnable[i].priority)
            entry = self._runnable[best]
            del self._runnable[best]
            return entry
        return self._runnable.popleft()

    def _run_quantum(self, entry: ScheduledQuery) -> QuantumReport:
        """Pull batches from one query until its per-turn budget is spent.

        Each pull's I/O window is attributed to the query; the page meter
        counts *logical* pages visited (buffer-pool hits included), so a
        budget means the same amount of work whatever the cache holds.
        """
        db = self.database
        assert entry._iterator is not None and entry.plan is not None
        devices: tuple[DiskModel, ...] = (db.disk, *exchange_devices(entry.plan))
        entry.quanta += 1
        batches = rows = 0
        pages = 0
        cpu_ms = 0.0
        failed = finished = False
        collect = entry.rows.extend
        while True:
            pages_before = entry.plan.total_counters().pages_visited
            before = [device.snapshot() for device in devices]
            try:
                batch = next(entry._iterator)
            except StopIteration:
                entry.io = entry.io.add(_window_since(devices, before))
                finished = True
                break
            except Exception as exc:  # noqa: BLE001 - reported on the entry
                entry.io = entry.io.add(_window_since(devices, before))
                entry.error = exc
                failed = True
                break
            window = _window_since(devices, before)
            entry.io = entry.io.add(window)
            entry.batches += 1
            batches += 1
            rows += len(batch)
            collect(batch if entry._fresh_rows else map(dict, batch))
            pages += entry.plan.total_counters().pages_visited - pages_before
            cpu_ms += window.elapsed_ms(db.disk.params)
            if entry.page_budget is None and entry.cpu_ms_budget is None:
                break
            if entry.page_budget is not None and pages >= entry.page_budget:
                break
            if entry.cpu_ms_budget is not None and cpu_ms >= entry.cpu_ms_budget:
                break
        if finished:
            entry.result = db._build_result(
                entry.query, entry.plan, entry.rows, entry.context, entry.io
            )
            entry.rows = []
            entry.state = FINISHED
        elif failed:
            entry.state = FAILED
            if entry._iterator is not None:
                entry._iterator.close()
        if entry.finished:
            entry.finished_ms = db.elapsed_ms()
            entry._iterator = None
        return QuantumReport(
            label=entry.label,
            batches=batches,
            rows=rows,
            pages=pages,
            cpu_ms=cpu_ms,
            finished=finished,
            failed=failed,
        )
