"""Transactional maintenance and snapshot isolation.

The paper's prototype keeps CMs in main memory but makes them recoverable by
logging their updates and flushing the log during two-phase commit with
PostgreSQL (Section 7.1).  The :class:`TransactionManager` reproduces that
protocol: every data/index/CM change appends a WAL record, and a batch commit
performs PREPARE COMMIT (flush) followed by COMMIT PREPARED (flush), so CM
durability costs are fully accounted in the maintenance experiments.

On top of the durability protocol this module provides the *visibility*
substrate for concurrent query serving: a :class:`Snapshot` captures, at one
instant, which transaction ids a reader is allowed to see.  Writers stamp row
versions with their xid (``_xmin`` on creation, ``_xmax`` on deletion -- see
:mod:`repro.engine.table`); readers pin a snapshot when they are admitted and
the scan kernels filter row versions against it, which yields snapshot
isolation without any read locks:

* a version is visible iff its creating xid is visible to the snapshot and
  its deleting xid (if any) is not;
* an xid is visible iff it is the reader's own transaction, or it committed
  before the snapshot was taken (allocated before the snapshot's horizon,
  not in-flight at snapshot time, and not aborted).

Nothing is ever undone in place: an aborted transaction's versions simply
stay invisible to everyone, exactly as in PostgreSQL's MVCC.  Write-write
conflicts are detected eagerly (first-updater-wins): touching a version that
a live or committed concurrent transaction already deleted raises
:class:`SerializationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.storage.wal import WriteAheadLog

#: Hidden row column holding the creating transaction id of a version.
XMIN_COLUMN = "_xmin"
#: Hidden row column holding the deleting transaction id of a version.
XMAX_COLUMN = "_xmax"

#: Final transaction states kept by the manager (active xids live in a set).
COMMITTED = "committed"
ABORTED = "aborted"


class SerializationError(RuntimeError):
    """A write-write conflict under snapshot isolation (lost-update guard).

    Raised when a transaction tries to update or delete a row version that a
    *concurrent* transaction (still in flight, or already committed) has
    deleted.  First-updater-wins: the loser must abort and retry, it never
    silently overwrites the other writer's work.
    """


@dataclass
class TransactionStats:
    """Counters describing the transactional activity of a workload.

    ``transactions`` counts every *finished* transaction -- committed or
    aborted -- so abort-heavy workloads report honest totals; ``aborts``
    breaks out the aborted share and :attr:`commits` is the difference.
    """

    transactions: int = 0
    records_logged: int = 0
    flushes: int = 0
    aborts: int = 0

    @property
    def commits(self) -> int:
        return self.transactions - self.aborts


@dataclass(frozen=True)
class Snapshot:
    """One reader's frozen view of which transactions are visible.

    ``horizon`` is the next xid at the instant the snapshot was taken (every
    xid allocated later is invisible), ``active`` the xids in flight at that
    instant (invisible even if they commit afterwards), ``xid`` the owning
    transaction (its own uncommitted writes are visible to itself).
    ``status`` is the manager's final-status map; consulting it live is safe
    because a final status never changes and every xid whose status could
    still change sits in ``active`` or beyond ``horizon``.
    """

    horizon: int
    active: frozenset[int] = frozenset()
    xid: int | None = None
    status: Mapping[int, str] = field(default_factory=dict, repr=False)

    def sees_xid(self, xid: int) -> bool:
        """Whether a transaction's effects are visible to this snapshot."""
        if xid == self.xid:
            return True
        if xid >= self.horizon or xid in self.active:
            return False
        return self.status.get(xid) == COMMITTED

    def visible(self, row: Mapping[str, Any]) -> bool:
        """MVCC visibility of one row version.

        Unversioned rows (bulk loads, the non-transactional maintenance
        path) carry neither hidden column and are visible to everyone.
        """
        xmin = row.get(XMIN_COLUMN)
        if xmin is not None and not self.sees_xid(xmin):
            return False
        xmax = row.get(XMAX_COLUMN)
        return xmax is None or not self.sees_xid(xmax)


class Transaction:
    """One open transaction accumulating log records.

    ``snapshot`` is pinned at :meth:`TransactionManager.begin`, so every
    read a transaction performs sees the same frozen state whatever commits
    around it -- the defining property of snapshot isolation.
    """

    def __init__(
        self, manager: "TransactionManager", xid: int, snapshot: Snapshot
    ) -> None:
        self.manager = manager
        self.xid = xid
        self.snapshot = snapshot
        self.records = 0
        self.closed = False

    def log(self, kind: str, payload: dict[str, Any] | None = None, *, size_bytes: int = 64) -> None:
        if self.closed:
            raise RuntimeError("transaction already closed")
        payload = dict(payload or {})
        payload["xid"] = self.xid
        self.manager.wal.append(kind, payload, size_bytes=size_bytes)
        self.records += 1
        self.manager.stats.records_logged += 1

    def commit(self, *, two_phase: bool = True) -> None:
        """Commit; ``two_phase=True`` mirrors the prototype's 2PC with PostgreSQL."""
        if self.closed:
            raise RuntimeError("transaction already closed")
        if two_phase:
            self.manager.wal.prepare({"xid": self.xid})
            self.manager.wal.commit_prepared({"xid": self.xid})
            self.manager.stats.flushes += 2
        else:
            self.manager.wal.commit({"xid": self.xid})
            self.manager.stats.flushes += 1
        self.closed = True
        self.manager._finish(self.xid, COMMITTED)
        self.manager.stats.transactions += 1

    def abort(self) -> None:
        """Abort: log the abort record and mark every version invisible.

        No data is undone -- versions stamped with this xid simply never
        become visible (the status map says ``aborted``).  Aborts count into
        :attr:`TransactionStats.transactions` exactly as commits do, so the
        stats stay honest under abort-heavy (e.g. conflict-retry) workloads.
        """
        if self.closed:
            raise RuntimeError("transaction already closed")
        self.manager.wal.append("abort", {"xid": self.xid})
        self.closed = True
        self.manager._finish(self.xid, ABORTED)
        self.manager.stats.transactions += 1
        self.manager.stats.aborts += 1


class TransactionManager:
    """Hands out transactions backed by one shared write-ahead log.

    Besides the WAL plumbing it is the system's xid authority: it knows
    which transactions are in flight (``active``) and how every finished
    one ended (``status``), which is all a :class:`Snapshot` needs.
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self.stats = TransactionStats()
        self._next_xid = 1
        #: Xids currently in flight.
        self.active: set[int] = set()
        #: Final status of every finished xid (``committed`` / ``aborted``).
        self.status: dict[int, str] = {}

    def begin(self) -> Transaction:
        xid = self._next_xid
        self._next_xid += 1
        self.active.add(xid)
        transaction = Transaction(self, xid, self.snapshot(xid=xid))
        return transaction

    def snapshot(self, *, xid: int | None = None) -> Snapshot:
        """A fresh snapshot of the current visibility state.

        Readers pin one at admission (``xid=None``: a pure reader sees no
        in-flight work, including work that commits later); a transaction's
        own snapshot carries its xid so it can read its own writes.
        """
        return Snapshot(
            horizon=self._next_xid,
            active=frozenset(self.active),
            xid=xid,
            status=self.status,
        )

    def is_conflicting(self, xid: int, *, against: int) -> bool:
        """Whether ``xid``'s deletion blocks a write by ``against``.

        First-updater-wins: a version deleted by another transaction that is
        still in flight or already committed cannot be deleted again; a
        deletion by an *aborted* transaction is as good as no deletion.
        """
        if xid == against:
            return False
        return xid in self.active or self.status.get(xid) == COMMITTED

    def _finish(self, xid: int, status: str) -> None:
        self.active.discard(xid)
        self.status[xid] = status
