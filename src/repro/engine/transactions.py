"""Transactional maintenance of tables, indexes and correlation maps.

The paper's prototype keeps CMs in main memory but makes them recoverable by
logging their updates and flushing the log during two-phase commit with
PostgreSQL (Section 7.1).  The :class:`TransactionManager` reproduces that
protocol: every data/index/CM change appends a WAL record, and a batch commit
performs PREPARE COMMIT (flush) followed by COMMIT PREPARED (flush), so CM
durability costs are fully accounted in the maintenance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.wal import WriteAheadLog


@dataclass
class TransactionStats:
    """Counters describing the transactional activity of a workload."""

    transactions: int = 0
    records_logged: int = 0
    flushes: int = 0


class Transaction:
    """One open transaction accumulating log records."""

    def __init__(self, manager: "TransactionManager", xid: int) -> None:
        self.manager = manager
        self.xid = xid
        self.records = 0
        self.closed = False

    def log(self, kind: str, payload: dict[str, Any] | None = None, *, size_bytes: int = 64) -> None:
        if self.closed:
            raise RuntimeError("transaction already closed")
        payload = dict(payload or {})
        payload["xid"] = self.xid
        self.manager.wal.append(kind, payload, size_bytes=size_bytes)
        self.records += 1
        self.manager.stats.records_logged += 1

    def commit(self, *, two_phase: bool = True) -> None:
        """Commit; ``two_phase=True`` mirrors the prototype's 2PC with PostgreSQL."""
        if self.closed:
            raise RuntimeError("transaction already closed")
        if two_phase:
            self.manager.wal.prepare({"xid": self.xid})
            self.manager.wal.commit_prepared({"xid": self.xid})
            self.manager.stats.flushes += 2
        else:
            self.manager.wal.commit({"xid": self.xid})
            self.manager.stats.flushes += 1
        self.closed = True
        self.manager.stats.transactions += 1

    def abort(self) -> None:
        if self.closed:
            raise RuntimeError("transaction already closed")
        self.manager.wal.append("abort", {"xid": self.xid})
        self.closed = True


class TransactionManager:
    """Hands out transactions backed by one shared write-ahead log."""

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self.stats = TransactionStats()
        self._next_xid = 1

    def begin(self) -> Transaction:
        transaction = Transaction(self, self._next_xid)
        self._next_xid += 1
        return transaction
