"""Partitioned tables: range/hash sharding across per-partition devices.

A :class:`PartitionedTable` sits between the catalog and the storage layer:
it owns one child :class:`~repro.engine.table.Table` per partition, and each
child owns its *own* simulated device -- a private
:class:`~repro.storage.disk.DiskModel` (I/O tracker and head position) behind
a private :class:`~repro.storage.buffer_pool.BufferPool`.  Per-partition
devices are what make execution order irrelevant to the simulated counters:
whether the partitions are drained serially, interleaved by the cooperative
scheduler, or on a ``multiprocessing`` pool, every access of partition *k*
lands on device *k* and classifies against device *k*'s head alone, so the
per-device counter streams -- and their fold into whole-query totals -- are
bit-identical across execution modes.

Partition routing and planner pruning share one rule, held by
:class:`PartitionSpec`:

* ``range`` partitioning orders the key domain by ascending ``boundaries``;
  partition *k* holds values ``boundaries[k-1] <= v < boundaries[k]`` (the
  first and last partitions are open-ended).  ``Equals``/``IN`` predicates
  prune to the partitions holding their values, ``BETWEEN`` prunes to the
  contiguous span covering its bounds.
* ``hash`` partitioning routes by a *stable* CRC32 hash of ``repr(value)``
  (immune to ``PYTHONHASHSEED``, identical across worker processes);
  ``Equals``/``IN`` prune to the hashed partitions, ranges cannot prune.

Pruning is purely static -- it consults the spec and the predicate set,
never a heap page -- so planning over partitioned tables keeps the planner's
zero-heap-reads guarantee.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.predicates import PredicateSet

from repro.core.bucketing import Bucketer
from repro.core.composite import CompositeKeySpec
from repro.core.model import TableProfile
from repro.core.statistics import DEFAULT_STATS_SAMPLE_SIZE, IncrementalTableStatistics
from repro.engine.predicates import Between, Equals, InSet
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel
from repro.storage.page import RID


def stable_partition_hash(value: Any) -> int:
    """A process-stable hash for partition routing.

    Python's builtin ``hash`` of strings varies per process
    (``PYTHONHASHSEED``), which would route rows differently in forked
    parallel workers than in the parent.  CRC32 over ``repr`` is cheap,
    deterministic everywhere, and good enough to spread key values.  Keys
    must be consistently typed: ``1`` and ``1.0`` compare equal but render
    differently, so a mixed-type key column would split equal values.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class PartitionSpec:
    """How one table's rows map to partitions (and how predicates prune).

    ``method`` is ``"range"`` or ``"hash"``.  For ``range``, ``boundaries``
    holds the ``num_partitions - 1`` ascending split points; partition *k*
    holds ``boundaries[k-1] <= value < boundaries[k]``.  For ``hash``,
    ``boundaries`` is empty and values route by
    ``stable_partition_hash(value) % num_partitions``.
    """

    key: str
    method: str
    num_partitions: int
    boundaries: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("a partition spec needs a key column")
        if self.method not in ("range", "hash"):
            raise ValueError(f"unknown partition method {self.method!r}")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be at least 1")
        object.__setattr__(self, "boundaries", tuple(self.boundaries))
        if self.method == "range":
            if len(self.boundaries) != self.num_partitions - 1:
                raise ValueError(
                    "range partitioning needs num_partitions - 1 boundaries"
                )
            for lower, upper in zip(self.boundaries, self.boundaries[1:]):
                if not lower < upper:
                    raise ValueError("range boundaries must be strictly ascending")
        elif self.boundaries:
            raise ValueError("hash partitioning takes no boundaries")

    @classmethod
    def by_range(cls, key: str, boundaries: Sequence[Any]) -> "PartitionSpec":
        """Range-partition on ``key`` with the given ascending split points."""
        bounds = tuple(boundaries)
        return cls(key=key, method="range", num_partitions=len(bounds) + 1, boundaries=bounds)

    @classmethod
    def by_hash(cls, key: str, num_partitions: int) -> "PartitionSpec":
        """Hash-partition on ``key`` into ``num_partitions`` shards."""
        return cls(key=key, method="hash", num_partitions=num_partitions)

    def partition_of(self, value: Any) -> int:
        """The partition index a row with this key value routes to."""
        if self.method == "range":
            return bisect_right(self.boundaries, value)
        return stable_partition_hash(value) % self.num_partitions

    def prune(self, predicates: "PredicateSet") -> tuple[int, ...]:
        """Partition indices that may hold matching rows (ascending).

        Static and conservative: driven by the tightest indexable predicate
        on the partition key (a necessary condition for any row to match, so
        a partition it rules out holds no matching rows).  Unorderable
        bounds fall back to scanning every partition.
        """
        every = tuple(range(self.num_partitions))
        predicate = predicates.on_attribute(self.key)
        if predicate is None:
            return every
        try:
            if isinstance(predicate, Equals):
                return (self.partition_of(predicate.value),)
            if isinstance(predicate, InSet):
                return tuple(sorted({self.partition_of(v) for v in predicate.values}))
            if isinstance(predicate, Between) and self.method == "range":
                low = 0 if predicate.low is None else self.partition_of(predicate.low)
                high = (
                    self.num_partitions - 1
                    if predicate.high is None
                    else self.partition_of(predicate.high)
                )
                return tuple(range(low, high + 1))
        except TypeError:
            return every
        return every

    def layout_compatible_with(self, other: "PartitionSpec") -> bool:
        """Whether two specs shard their key domains identically.

        Equal method, partition count and boundaries mean partition *k* of
        one table can only join partition *k* of the other on the paired
        keys -- the condition for a partition-wise (co-partitioned) join.
        The key *names* may differ (``catid`` joining ``id``); only the
        value-to-partition mapping must agree.
        """
        return (
            self.method == other.method
            and self.num_partitions == other.num_partitions
            and self.boundaries == other.boundaries
        )

    def describe(self) -> str:
        return f"{self.method}({self.key}) x {self.num_partitions}"


class PartitionedTable:
    """One relation sharded over per-partition child tables and devices.

    Presents the same planner surface as :class:`~repro.engine.table.Table`
    (row counts, statistics-driven estimates, profiles) while physically
    owning ``spec.num_partitions`` children named ``{name}::p{k}``, each on
    its own simulated device.  Global statistics are maintained on top of
    the per-child ones so whole-table selectivity estimates do not depend
    on the partitioning.
    """

    def __init__(
        self,
        schema: TableSchema,
        spec: PartitionSpec,
        shared_disk: DiskModel,
        *,
        buffer_pool_pages: int,
        tups_per_page: int | None = None,
        stats_sample_size: int = DEFAULT_STATS_SAMPLE_SIZE,
        stats_refresh_ops: int | None = None,
    ) -> None:
        if not schema.has_column(spec.key):
            raise KeyError(
                f"partition key {spec.key!r} is not a column of table {schema.name!r}"
            )
        self.schema = schema
        self.spec = spec
        #: The database-wide device; decorator CPU above the exchange node is
        #: charged here, exactly as for unpartitioned plans.
        self.disk = shared_disk
        partitions: list[Table] = []
        devices: list[DiskModel] = []
        for index in range(spec.num_partitions):
            device = DiskModel(shared_disk.params)
            pool = BufferPool(device, buffer_pool_pages)
            child_schema = replace(schema, name=f"{schema.name}::p{index}")
            partitions.append(
                Table(
                    child_schema,
                    pool,
                    tups_per_page=tups_per_page,
                    stats_sample_size=stats_sample_size,
                    stats_refresh_ops=stats_refresh_ops,
                )
            )
            devices.append(device)
        self.partitions: tuple[Table, ...] = tuple(partitions)
        self.devices: tuple[DiskModel, ...] = tuple(devices)
        self.tups_per_page = self.partitions[0].tups_per_page
        #: Whole-table planner statistics (the children keep their own).
        self.statistics = IncrementalTableStatistics(
            sample_capacity=stats_sample_size, refresh_ops=stats_refresh_ops
        )

    # -- basic properties --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return sum(partition.num_rows for partition in self.partitions)

    @property
    def num_pages(self) -> int:
        return sum(partition.num_pages for partition in self.partitions)

    @property
    def is_clustered(self) -> bool:
        return all(partition.is_clustered for partition in self.partitions)

    @property
    def clustered_attribute(self) -> str | None:
        return self.partitions[0].clustered_attribute

    @property
    def mvcc_versioned(self) -> bool:
        return any(partition.mvcc_versioned for partition in self.partitions)

    def all_rows(self) -> Iterable[dict[str, Any]]:
        """Every live row across all partitions (catalog / statistics use)."""
        for partition in self.partitions:
            yield from partition.all_rows()

    def prune(self, predicates: "PredicateSet") -> tuple[int, ...]:
        """Partition indices that may hold rows matching ``predicates``."""
        return self.spec.prune(predicates)

    # -- loading and physical design ---------------------------------------------

    def load(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk load rows, routing each to its partition by the key."""
        key = self.spec.key
        grouped: list[list[dict[str, Any]]] = [[] for _ in self.partitions]
        count = 0
        for row in rows:
            stored = dict(row)
            grouped[self.spec.partition_of(stored[key])].append(stored)
            self.statistics.observe_insert(stored)
            count += 1
        for partition, chunk in zip(self.partitions, grouped):
            if chunk:
                partition.load(chunk)
        return count

    def cluster_on(
        self, attribute: str, *, pages_per_bucket: int | None = None
    ) -> None:
        """Cluster every partition on ``attribute`` (per-partition heaps).

        Global statistics are left as loaded: clustering reorders rows
        without changing their user-column content, so whole-table
        selectivity estimates are unaffected.
        """
        for partition in self.partitions:
            partition.cluster_on(attribute, pages_per_bucket=pages_per_bucket)

    def create_secondary_index(
        self,
        attributes: Sequence[str] | str,
        *,
        name: str | None = None,
        order: int = 256,
    ) -> None:
        """Create the same secondary index on every partition.

        ``name``, when given, is suffixed with the partition index (index
        names are per-child and must be unique).
        """
        for index, partition in enumerate(self.partitions):
            child_name = f"{name}::p{index}" if name is not None else None
            partition.create_secondary_index(attributes, name=child_name, order=order)

    def create_correlation_map(
        self,
        attributes: Sequence[str] | str,
        *,
        bucketers: Mapping[str, Bucketer] | None = None,
        name: str | None = None,
        use_clustered_buckets: bool = True,
    ) -> None:
        """Create the same correlation map on every (clustered) partition."""
        for index, partition in enumerate(self.partitions):
            child_name = f"{name}::p{index}" if name is not None else None
            partition.create_correlation_map(
                attributes,
                bucketers=bucketers,
                name=child_name,
                use_clustered_buckets=use_clustered_buckets,
            )

    # -- maintenance --------------------------------------------------------------

    def insert_row(self, row: Mapping[str, Any], *, charge_io: bool = True) -> RID:
        """Insert one tuple into the partition its key routes to."""
        stored = dict(row)
        index = self.spec.partition_of(stored[self.spec.key])
        rid = self.partitions[index].insert_row(stored, charge_io=charge_io)
        self.statistics.observe_insert(stored)
        return rid

    def delete_in_partition(
        self, index: int, rid: RID, *, charge_io: bool = True
    ) -> dict[str, Any] | None:
        """Delete one tuple of partition ``index``, updating global statistics."""
        row = self.partitions[index].delete_row(rid, charge_io=charge_io)
        if row is not None:
            self.statistics.observe_delete(row)
        return row

    def drop_caches(self) -> None:
        """Empty every partition's buffer pool (cold-cache methodology)."""
        for partition in self.partitions:
            partition.buffer_pool.clear()

    def reset_devices(self) -> None:
        """Reset every partition device's counters and head position."""
        for device in self.devices:
            device.reset()

    # -- statistics ----------------------------------------------------------------

    def table_profile(self) -> TableProfile:
        height = max(
            (
                p.clustered_index.btree_height
                for p in self.partitions
                if p.clustered_index is not None
            ),
            default=3,
        )
        return TableProfile(
            total_tups=self.num_rows,
            tups_per_page=self.tups_per_page,
            btree_height=height,
        )

    def attribute_cardinality(self, attribute: str) -> int:
        return self.statistics.cardinality(attribute)

    def key_cardinality(self, attributes: Sequence[str] | str) -> int:
        if isinstance(attributes, str):
            attributes = [attributes]
        return self.statistics.cardinality(CompositeKeySpec.build(attributes))

    def estimate_matching_rows(self, predicates: "PredicateSet") -> float:
        """Whole-table estimated matching rows (sample selectivity x count)."""
        fraction = self.statistics.match_fraction(
            predicates.matches, key=tuple(predicates)
        )
        return self.num_rows * fraction

    def attribute_range(self, attribute: str) -> tuple[Any, Any] | None:
        return self.statistics.attribute_range(attribute)

    def describe(self) -> str:
        return (
            f"table {self.name}: {self.num_rows} rows, {self.num_pages} pages, "
            f"partitioned {self.spec.describe()}"
        )
