"""Partition-wise join plumbing: merge, broadcast and repartition nodes.

Three plan nodes let joins and ORDER BY compose with partitioned storage:

``MergeExchangeNode``
    An exchange whose children each stream in a known order (per-partition
    Sort or TopK subtrees); instead of concatenating them it k-way heap
    merges the streams, so a partitioned ORDER BY never sorts the
    concatenation and a partitioned ORDER BY + LIMIT reduces to bounded
    per-partition top-k plus a merge the LIMIT stops after ``k`` pops.

``BroadcastNode``
    Replicates one small *flat* input to every partition's join subtree
    through a shared row cache: the held source plan is drained exactly
    once (by the first subtree to run, or by :meth:`prepare` in the parent
    before a fork), and every per-partition hash join builds from the
    cached rows at pure CPU cost.

``RepartitionNode``
    Hash-splits one stream into per-partition buckets by the join key,
    using the *outer* table's :class:`~repro.engine.partition.PartitionSpec`
    routing, so a join side partitioned incompatibly (or not at all) can
    still feed a partition-wise join.  The split is charged as one routing
    CPU tuple per row plus a modeled spill round-trip on the shared device
    (:meth:`~repro.storage.disk.DiskModel.charge_spill`).

All three keep the PR 9 parity contract: every fill happens exactly once at
a deterministic point of the shared-device access sequence (first pull
serially, :meth:`prepare` in the parent before a parallel fork), per-row
work inside a partition subtree is charged to that partition's private
device via the ``cpu_disk`` hook, and the merge re-merges worker-shipped
per-partition row lists (:meth:`MergeExchangeNode.set_replay_parts`)
exactly as it merged the live streams.
"""

from __future__ import annotations

import heapq
from math import ceil
from typing import TYPE_CHECKING, Any, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.partition import PartitionSpec
    from repro.storage.disk import DiskModel

from repro.core.cost import merge_comparison_count
from repro.engine.executor import (
    ExecutionContext,
    PlanNode,
    RowBatch,
    _chunk_rows,
    iter_batches_of,
)
from repro.engine.plan import ExchangeNode, _ordering_text, sort_key_function


class MergeExchangeNode(ExchangeNode):
    """Exchange that k-way merges per-partition ordered streams.

    Each child must stream in :attr:`ordering` (the planner wraps every
    child in a Sort or TopK before building this node).  The children are
    drained **fully, in ascending partition order** before the first merged
    row is emitted -- they are blocking sort subtrees, so this adds no page
    reads, and it is what keeps serial, cooperative and process-parallel
    runs bit-identical even under a LIMIT above the merge: every mode
    drains every child completely, then merging and early termination are
    pure parent-side memory work.

    Ties across children resolve by ascending partition index -- the
    concatenation order -- which is exactly the row a stable sort of the
    concatenation would have ranked first, so merge output matches
    sort-the-concatenation row for row.

    The merge CPU (one ``log2 k`` heap operation per emitted row, the same
    count :func:`repro.core.cost.merge_comparison_count` prices) is charged
    to the shared device when the merge finishes or is abandoned, in both
    the live and the replay path.
    """

    name = "merge_exchange"

    __slots__ = ("ordering", "disk", "_replay_parts")

    def __init__(
        self,
        sources: Sequence[PlanNode],
        *,
        devices: Sequence["DiskModel | Sequence[DiskModel]"],
        partition_key: str,
        partition_method: str,
        partitions_total: int,
        ordering: Sequence[tuple[str, bool]],
        disk: "DiskModel | None" = None,
    ) -> None:
        super().__init__(
            sources,
            devices=devices,
            partition_key=partition_key,
            partition_method=partition_method,
            partitions_total=partitions_total,
        )
        self.ordering = tuple(ordering)
        self.disk = disk
        self._replay_parts: list[list[dict[str, Any]]] | None = None

    def set_replay_parts(self, parts: Sequence[Sequence[dict[str, Any]]]) -> None:
        """Merge these per-partition row lists instead of draining children.

        The parallel runner ships each worker's (already ordered) partition
        output back and hands the lists over in partition order; re-merging
        them here reproduces the serial merge bit for bit, including the
        merge CPU charge.
        """
        self._replay_parts = [list(part) for part in parts]
        self.partitions_scanned = len(self.sources)

    def _gather_parts(
        self,
        context: ExecutionContext,
        batch_size: int | None = None,
        run_reads: bool = True,
    ) -> list[list[dict[str, Any]]]:
        """Drain every child fully, in ascending partition order."""
        parts: list[list[dict[str, Any]]] = []
        self.partitions_scanned = 0
        for source in self.sources:
            self.partitions_scanned += 1
            if batch_size is None:
                parts.append(list(source.iter_rows(context.child())))
            else:
                rows: list[dict[str, Any]] = []
                for batch in iter_batches_of(
                    source, context.child(), batch_size, None, run_reads
                ):
                    rows.extend(batch)
                parts.append(rows)
        return parts

    def _merged(
        self,
        context: ExecutionContext,
        parts: list[list[dict[str, Any]]],
        fresh: bool,
    ) -> Iterator[dict[str, Any]]:
        key_of = sort_key_function(self.ordering)
        emitted = 0
        try:
            for row in heapq.merge(*parts, key=key_of):
                emitted += 1
                yield context.emit(row, fresh=fresh)
        finally:
            if self.disk is not None and emitted:
                self.disk.charge_cpu_tuples(
                    int(merge_comparison_count(emitted, len(parts)))
                )

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        if self._replay_parts is not None:
            yield from self._merged(context, self._replay_parts, True)
            return
        yield from self._merged(context, self._gather_parts(context), False)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # A finite demand (LIMIT above), a context budget or a replay all
        # keep the chunked row pipeline: the merge emits lazily either way,
        # and the row path's early-close point is the reference semantics.
        if (
            context.limit is not None
            or context.projection is not None
            or demand is not None
            or self._replay_parts is not None
        ):
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        parts = self._gather_parts(context, batch_size, run_reads)
        yield from _chunk_rows(self._merged(context, parts, False), batch_size)

    def describe_detail(self) -> str:
        return f"merge[{_ordering_text(self.ordering)}], " + super().describe_detail()


class _BroadcastCache:
    """Rows of a broadcast input, shared by its per-partition nodes."""

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: list[dict[str, Any]] | None = None


class BroadcastNode(PlanNode):
    """Replicate one flat input to every partition's join subtree.

    The planner creates one instance per surviving partition, all sharing a
    :class:`_BroadcastCache`; only the **first** instance holds the source
    scan plan as its child, so the source appears exactly once in the plan
    walk and its pages are charged exactly once.  The first drain (or
    :meth:`prepare`, called in the parent before a parallel fork) fills the
    cache with private row copies; every instance then emits the cached
    rows.  Per-instance consumer CPU (the hash build over the emitted rows)
    is routed to the instance's partition device through the ``cpu_disk``
    hook, which is what lets forked workers ship it back per partition.
    """

    name = "broadcast"
    produces_fresh_rows = True

    __slots__ = ("source", "cpu_disk", "table_name", "_cache")

    def __init__(
        self,
        cache: _BroadcastCache,
        *,
        cpu_disk: "DiskModel",
        table_name: str,
        source: PlanNode | None = None,
    ) -> None:
        super().__init__()
        self._cache = cache
        #: The partition device join CPU over this instance's rows lands on.
        self.cpu_disk = cpu_disk
        self.table_name = table_name
        self.source = source

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,) if self.source is not None else ()

    def prepare(self, context: ExecutionContext) -> None:
        """Fill the shared cache by draining the held source plan once."""
        if self._cache.rows is None and self.source is not None:
            self._cache.rows = [
                dict(row) for row in self.source.iter_rows(context.child())
            ]

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        self.prepare(context)
        rows = self._cache.rows
        if rows is None:
            raise RuntimeError(
                "broadcast cache was never filled: the source-holding node "
                "must run (or be prepared) first"
            )
        for row in rows:
            yield context.emit(row, fresh=True)

    def describe_detail(self) -> str:
        return f"{self.table_name} to all partitions"


class _RepartitionCache:
    """Per-partition row buckets of a repartitioned input."""

    __slots__ = ("buckets",)

    def __init__(self) -> None:
        self.buckets: list[list[dict[str, Any]]] | None = None


class RepartitionNode(PlanNode):
    """Hash-split one input stream into the outer table's partition layout.

    One instance per surviving outer partition, all sharing a
    :class:`_RepartitionCache`; the **first** instance holds the source
    plan (a flat scan, or an exchange over an incompatibly partitioned
    table) as its child.  Filling routes every source row with the outer
    spec's ``partition_of`` over ``route_column`` -- the stable-hash /
    range routing forked workers reproduce identically -- and charges one
    routing CPU tuple per row plus one spill round-trip for the bucket
    pages on the shared device.  Rows routed to pruned outer partitions
    are parked in their (never-read) buckets: they could only ever join
    outer rows the pruning already proved non-matching.
    """

    name = "repartition"
    produces_fresh_rows = True

    __slots__ = (
        "source",
        "cpu_disk",
        "spec",
        "route_column",
        "partition_index",
        "table_name",
        "disk",
        "tups_per_page",
        "_cache",
    )

    def __init__(
        self,
        cache: _RepartitionCache,
        *,
        partition_index: int,
        spec: "PartitionSpec",
        route_column: str,
        table_name: str,
        cpu_disk: "DiskModel",
        disk: "DiskModel | None",
        tups_per_page: int,
        source: PlanNode | None = None,
    ) -> None:
        super().__init__()
        self._cache = cache
        self.partition_index = partition_index
        self.spec = spec
        self.route_column = route_column
        self.table_name = table_name
        #: The partition device join CPU over this bucket's rows lands on.
        self.cpu_disk = cpu_disk
        #: The shared device the routing CPU and spill round-trip charge to.
        self.disk = disk
        self.tups_per_page = max(1, tups_per_page)
        self.source = source

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,) if self.source is not None else ()

    def prepare(self, context: ExecutionContext) -> None:
        """Drain the source once, routing every row to its outer partition."""
        if self._cache.buckets is not None or self.source is None:
            return
        spec = self.spec
        column = self.route_column
        buckets: list[list[dict[str, Any]]] = [
            [] for _ in range(spec.num_partitions)
        ]
        count = 0
        for row in self.source.iter_rows(context.child()):
            buckets[spec.partition_of(row[column])].append(dict(row))
            count += 1
        if self.disk is not None:
            self.disk.charge_cpu_tuples(count)
            self.disk.charge_spill(
                f"{self.table_name}::repart",
                ceil(count / self.tups_per_page),
            )
        self._cache.buckets = buckets

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        self.prepare(context)
        buckets = self._cache.buckets
        if buckets is None:
            raise RuntimeError(
                "repartition buckets were never filled: the source-holding "
                "node must run (or be prepared) first"
            )
        for row in buckets[self.partition_index]:
            yield context.emit(row, fresh=True)

    def describe_detail(self) -> str:
        return (
            f"{self.table_name} by {self.spec.method}({self.route_column}) "
            f"-> p{self.partition_index}"
        )


def prepare_plan(root: PlanNode, context: ExecutionContext) -> None:
    """Run every fill hook of the tree in the current process.

    Broadcast and repartition caches fill lazily on first pull, which is
    the right point serially; a process-parallel run must fill them in the
    *parent* before forking, so every worker inherits the filled cache and
    the shared-device charges happen exactly once.  Walk order is the plan's
    deterministic pre-order, the same order the first serial pull would
    trigger the fills in.
    """
    for node in root.walk():
        prepare = getattr(node, "prepare", None)
        if prepare is not None:
            prepare(context)
