"""Cost-based plan selection: access paths and pipelined join orders.

For single-table queries the planner enumerates the applicable access paths
-- sequential scan, sorted secondary-index scan, clustered-index scan and
correlation-map scan -- estimates each with the correlation-aware cost model
of Section 4, and picks the cheapest.  Selection is LIMIT-aware: each
candidate's cost is split into an upfront part (index descents) and a
streaming part (the page sweep early termination cuts short), and candidates
are costed for ``min(limit, estimated_result_rows)`` output rows.

For multi-table queries the planner enumerates left-deep join orders over
the query's equi-join graph.  Each order starts from the cheapest access
path of its driving table and adds one pipelined join step per remaining
table; every step considers a naive nested-loop inner (sequential rescan),
every applicable index-nested-loop inner -- clustered index, secondary
B+Tree, or correlation map -- plus the set-at-a-time operators that cover
the unindexed case in O(N + M) pages: a streaming hash join (building the
sampled-smaller input's hash table) and a sort-merge join (merging for free
when an input already streams in join-key order, spilling to an explicit
sort charged from sampled row counts otherwise).  The CM inner path is the
paper's central idea
applied across tables: when the join key is correlated with the inner
table's clustered key, each probe resolves through the tiny memory-resident
CM into a couple of clustered buckets instead of a B+Tree descent per
matching tuple.  Join cardinalities come from the tables' reservoir samples
(:func:`repro.core.statistics.join_fanout`), so join planning -- like
single-table planning -- performs zero heap page reads.

A specific access method or join strategy can also be forced, which is how
the benchmarks compare plans against each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.cost import (
    CMCostInputs,
    CostSplit,
    cm_lookup_cost,
    cm_lookup_cost_split,
    hash_join_cost,
    index_nested_loop_join_cost,
    limited_cost,
    nested_loop_join_cost,
    pipelined_lookup_cost,
    scan_cost,
    sort_merge_join_cost,
    sorted_lookup_cost,
    sorted_lookup_cost_split,
)
from repro.core.model import HardwareParameters
from repro.core.statistics import join_fanout
from repro.engine.access import (
    AccessPath,
    ClusteredIndexScan,
    CorrelationMapScan,
    InnerPathBuilder,
    PipelinedIndexScan,
    SeqScan,
    SortedIndexScan,
)
from repro.engine.executor import (
    HashJoin,
    IndexNestedLoopJoin,
    JoinOperator,
    NestedLoopJoin,
    SortMergeJoin,
)
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Query
from repro.engine.table import Table

#: Names accepted by ``force=`` arguments (single-table access methods).
FORCE_METHODS = (
    "seq_scan",
    "sorted_index_scan",
    "pipelined_index_scan",
    "clustered_index_scan",
    "cm_scan",
)

#: Names accepted by ``force_join=`` arguments.
FORCE_JOIN_METHODS = (
    "nested_loop_join",
    "index_nested_loop_join",
    "hash_join",
    "sort_merge_join",
)

#: Operator class implementing each forced join strategy.
_FORCE_JOIN_OPERATORS = {
    "nested_loop_join": NestedLoopJoin,
    "index_nested_loop_join": IndexNestedLoopJoin,
    "hash_join": HashJoin,
    "sort_merge_join": SortMergeJoin,
}


@dataclass
class PlannedAccess:
    """One candidate plan with its estimated cost.

    ``path`` is the executable plan root: an :class:`AccessPath` for
    single-table queries or a :class:`~repro.engine.executor.JoinOperator`
    for joins (both stream through ``iter_rows``/``execute``).
    ``cost_split``, when present, is the upfront/streaming decomposition of
    ``estimated_cost_ms`` used by LIMIT-aware selection.
    """

    path: AccessPath | JoinOperator
    estimated_cost_ms: float
    structure: str = ""
    cost_split: CostSplit | None = None

    @property
    def method(self) -> str:
        return self.path.name

    def join_steps(self) -> list[JoinOperator]:
        """The join operators of this plan, root first (empty for scans)."""
        steps: list[JoinOperator] = []
        node = self.path
        while isinstance(node, JoinOperator):
            steps.append(node)
            node = node.source  # type: ignore[assignment]
        return steps


class Planner:
    """Chooses access paths and join plans for queries over one database."""

    def __init__(self, hardware: HardwareParameters) -> None:
        self.hardware = hardware

    # -- lookup-count estimation --------------------------------------------------

    def _estimate_n_lookups(self, table: Table, predicates: PredicateSet, attributes) -> int:
        """How many distinct values an index/CM will be probed with."""
        first = attributes[0]
        predicate = predicates.on_attribute(first)
        if predicate is None:
            return 1
        if isinstance(predicate, Equals):
            return 1
        if isinstance(predicate, InSet):
            return max(1, len(predicate.values))
        if isinstance(predicate, Between):
            # Approximate the number of distinct values inside the range from
            # the attribute's cardinality, assuming a roughly uniform domain.
            # Cardinality and domain bounds come from the incrementally
            # maintained statistics -- plan enumeration never scans the heap.
            cardinality = table.attribute_cardinality(first)
            bounds = table.attribute_range(first)
            if bounds is None:
                return 1
            lo, hi = bounds
            try:
                span = float(hi) - float(lo)
                width = float(predicate.high if predicate.high is not None else hi) - float(
                    predicate.low if predicate.low is not None else lo
                )
                fraction = min(1.0, max(0.0, width / span)) if span > 0 else 1.0
            except (TypeError, ValueError):
                fraction = 0.1
            return max(1, int(round(cardinality * fraction)))
        return 1

    # -- candidate enumeration (single table) -------------------------------------

    def candidate_plans(
        self, table: Table, query: Query, *, limit: int | None = None
    ) -> list[PlannedAccess]:
        """All applicable access paths for ``query``'s predicates, costed.

        With ``limit`` given, candidates are costed for producing
        ``min(limit, estimated_result_rows)`` rows: the streaming part of
        each cost split is scaled by the fraction of the result the limit
        asks for, while upfront index descents are charged in full (see
        :func:`repro.core.cost.limited_cost`).  Without a limit the costs
        are exactly the Section 4 formulas.
        """
        return self._candidate_scan_plans(table, query.predicates, limit=limit)

    def _candidate_scan_plans(
        self, table: Table, predicates: PredicateSet, *, limit: int | None = None
    ) -> list[PlannedAccess]:
        profile = table.table_profile()
        est_rows = table.estimate_matching_rows(predicates) if limit is not None else 0.0

        def costed(split: CostSplit, unlimited_ms: float) -> float:
            # A limit only changes the costing when it actually bites: the
            # full-result formulas clamp upfront+streaming jointly, so fall
            # back to them whenever every matching row will be produced.
            if limit is None or est_rows < 1.0 or limit >= est_rows:
                return unlimited_ms
            return limited_cost(split, est_rows, limit)

        full_scan = scan_cost(profile, self.hardware)
        scan_split = CostSplit(0.0, full_scan)
        plans = [
            PlannedAccess(
                path=SeqScan(table, predicates),
                estimated_cost_ms=costed(scan_split, full_scan),
                structure="heap",
                cost_split=scan_split,
            )
        ]

        predicate_attrs = {p.attribute for p in predicates.indexable_predicates()}

        if (
            table.clustered_attribute is not None
            and table.clustered_attribute in predicate_attrs
        ):
            n = self._estimate_n_lookups(table, predicates, [table.clustered_attribute])
            corr = table.correlation_profile(table.clustered_attribute)
            split = sorted_lookup_cost_split(n, corr, profile, self.hardware)
            plans.append(
                PlannedAccess(
                    path=ClusteredIndexScan(table, predicates),
                    estimated_cost_ms=costed(
                        split, sorted_lookup_cost(n, corr, profile, self.hardware)
                    ),
                    structure=f"clustered({table.clustered_attribute})",
                    cost_split=split,
                )
            )

        for name, index in table.secondary_indexes.items():
            if index.attributes[0] not in predicate_attrs:
                continue
            if table.clustered_attribute is None:
                continue
            n = self._estimate_n_lookups(table, predicates, index.attributes)
            corr = table.correlation_profile(list(index.attributes))
            split = sorted_lookup_cost_split(n, corr, profile, self.hardware)
            plans.append(
                PlannedAccess(
                    path=SortedIndexScan(table, index, predicates),
                    estimated_cost_ms=costed(
                        split, sorted_lookup_cost(n, corr, profile, self.hardware)
                    ),
                    structure=name,
                    cost_split=split,
                )
            )

        for name, cm in table.correlation_maps.items():
            if not any(attr in predicate_attrs for attr in cm.attributes):
                continue
            n = self._estimate_cm_lookups(cm, predicates)
            inputs = CMCostInputs(
                buckets_per_lookup=max(1.0, cm.measured_c_per_u()),
                pages_per_bucket=self._pages_per_target(table, cm),
                cm_pages=cm.size_pages(),
                cm_resident=True,
            )
            split = cm_lookup_cost_split(n, inputs, profile, self.hardware)
            plans.append(
                PlannedAccess(
                    path=CorrelationMapScan(table, cm, predicates),
                    estimated_cost_ms=costed(
                        split, cm_lookup_cost(n, inputs, profile, self.hardware)
                    ),
                    structure=name,
                    cost_split=split,
                )
            )
        return plans

    def _estimate_cm_lookups(self, cm, predicates: PredicateSet) -> int:
        """Number of CM keys (buckets) the query's constraints touch.

        The CM is memory resident, so counting its matching keys is cheap and
        is exactly what the front-end does while rewriting the query; using it
        keeps the planner's ``n_lookups`` at bucket granularity rather than
        value granularity for range predicates over bucketed attributes.
        """
        constraints = {
            attr: constraint
            for attr, constraint in predicates.constraints().items()
            if attr in cm.attributes
        }
        if not constraints:
            return 1
        bucket_constraints = cm.key_spec.bucket_constraints(constraints)
        from repro.core.composite import key_matches

        matching = sum(1 for key in cm.keys() if key_matches(key, bucket_constraints))
        return max(1, matching)

    def _pages_per_target(self, table: Table, cm) -> float:
        """Average heap pages covered by one CM target (bucket or value)."""
        if table.cm_uses_buckets(cm.name) and table.pages_per_bucket:
            return float(table.pages_per_bucket)
        profile = table.correlation_profile(table.clustered_attribute)
        return max(1.0, profile.c_pages(table.tups_per_page))

    # -- selection (single table) ---------------------------------------------------

    def choose(
        self,
        table: Table,
        query: Query,
        *,
        force: str | None = None,
        limit: int | None = None,
    ) -> PlannedAccess:
        """Pick the cheapest applicable plan (or the forced one).

        ``limit`` makes selection LIMIT-aware; pass the effective limit the
        execution will run under so candidates are costed for the rows
        actually produced.
        """
        plans = self.candidate_plans(table, query, limit=limit)
        if force is not None:
            if force not in FORCE_METHODS:
                raise ValueError(f"unknown access method {force!r}")
            if force == "pipelined_index_scan":
                plan = self._pipelined_plan(table, query.predicates)
                if plan is None:
                    raise ValueError("no secondary index available for a pipelined scan")
                return plan
            matching = [plan for plan in plans if plan.method == force]
            if not matching:
                raise ValueError(f"no applicable plan for forced method {force!r}")
            return min(matching, key=lambda plan: plan.estimated_cost_ms)
        return min(plans, key=self.plan_rank)

    def _pipelined_plan(self, table: Table, predicates: PredicateSet) -> PlannedAccess | None:
        """The pipelined variant of the cheapest applicable sorted-index plan.

        Pipelined scans are never chosen by cost (the paper's point is how
        badly they do), so they are synthesized on demand for ``force=``
        callers -- including as a join's driving path.  Costed per Section
        3.1; fully streaming, so the split has no upfront part.
        """
        for plan in self._candidate_scan_plans(table, predicates):
            if isinstance(plan.path, SortedIndexScan):
                profile = table.table_profile()
                corr = table.correlation_profile(list(plan.path.index.attributes))
                n = self._estimate_n_lookups(table, predicates, plan.path.index.attributes)
                cost = pipelined_lookup_cost(n, corr, profile, self.hardware)
                return PlannedAccess(
                    path=PipelinedIndexScan(table, plan.path.index, predicates),
                    estimated_cost_ms=cost,
                    structure=plan.structure,
                    cost_split=CostSplit(0.0, cost),
                )
        return None

    #: Tie-break order when estimated costs are equal (which happens when all
    #: alternatives clamp to the scan cost on small tables): prefer the more
    #: selective structure.
    _METHOD_PREFERENCE = {
        "clustered_index_scan": 0,
        "cm_scan": 1,
        "sorted_index_scan": 2,
        "seq_scan": 3,
    }

    def plan_rank(self, plan: PlannedAccess) -> tuple[float, int]:
        """The selection sort key: cost first, structure preference on ties.

        Public because ``Database.explain`` sorts its candidate listing with
        the same key, guaranteeing its first entry is the plan selection
        picks.
        """
        return (plan.estimated_cost_ms, self._METHOD_PREFERENCE.get(plan.method, 9))

    # -- join planning ---------------------------------------------------------------

    def candidate_join_plans(
        self,
        tables: Mapping[str, Table],
        query: Query,
        *,
        force: str | None = None,
        limit: int | None = None,
    ) -> list[PlannedAccess]:
        """Left-deep join plans for ``query``, one per (order, strategy) shape.

        For every connected left-deep order of the join graph, up to five
        candidate shapes are produced: the cheapest strategy per step (which
        picks whichever of rescanning, index probes, a hash build or an
        ordered merge the cost model prefers), plus the four pure shapes --
        all-nested-loop (the quadratic baseline the benchmarks force),
        all-index-nested-loop (when every inner table offers a probe
        structure), all-hash and all-sort-merge (always applicable: the
        unindexed fallbacks).  ``force`` pins the driving table's access
        method.  All cardinalities come from reservoir samples; enumeration
        never reads a heap page.
        """
        edges = self._join_edges(tables, query)
        orders = self._left_deep_orders(query.tables, edges)
        if not orders:
            raise ValueError(
                f"join graph of {query.describe()!r} is not connected: every "
                "joined table needs an equality linking it to the chain"
            )
        plans: list[PlannedAccess] = []
        seen: set[str] = set()
        selectors = ("best", *FORCE_JOIN_METHODS)
        for order in orders:
            analysis = self._analyze_order(
                tables, query, order, edges, force=force, limit=limit
            )
            if analysis is None:
                continue
            for selector in selectors:
                plan = self._build_order_plan(analysis, selector, limit)
                if plan is not None and plan.structure not in seen:
                    seen.add(plan.structure)
                    plans.append(plan)
        if not plans:
            raise ValueError(f"no applicable join plan for forced method {force!r}")
        return plans

    def choose_join(
        self,
        tables: Mapping[str, Table],
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        limit: int | None = None,
    ) -> PlannedAccess:
        """Pick the cheapest join plan (or the cheapest with a forced strategy).

        ``force_join`` restricts plans by their *step composition*, not just
        the root operator: ``"nested_loop_join"`` keeps only plans whose
        every step rescans the inner sequentially, ``"index_nested_loop_
        join"`` only plans whose every step probes an access structure,
        ``"hash_join"``/``"sort_merge_join"`` only plans built entirely from
        that operator (so a mixed chain satisfies no baseline).  ``force``
        pins the driving table's access method, as for single-table queries.
        """
        if force_join is not None and force_join not in FORCE_JOIN_METHODS:
            raise ValueError(f"unknown join method {force_join!r}")
        plans = self.candidate_join_plans(tables, query, force=force, limit=limit)
        if force_join is not None:
            wanted = _FORCE_JOIN_OPERATORS[force_join]
            plans = [
                plan
                for plan in plans
                if all(type(step) is wanted for step in plan.join_steps())
            ]
            if not plans:
                raise ValueError(f"no applicable plan for forced join {force_join!r}")
        return min(plans, key=lambda plan: plan.estimated_cost_ms)

    def _join_edges(
        self, tables: Mapping[str, Table], query: Query
    ) -> list[tuple[str, str, str, str]]:
        """The equi-join graph as ``(table_a, column_a, table_b, column_b)``.

        Each :class:`JoinSpec` pair contributes one edge; the left column is
        resolved to its owning table by walking the chain prefix backwards
        (matching the merged-row semantics, where the latest table wins a
        name collision).
        """
        edges: list[tuple[str, str, str, str]] = []
        for position, spec in enumerate(query.joins):
            prefix = query.tables[: position + 1]
            for left, right in spec.on:
                owner = None
                for candidate in reversed(prefix):
                    if tables[candidate].schema.has_column(left):
                        owner = candidate
                        break
                if owner is None:
                    raise ValueError(
                        f"join column {left!r} not found in any of {prefix}"
                    )
                if not tables[spec.table].schema.has_column(right):
                    raise ValueError(
                        f"unknown column {right!r} in joined table {spec.table!r}"
                    )
                edges.append((owner, left, spec.table, right))
        return edges

    @staticmethod
    def _left_deep_orders(
        names: Sequence[str], edges: Sequence[tuple[str, str, str, str]]
    ) -> list[tuple[str, ...]]:
        """Every permutation in which each table connects to the prefix."""
        orders: list[tuple[str, ...]] = []

        def connected(name: str, prefix: tuple[str, ...]) -> bool:
            return any(
                (a == name and b in prefix) or (b == name and a in prefix)
                for a, _ca, b, _cb in edges
            )

        def extend(prefix: tuple[str, ...], remaining: frozenset[str]) -> None:
            if not remaining:
                orders.append(prefix)
                return
            for name in sorted(remaining):
                if connected(name, prefix):
                    extend(prefix + (name,), remaining - {name})

        for first in names:
            extend((first,), frozenset(names) - {first})
        return orders

    def _local_predicates(self, query: Query, name: str) -> PredicateSet:
        if name == query.table:
            return query.predicates
        for spec in query.joins:
            if spec.table == name:
                return spec.predicates
        raise KeyError(name)

    def _inner_strategy_options(
        self,
        table: Table,
        inner_columns: Sequence[str],
    ) -> list[tuple[str, float, object, object]]:
        """Applicable ``(strategy, per_probe_cost_ms, index, cm)`` tuples.

        Per-probe costs are the single-lookup (``n_lookups = 1``) variants of
        the Section 4 formulas.  Clustered-index and CM probes conservatively
        sweep the table's unclustered tail on *every* probe (rows inserted
        after the last CLUSTER are not covered by the clustered page ranges),
        so their per-probe price includes the tail pages -- as the tail grows
        the planner degrades them honestly and falls back to the rescan.  The
        sequential rescan is always applicable and anchors the nested-loop
        baseline; secondary-index probes reach tail rows through the index
        and pay no tail term.
        """
        profile = table.table_profile()
        options: list[tuple[str, float, object, object]] = [
            ("seq_scan", scan_cost(profile, self.hardware), None, None)
        ]
        inner_set = set(inner_columns)
        tail_ms = len(table.tail_pages()) * self.hardware.seq_page_cost_ms
        if table.clustered_attribute in inner_set:
            corr = table.correlation_profile(table.clustered_attribute)
            options.append(
                (
                    "clustered_index_scan",
                    sorted_lookup_cost(1, corr, profile, self.hardware) + tail_ms,
                    None,
                    None,
                )
            )
        if table.clustered_attribute is not None:
            for index in table.secondary_indexes.values():
                if index.attributes[0] not in inner_set:
                    continue
                corr = table.correlation_profile(list(index.attributes))
                options.append(
                    (
                        "sorted_index_scan",
                        sorted_lookup_cost(1, corr, profile, self.hardware),
                        index,
                        None,
                    )
                )
            for cm in table.correlation_maps.values():
                if not any(attr in inner_set for attr in cm.attributes):
                    continue
                inputs = CMCostInputs(
                    buckets_per_lookup=max(1.0, cm.measured_c_per_u()),
                    pages_per_bucket=self._pages_per_target(table, cm),
                    cm_pages=cm.size_pages(),
                    cm_resident=True,
                )
                options.append(
                    (
                        "cm_scan",
                        cm_lookup_cost(1, inputs, profile, self.hardware) + tail_ms,
                        None,
                        cm,
                    )
                )
        return options

    def _outer_key_cardinality(
        self, tables: Mapping[str, Table], pairs: Sequence[tuple[str, str, str]]
    ) -> float:
        """Distinct count of the outer join key (composite when one table owns it)."""
        owners = {owner for owner, _outer_col, _inner_col in pairs}
        if len(owners) == 1:
            owner = next(iter(owners))
            return float(
                tables[owner].key_cardinality([outer for _o, outer, _i in pairs])
            )
        return float(
            max(tables[o].attribute_cardinality(c) for o, c, _i in pairs)
        )

    def _analyze_order(
        self,
        tables: Mapping[str, Table],
        query: Query,
        order: Sequence[str],
        edges: Sequence[tuple[str, str, str, str]],
        *,
        force: str | None,
        limit: int | None,
    ) -> "_OrderAnalysis | None":
        """The selector-independent costing inputs for one left-deep order.

        Everything that touches the statistics sample -- driving-plan
        costing, result-size estimates, strategy options, fanouts -- is
        computed once here and shared by all strategy shapes built for the
        order, so planning cost does not scale with the number of shapes.
        """
        steps: list[_JoinStep] = []
        for position, name in enumerate(order[1:], start=1):
            prefix = tuple(order[:position])
            pairs = [
                (a, ca, cb) if b == name else (b, cb, ca)
                for a, ca, b, cb in edges
                if (b == name and a in prefix) or (a == name and b in prefix)
            ]
            if not pairs:
                return None
            table = tables[name]
            local = self._local_predicates(query, name)
            inner_columns = [inner for _owner, _outer, inner in pairs]
            fanout = join_fanout(
                table.num_rows,
                self._outer_key_cardinality(tables, pairs),
                float(table.key_cardinality(inner_columns)),
            )
            selectivity = (
                table.statistics.match_fraction(local.matches, key=tuple(local))
                if local
                else 1.0
            )
            steps.append(
                _JoinStep(
                    table=table,
                    join_on=[(outer, inner) for _owner, outer, inner in pairs],
                    local=local,
                    options=self._inner_strategy_options(table, inner_columns),
                    fanout=fanout,
                    selectivity=selectivity,
                    est_inner_rows=table.num_rows * selectivity,
                    # Heap order *is* join-key order when the single join
                    # column is the clustered attribute and no unsorted tail
                    # has grown -- the case a sort-merge join merges for free.
                    inner_sorted=(
                        len(inner_columns) == 1
                        and table.clustered_attribute == inner_columns[0]
                        and not table.tail_pages()
                    ),
                )
            )

        # A join LIMIT terminates the driver early too: each outer row yields
        # about prod(fanout * selectivity) result rows, so the driver only
        # needs limit / that-product of its own rows.  Selecting (and
        # costing) the driving path with that budget keeps join selection as
        # LIMIT-aware as the single-table case.
        driver_limit = limit
        if limit is not None and limit >= 1:
            amplification = 1.0
            for step in steps:
                amplification *= step.fanout * step.selectivity
            if amplification > 0:
                driver_limit = max(1, math.ceil(limit / amplification))
        driving = tables[order[0]]
        driving_predicates = self._local_predicates(query, order[0])
        if force == "pipelined_index_scan":
            driving_plan = self._pipelined_plan(driving, driving_predicates)
            driving_unlimited = driving_plan
        else:

            def cheapest(effective_limit: int | None) -> PlannedAccess | None:
                return min(
                    (
                        plan
                        for plan in self._candidate_scan_plans(
                            driving, driving_predicates, limit=effective_limit
                        )
                        if force is None or plan.method == force
                    ),
                    key=self.plan_rank,
                    default=None,
                )

            driving_plan = cheapest(driver_limit)
            # A shape whose blocking step (hash build of the outer, explicit
            # merge sort) drains the whole outer cannot lean on the
            # LIMIT-scaled driver: it gets the honest full-drain plan.
            driving_unlimited = (
                driving_plan if driver_limit is None else cheapest(None)
            )
        if driving_plan is None or driving_unlimited is None:
            return None  # the forced method is inapplicable to this order's driver
        # Sweep-style driving paths emit rows in heap (= clustered) order, so
        # a first-step sort-merge join can skip its outer sort when the
        # driver is clustered on that step's single outer join column.
        outer_sorted = False
        if steps and len(steps[0].join_on) == 1:
            outer_column = steps[0].join_on[0][0]
            outer_sorted = (
                driving.clustered_attribute == outer_column
                and not driving.tail_pages()
                and not isinstance(driving_plan.path, PipelinedIndexScan)
            )
        return _OrderAnalysis(
            driving_name=order[0],
            driving_plan=driving_plan,
            driving_unlimited=driving_unlimited,
            driving_rows=driving.estimate_matching_rows(driving_predicates),
            steps=steps,
            first_step_outer_sorted=outer_sorted,
        )

    def _step_candidates(
        self, step: "_JoinStep", est_rows: float, outer_sorted: bool
    ) -> list["_StepCandidate"]:
        """Every operator the cost model can run this step with, costed.

        Probe-family candidates (nested-loop rescan, index-nested-loop) are
        per-outer-row work, so their whole cost is streaming; the hash build
        and the explicit merge sorts are upfront (paid before the first
        merged row), which is exactly what lets a binding LIMIT steer
        selection back towards the probe operators for tiny result budgets.
        """
        candidates: list[_StepCandidate] = []
        for strategy, per_probe, index, cm in step.options:
            if strategy == "seq_scan":
                cost = nested_loop_join_cost(
                    0.0, est_rows, step.table.table_profile(), self.hardware
                )
            else:
                cost = index_nested_loop_join_cost(0.0, est_rows, per_probe)
            candidates.append(
                _StepCandidate(
                    kind="probe",
                    strategy=strategy,
                    split=CostSplit(0.0, cost),
                    index=index,
                    cm=cm,
                )
            )
        # Hash join: build the sampled-smaller input's hash table.  Building
        # the outer blocks its stream (LIMIT can no longer terminate the
        # inputs upstream of this step), which the shape costing accounts
        # for through ``blocks_outer``.
        build_side = "inner" if step.est_inner_rows <= est_rows else "outer"
        candidates.append(
            _StepCandidate(
                kind="hash",
                strategy="hash",
                split=hash_join_cost(
                    est_rows,
                    step.est_inner_rows,
                    step.table.table_profile(),
                    self.hardware,
                    build_side=build_side,
                ),
                build_side=build_side,
                blocks_outer=build_side == "outer",
            )
        )
        candidates.append(
            _StepCandidate(
                kind="merge",
                strategy="merge",
                split=sort_merge_join_cost(
                    est_rows,
                    step.est_inner_rows,
                    step.table.table_profile(),
                    self.hardware,
                    inner_sorted=step.inner_sorted,
                    outer_sorted=outer_sorted,
                ),
                outer_sorted=outer_sorted,
                blocks_outer=not outer_sorted,
            )
        )
        return candidates

    def _build_order_plan(
        self, analysis: "_OrderAnalysis", selector: str, limit: int | None
    ) -> PlannedAccess | None:
        """One strategy shape over a pre-analyzed order (``selector`` picks)."""
        chosen_steps: list[_StepCandidate] = []
        est_rows = analysis.driving_rows
        for position, step in enumerate(analysis.steps):
            outer_sorted = position == 0 and analysis.first_step_outer_sorted
            candidates = self._step_candidates(step, est_rows, outer_sorted)
            if selector == "nested_loop_join":
                candidates = [c for c in candidates if c.strategy == "seq_scan"]
            elif selector == "index_nested_loop_join":
                candidates = [
                    c for c in candidates if c.kind == "probe" and c.strategy != "seq_scan"
                ]
                if not candidates:
                    return None  # no probe structure on this inner table
            elif selector == "hash_join":
                candidates = [c for c in candidates if c.kind == "hash"]
            elif selector == "sort_merge_join":
                candidates = [c for c in candidates if c.kind == "merge"]
            chosen_steps.append(min(candidates, key=lambda c: c.split.total_ms))
            est_rows = est_rows * step.fanout * step.selectivity

        # A blocking step (hash build of the outer, explicit merge sort)
        # drains everything upstream before the first merged row, so the
        # LIMIT-scaled driver only applies to fully streaming shapes, and
        # streaming work upstream of the last block is charged in full.
        last_block = max(
            (i for i, c in enumerate(chosen_steps) if c.blocks_outer), default=-1
        )
        driving = analysis.driving_plan if last_block < 0 else analysis.driving_unlimited
        upfront_ms = sum(c.split.upfront_ms for c in chosen_steps)
        drained_ms = sum(
            c.split.streaming_ms for c in chosen_steps[: max(0, last_block)]
        )
        streaming_ms = sum(
            c.split.streaming_ms for c in chosen_steps[max(0, last_block):]
        )

        parts = [f"{analysis.driving_name}[{driving.method}:{driving.structure}]"]
        source: AccessPath | JoinOperator = driving.path
        for step, chosen in zip(analysis.steps, chosen_steps):
            source = self._build_step_operator(source, step, chosen)
            parts.append(f"{source.name}[{source.describe_detail()}]")

        # Per-row streaming work downstream of the last block scales with
        # the emitted fraction under a LIMIT; upfront work (hash builds,
        # explicit sorts) is paid in full before the first row.
        fraction = 1.0
        if limit is not None and 1.0 <= limit < est_rows:
            fraction = limit / est_rows
        cost = (
            driving.estimated_cost_ms
            + upfront_ms
            + drained_ms
            + streaming_ms * fraction
        )
        assert isinstance(source, JoinOperator)
        return PlannedAccess(
            path=source,
            estimated_cost_ms=cost,
            structure=" -> ".join(parts),
        )

    def _build_step_operator(
        self,
        source: "AccessPath | JoinOperator",
        step: "_JoinStep",
        chosen: "_StepCandidate",
    ) -> JoinOperator:
        """Instantiate the executable operator for one chosen step candidate."""
        if chosen.kind == "hash":
            return HashJoin(
                source,
                SeqScan(step.table, step.local),
                step.join_on,
                build_side=chosen.build_side,
                inner_label=step.table.name,
            )
        if chosen.kind == "merge":
            return SortMergeJoin(
                source,
                SeqScan(step.table, step.local),
                step.join_on,
                inner_sorted=step.inner_sorted,
                outer_sorted=chosen.outer_sorted,
                inner_label=step.table.name,
            )
        builder = InnerPathBuilder(
            step.table,
            step.join_on,
            step.local,
            chosen.strategy,
            index=chosen.index,
            cm=chosen.cm,
        )
        if chosen.strategy == "seq_scan":
            return NestedLoopJoin(source, builder)
        return IndexNestedLoopJoin(source, builder, chosen.strategy)


@dataclass
class _JoinStep:
    """Selector-independent inputs for one join step of one order."""

    table: Table
    join_on: list[tuple[str, str]]
    local: PredicateSet
    #: ``(strategy, per_probe_cost_ms, index, cm)`` probe-family candidates.
    options: list[tuple[str, float, object, object]]
    fanout: float
    selectivity: float
    #: Sampled estimate of inner rows surviving the local predicates.
    est_inner_rows: float
    #: Whether the inner heap already streams in join-key order.
    inner_sorted: bool


@dataclass
class _StepCandidate:
    """One costed way of executing one join step."""

    kind: str  # "probe" | "hash" | "merge"
    strategy: str
    split: CostSplit
    index: object = None
    cm: object = None
    build_side: str = "inner"
    outer_sorted: bool = False
    #: True when this step drains its whole outer input before emitting.
    blocks_outer: bool = False


@dataclass
class _OrderAnalysis:
    """One left-deep order, analyzed once and shared by its strategy shapes."""

    driving_name: str
    driving_plan: PlannedAccess
    #: The driver costed without the LIMIT, for shapes with a blocking step.
    driving_unlimited: PlannedAccess
    driving_rows: float
    steps: list[_JoinStep]
    #: Whether the driving path streams in the first step's join-key order.
    first_step_outer_sorted: bool = False
