"""Cost-based planning: physical operator trees for scans, joins and more.

The planner turns a declarative :class:`~repro.engine.query.Query` into an
executable tree of :class:`~repro.engine.executor.PlanNode` operators and
costs every candidate tree bottom-up from reservoir-sample statistics --
plan enumeration performs **zero heap page reads**.

For single-table queries the planner enumerates the applicable access paths
-- sequential scan, sorted secondary-index scan, clustered-index scan and
correlation-map scan -- estimates each with the correlation-aware cost model
of Section 4, and picks the cheapest.  Selection is LIMIT-aware: each
candidate's cost is split into an upfront part (index descents) and a
streaming part (the page sweep early termination cuts short), and candidates
are costed for ``min(limit, estimated_result_rows)`` output rows.

For multi-table queries the planner enumerates left-deep join orders over
the query's equi-join graph.  Each order starts from the cheapest access
path of its driving table and adds one pipelined join step per remaining
table; every step considers a naive nested-loop inner (sequential rescan),
every applicable index-nested-loop inner -- clustered index, secondary
B+Tree, or correlation map -- plus the set-at-a-time operators that cover
the unindexed case in O(N + M) pages: a streaming hash join (building the
sampled-smaller input's hash table) and a sort-merge join (merging for free
when an input already streams in join-key order, spilling to an explicit
sort charged from sampled row counts otherwise).  The CM inner path is the
paper's central idea applied across tables: when the join key is correlated
with the inner table's clustered key, each probe resolves through the tiny
memory-resident CM into a couple of clustered buckets instead of a B+Tree
descent per matching tuple.  Join cardinalities come from the tables'
reservoir samples (:func:`repro.core.statistics.join_fanout`).

On top of the scan/join input tree the planner stacks the pipeline
decorators of :mod:`repro.engine.plan`, bottom-up: GroupBy/Aggregate, then
Sort -- fused with a LIMIT into a bounded k-heap TopK -- then Limit and
Project.  Two ordering-aware rules matter:

* **free ORDER BY**: when the chosen input already streams in the requested
  order (any sweep path over a table clustered on the sort column, a merge
  join on it, probe/hash chains that preserve the driver's order), the Sort
  node is planned away entirely and the LIMIT keeps terminating the scan
  early;
* **blocking awareness**: a Sort/TopK/Aggregate consumes its whole input,
  so the LIMIT is *not* pushed into the scan/join costing beneath one --
  exactly as a hash build of the outer input already blocked the stream in
  the join costing.

A specific access method or join strategy can also be forced, which is how
the benchmarks compare plans against each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:
    from repro.core.correlation_map import CorrelationMap
    from repro.storage.disk import DiskModel

from repro.core.cost import (
    CMCostInputs,
    CostSplit,
    broadcast_cost,
    cm_lookup_cost,
    cm_lookup_cost_split,
    hash_group_cost,
    hash_join_cost,
    index_nested_loop_join_cost,
    limited_cost,
    merge_exchange_cost,
    nested_loop_join_cost,
    pipelined_lookup_cost,
    repartition_cost,
    scalar_aggregate_cost,
    scan_cost,
    sort_cost,
    sort_merge_join_cost,
    sorted_lookup_cost,
    sorted_lookup_cost_split,
    top_k_cost,
)
from repro.core.model import HardwareParameters
from repro.core.statistics import join_fanout
from repro.engine.access import (
    AccessPath,
    ClusteredIndexScan,
    CorrelationMapScan,
    InnerPathBuilder,
    PipelinedIndexScan,
    SeqScan,
    SortedIndexScan,
)
from repro.engine.executor import (
    HashJoin,
    IndexNestedLoopJoin,
    JoinOperator,
    NestedLoopJoin,
    PlanNode,
    ScanNode,
    SortMergeJoin,
)
from repro.engine.exchange import (
    BroadcastNode,
    MergeExchangeNode,
    RepartitionNode,
    _BroadcastCache,
    _RepartitionCache,
)
from repro.engine.partition import PartitionedTable, PartitionSpec
from repro.engine.plan import (
    AggregateNode,
    ExchangeNode,
    GroupByNode,
    LimitNode,
    ProjectNode,
    SortNode,
    TopKNode,
    _ordering_text,
)
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Query
from repro.engine.table import Table

#: Anything the decorator layer can estimate groups over: a plain table or a
#: partitioned one (both expose schema, cardinalities and row estimates).
AnyTable = Table | PartitionedTable

#: Names accepted by ``force=`` arguments (single-table access methods).
FORCE_METHODS = (
    "seq_scan",
    "sorted_index_scan",
    "pipelined_index_scan",
    "clustered_index_scan",
    "cm_scan",
)

#: Names accepted by ``force_join=`` arguments.
FORCE_JOIN_METHODS = (
    "nested_loop_join",
    "index_nested_loop_join",
    "hash_join",
    "sort_merge_join",
)

#: Operator class implementing each forced join strategy.
_FORCE_JOIN_OPERATORS = {
    "nested_loop_join": NestedLoopJoin,
    "index_nested_loop_join": IndexNestedLoopJoin,
    "hash_join": HashJoin,
    "sort_merge_join": SortMergeJoin,
}


@dataclass(frozen=True)
class _RawScan:
    """One applicable access path before LIMIT-aware costing.

    The raw candidates are shared between single-table planning, join-driver
    selection and the decorator layer, so the Section 4 formulas are
    evaluated exactly once per path.
    """

    path: AccessPath
    structure: str
    split: CostSplit
    unlimited_ms: float


class Planner:
    """Chooses physical plan trees for queries over one database."""

    def __init__(self, hardware: HardwareParameters) -> None:
        self.hardware = hardware

    # -- lookup-count estimation --------------------------------------------------

    def _estimate_n_lookups(
        self, table: Table, predicates: PredicateSet, attributes: Sequence[str]
    ) -> int:
        """How many distinct values an index/CM will be probed with."""
        first = attributes[0]
        predicate = predicates.on_attribute(first)
        if predicate is None:
            return 1
        if isinstance(predicate, Equals):
            return 1
        if isinstance(predicate, InSet):
            return max(1, len(predicate.values))
        if isinstance(predicate, Between):
            # Approximate the number of distinct values inside the range from
            # the attribute's cardinality, assuming a roughly uniform domain.
            # Cardinality and domain bounds come from the incrementally
            # maintained statistics -- plan enumeration never scans the heap.
            cardinality = table.attribute_cardinality(first)
            bounds = table.attribute_range(first)
            if bounds is None:
                return 1
            lo, hi = bounds
            try:
                span = float(hi) - float(lo)
                width = float(predicate.high if predicate.high is not None else hi) - float(
                    predicate.low if predicate.low is not None else lo
                )
                fraction = min(1.0, max(0.0, width / span)) if span > 0 else 1.0
            except (TypeError, ValueError):
                fraction = 0.1
            return max(1, int(round(cardinality * fraction)))
        return 1

    # -- candidate enumeration (single table) -------------------------------------

    def _raw_scan_candidates(
        self, table: Table, predicates: PredicateSet
    ) -> list[_RawScan]:
        """Every applicable access path with its Section 4 cost split."""
        profile = table.table_profile()
        full_scan = scan_cost(profile, self.hardware)
        raws = [
            _RawScan(
                path=SeqScan(table, predicates),
                structure="heap",
                split=CostSplit(0.0, full_scan),
                unlimited_ms=full_scan,
            )
        ]

        predicate_attrs = {p.attribute for p in predicates.indexable_predicates()}

        if (
            table.clustered_attribute is not None
            and table.clustered_attribute in predicate_attrs
        ):
            n = self._estimate_n_lookups(table, predicates, [table.clustered_attribute])
            corr = table.correlation_profile(table.clustered_attribute)
            raws.append(
                _RawScan(
                    path=ClusteredIndexScan(table, predicates),
                    structure=f"clustered({table.clustered_attribute})",
                    split=sorted_lookup_cost_split(n, corr, profile, self.hardware),
                    unlimited_ms=sorted_lookup_cost(n, corr, profile, self.hardware),
                )
            )

        for name, index in table.secondary_indexes.items():
            if index.attributes[0] not in predicate_attrs:
                continue
            if table.clustered_attribute is None:
                continue
            n = self._estimate_n_lookups(table, predicates, index.attributes)
            corr = table.correlation_profile(list(index.attributes))
            raws.append(
                _RawScan(
                    path=SortedIndexScan(table, index, predicates),
                    structure=name,
                    split=sorted_lookup_cost_split(n, corr, profile, self.hardware),
                    unlimited_ms=sorted_lookup_cost(n, corr, profile, self.hardware),
                )
            )

        for name, cm in table.correlation_maps.items():
            if not any(attr in predicate_attrs for attr in cm.attributes):
                continue
            n = self._estimate_cm_lookups(cm, predicates)
            inputs = CMCostInputs(
                buckets_per_lookup=max(1.0, cm.measured_c_per_u()),
                pages_per_bucket=self._pages_per_target(table, cm),
                cm_pages=cm.size_pages(),
                cm_resident=True,
            )
            raws.append(
                _RawScan(
                    path=CorrelationMapScan(table, cm, predicates),
                    structure=name,
                    split=cm_lookup_cost_split(n, inputs, profile, self.hardware),
                    unlimited_ms=cm_lookup_cost(n, inputs, profile, self.hardware),
                )
            )
        return raws

    def _scan_node(
        self, table: Table, raw: _RawScan, est_rows: float, limit: int | None
    ) -> ScanNode:
        """An executable, costed leaf for one raw candidate.

        A limit only changes the costing when it actually bites: the
        full-result formulas clamp upfront+streaming jointly, so fall back
        to them whenever every matching row will be produced.
        """
        if limit is None or est_rows < 1.0 or limit >= est_rows:
            cost = raw.unlimited_ms
        else:
            cost = limited_cost(raw.split, est_rows, limit)
        node = ScanNode(raw.path)
        node.structure = raw.structure
        node.cost_split = raw.split
        node.est_cost_ms = cost
        node.est_rows = est_rows
        node.est_pages = self._est_pages(raw.split, table)
        return node

    def _est_pages(self, split: CostSplit, table: Table) -> float:
        """Rough page estimate: the streaming cost re-read as sequential pages."""
        if self.hardware.seq_page_cost_ms <= 0:
            return float(table.num_pages)
        return min(
            float(table.num_pages), split.streaming_ms / self.hardware.seq_page_cost_ms
        )

    def _candidate_scan_plans(
        self, table: Table, predicates: PredicateSet, *, limit: int | None = None
    ) -> list[ScanNode]:
        """Bare (undecorated) scan candidates -- also the join-driver pool."""
        est_rows = table.estimate_matching_rows(predicates)
        return [
            self._scan_node(table, raw, est_rows, limit)
            for raw in self._raw_scan_candidates(table, predicates)
        ]

    def candidate_plans(
        self,
        table: Table,
        query: Query,
        *,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> list[PlanNode]:
        """All applicable plan trees for ``query``, costed bottom-up.

        Each candidate is a full operator tree: the access path plus the
        Aggregate/GroupBy/Sort/TopK/Limit/Project decorators the query asks
        for.  With ``limit`` given, fully streaming candidates are costed
        for producing ``min(limit, estimated_result_rows)`` rows (see
        :func:`repro.core.cost.limited_cost`); a candidate whose tree blocks
        -- an aggregate, or an ORDER BY its stream does not already satisfy
        -- is costed for the full input drain instead.
        """
        if projection is None:
            projection = query.projection
        est_rows = table.estimate_matching_rows(query.predicates)
        plans = []
        for raw in self._raw_scan_candidates(table, query.predicates):
            ordering = raw.path.output_ordering()
            sort_needed = bool(query.ordering) and not self._ordering_satisfied(
                ordering, query.ordering
            )
            blocking = query.aggregate is not None or sort_needed
            node = self._scan_node(table, raw, est_rows, None if blocking else limit)
            plans.append(
                self._decorate(
                    node,
                    query,
                    limit=limit,
                    projection=projection,
                    input_rows=est_rows,
                    input_ordering=ordering,
                    tables=[table],
                    disk=table.buffer_pool.disk,
                )
            )
        return plans

    def _estimate_cm_lookups(self, cm: CorrelationMap, predicates: PredicateSet) -> int:
        """Number of CM keys (buckets) the query's constraints touch.

        The CM is memory resident, so counting its matching keys is cheap and
        is exactly what the front-end does while rewriting the query; using it
        keeps the planner's ``n_lookups`` at bucket granularity rather than
        value granularity for range predicates over bucketed attributes.
        """
        constraints = {
            attr: constraint
            for attr, constraint in predicates.constraints().items()
            if attr in cm.attributes
        }
        if not constraints:
            return 1
        bucket_constraints = cm.key_spec.bucket_constraints(constraints)
        from repro.core.composite import key_matches

        matching = sum(1 for key in cm.keys() if key_matches(key, bucket_constraints))
        return max(1, matching)

    def _pages_per_target(self, table: Table, cm: CorrelationMap) -> float:
        """Average heap pages covered by one CM target (bucket or value)."""
        if table.cm_uses_buckets(cm.name) and table.pages_per_bucket:
            return float(table.pages_per_bucket)
        profile = table.correlation_profile(table.clustered_attribute)
        return max(1.0, profile.c_pages(table.tups_per_page))

    # -- ordering analysis ---------------------------------------------------------

    @staticmethod
    def _ordering_satisfied(
        stream_ordering: Sequence[tuple[Any, bool]],
        required: Sequence[tuple[str, bool]],
    ) -> bool:
        """Whether a stream's known ordering covers the requested ORDER BY.

        ``stream_ordering`` entries are ``(column_or_column_set, ascending)``
        -- a merge join's output is simultaneously ordered under both join
        key names, hence the set form.  The requested order must be a
        direction-matching prefix of the stream's (a stream sorted by
        ``(a, b)`` satisfies ``ORDER BY a`` because the sort is stable).
        Heaps and indexes only flow forward, so their streams carry
        ascending entries and can never satisfy a descending request; a
        merge exchange, however, re-emits whatever order its per-partition
        sorts produced, descending included.
        """
        if len(required) > len(stream_ordering):
            return False
        for (column, ascending), entry in zip(required, stream_ordering):
            columns, stream_ascending = entry
            if isinstance(columns, str):
                columns = {columns}
            if ascending != stream_ascending or column not in columns:
                return False
        return True

    def _estimate_groups(
        self, tables: Sequence[AnyTable], grouping: Sequence[str], est_input_rows: float
    ) -> float:
        """Expected distinct group count, from the reservoir samples.

        When one table owns every group column its composite-key cardinality
        is used directly; otherwise (grouping across join sides) the
        per-column cardinalities multiply, capped by the input size -- the
        textbook independence assumption.
        """
        grouping = list(grouping)
        for table in tables:
            if all(table.schema.has_column(column) for column in grouping):
                distinct = float(table.key_cardinality(grouping))
                return max(0.0, min(est_input_rows, distinct))
        product = 1.0
        for column in grouping:
            owner = next(
                (t for t in tables if t.schema.has_column(column)), None
            )
            if owner is not None:
                product *= max(1.0, float(owner.attribute_cardinality(column)))
        return max(0.0, min(est_input_rows, product))

    # -- decorator layer -----------------------------------------------------------

    def _decorate(
        self,
        node: PlanNode,
        query: Query,
        *,
        limit: int | None,
        projection: Sequence[str] | None,
        input_rows: float,
        input_ordering: Sequence[tuple[Any, bool]],
        tables: Sequence[AnyTable],
        disk: DiskModel | None,
    ) -> PlanNode:
        """Stack Aggregate/GroupBy, Sort/TopK, Limit, Project over ``node``.

        Costs accumulate bottom-up: the input tree's ``est_cost_ms`` (already
        LIMIT-aware when the pipeline streams) plus each decorator's own
        :class:`CostSplit`.  The finished root carries the whole-tree cost
        and the pipeline ``structure`` string.
        """
        total = node.est_cost_ms if node.est_cost_ms is not None else 0.0
        structure = node.structure
        est = input_rows
        ordering = input_ordering
        current = node
        hw = self.hardware

        if query.aggregate is not None:
            if query.grouping:
                groups = self._estimate_groups(tables, query.grouping, est)
                split = hash_group_cost(est, groups, hw)
                current = GroupByNode(
                    current, query.grouping, query.aggregate, disk=disk
                )
                est = groups
                structure += (
                    f" -> hash_group({', '.join(query.grouping)}: "
                    f"{query.aggregate.output_name})"
                )
            else:
                split = scalar_aggregate_cost(est, hw)
                current = AggregateNode(current, query.aggregate, disk=disk)
                est = 1.0
                structure += f" -> aggregate({query.aggregate.output_name})"
            current.est_rows = est
            current.est_pages = 0.0
            current.cost_split = split
            total += split.total_ms
            ordering = ()  # hash aggregation scrambles any input order

        limit_fused = False
        if query.ordering:
            if self._ordering_satisfied(ordering, query.ordering):
                pass  # free ORDER BY: the stream already flows in order
            elif limit is not None:
                split = top_k_cost(est, limit, hw)
                current = TopKNode(current, query.ordering, limit, disk=disk)
                est = min(est, float(limit))
                current.est_rows = est
                current.est_pages = 0.0
                current.cost_split = split
                total += split.total_ms
                structure += f" -> topk({current.describe_detail()})"
                limit_fused = True
            else:
                split = sort_cost(est, hw)
                current = SortNode(current, query.ordering, disk=disk)
                current.est_rows = est
                current.est_pages = 0.0
                current.cost_split = split
                total += split.total_ms
                structure += f" -> sort({current.describe_detail()})"

        if limit is not None and not limit_fused:
            current = LimitNode(current, limit, disk=disk)
            est = min(est, float(limit))
            current.est_rows = est
            current.est_pages = 0.0

        if projection is not None:
            current = ProjectNode(current, projection, disk=disk)
            current.est_rows = est
            current.est_pages = 0.0

        current.est_cost_ms = total
        current.structure = structure
        return current

    # -- selection (single table) ---------------------------------------------------

    def choose(
        self,
        table: Table,
        query: Query,
        *,
        force: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> PlanNode:
        """Pick the cheapest applicable plan tree (or the forced one).

        ``limit``/``projection`` are the effective execution values; pass
        them so the tree's Limit/Project nodes and the LIMIT-aware costing
        match what the execution will run.
        """
        if force is not None and force not in FORCE_METHODS:
            raise ValueError(f"unknown access method {force!r}")
        if projection is None:
            projection = query.projection
        if force == "pipelined_index_scan":
            node = self._pipelined_plan(table, query.predicates)
            if node is None:
                raise ValueError("no secondary index available for a pipelined scan")
            return self._decorate(
                node,
                query,
                limit=limit,
                projection=projection,
                input_rows=node.est_rows or 0.0,
                input_ordering=node.path.output_ordering(),
                tables=[table],
                disk=table.buffer_pool.disk,
            )
        plans = self.candidate_plans(table, query, limit=limit, projection=projection)
        if force is not None:
            matching = [plan for plan in plans if plan.method == force]
            if not matching:
                raise ValueError(f"no applicable plan for forced method {force!r}")
            return min(matching, key=lambda plan: plan.estimated_cost_ms)
        return min(plans, key=self.plan_rank)

    def _pipelined_plan(self, table: Table, predicates: PredicateSet) -> ScanNode | None:
        """The pipelined variant of the cheapest applicable sorted-index plan.

        Pipelined scans are never chosen by cost (the paper's point is how
        badly they do), so they are synthesized on demand for ``force=``
        callers -- including as a join's driving path.  Costed per Section
        3.1; fully streaming, so the split has no upfront part.
        """
        for raw in self._raw_scan_candidates(table, predicates):
            if isinstance(raw.path, SortedIndexScan):
                profile = table.table_profile()
                corr = table.correlation_profile(list(raw.path.index.attributes))
                n = self._estimate_n_lookups(table, predicates, raw.path.index.attributes)
                cost = pipelined_lookup_cost(n, corr, profile, self.hardware)
                node = ScanNode(
                    PipelinedIndexScan(table, raw.path.index, predicates)
                )
                node.structure = raw.structure
                node.cost_split = CostSplit(0.0, cost)
                node.est_cost_ms = cost
                node.est_rows = table.estimate_matching_rows(predicates)
                return node
        return None

    # -- selection (partitioned table) ------------------------------------------------

    def _partition_scan(
        self, partition: Table, predicates: PredicateSet, force: str | None
    ) -> ScanNode:
        """The cheapest (or forced) bare scan over one partition child."""
        if force == "pipelined_index_scan":
            node = self._pipelined_plan(partition, predicates)
            if node is None:
                raise ValueError("no secondary index available for a pipelined scan")
            return node
        candidates = self._candidate_scan_plans(partition, predicates)
        if force is not None:
            candidates = [plan for plan in candidates if plan.method == force]
            if not candidates:
                raise ValueError(f"no applicable plan for forced method {force!r}")
        return min(candidates, key=self.plan_rank)

    def choose_partitioned(
        self,
        table: PartitionedTable,
        query: Query,
        *,
        force: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> PlanNode:
        """Prune partitions statically, then fan one scan subtree per survivor.

        Pruning consults only the partition spec and the predicate set (see
        :meth:`repro.engine.partition.PartitionSpec.prune`) -- zero heap
        reads, like the rest of plan enumeration.  Each surviving partition
        gets its own cheapest (or forced) access path, chosen from that
        partition's private statistics; the :class:`ExchangeNode` then
        concatenates the children in ascending partition order and the usual
        decorator stack goes on top, charged to the shared device.

        Under range partitioning the concatenation preserves an ORDER BY on
        the partition key for free whenever every child already streams in
        key order (partition *k*'s values all precede partition *k+1*'s).
        """
        if force is not None and force not in FORCE_METHODS:
            raise ValueError(f"unknown access method {force!r}")
        if projection is None:
            projection = query.projection
        spec = table.spec
        survivors = table.prune(query.predicates)
        children: list[PlanNode] = [
            self._partition_scan(table.partitions[index], query.predicates, force)
            for index in survivors
        ]
        key_order = ((spec.key, True),)
        ordering: Sequence[tuple[Any, bool]] = ()
        if spec.method == "range" and all(
            self._ordering_satisfied(child.path.output_ordering(), key_order)
            for child in children
        ):
            ordering = key_order
        child_structures = sorted({child.structure or "?" for child in children})
        body = (
            f"{spec.describe()}: {len(children)}/{spec.num_partitions} "
            f"scanned via {', '.join(child_structures) if child_structures else 'none'}"
        )
        devices = [table.devices[index] for index in survivors]
        exchange, input_ordering = self._assemble_exchange(
            children,
            devices,
            devices,
            spec=spec,
            shared_disk=table.disk,
            query=query,
            limit=limit,
            concat_ordering=ordering,
            structure_body=body,
        )
        return self._decorate(
            exchange,
            query,
            limit=limit,
            projection=projection,
            input_rows=exchange.est_rows or 0.0,
            input_ordering=input_ordering,
            tables=[table],
            disk=table.disk,
        )

    def _assemble_exchange(
        self,
        children: list[PlanNode],
        device_entries: Sequence["DiskModel | tuple[DiskModel, ...]"],
        sort_devices: Sequence["DiskModel"],
        *,
        spec: PartitionSpec,
        shared_disk: "DiskModel",
        query: Query,
        limit: int | None,
        concat_ordering: Sequence[tuple[Any, bool]],
        structure_body: str,
    ) -> tuple[ExchangeNode, Sequence[tuple[Any, bool]]]:
        """The exchange over per-partition subtrees: plain concat or k-way merge.

        When the query orders its rows, the concatenation does not already
        satisfy the ORDER BY, and at least two partitions survive, each child
        is wrapped in a per-partition Sort (or TopK when a LIMIT bounds the
        result -- partitioned ORDER BY + LIMIT becomes per-partition top-k)
        charged to that partition's private device, and a
        :class:`MergeExchangeNode` heap-merges the ordered streams instead of
        sorting the concatenation.  The returned ordering is what the
        exchange's output stream provides, for :meth:`_decorate` (a merge's
        output satisfies the ORDER BY outright, descending included).
        """
        hw = self.hardware
        est_rows = sum(child.est_rows or 0.0 for child in children)
        est_pages = sum(child.est_pages or 0.0 for child in children)
        base_cost = sum(child.est_cost_ms or 0.0 for child in children)
        want_merge = (
            bool(query.ordering)
            and query.aggregate is None
            and len(children) >= 2
            and not self._ordering_satisfied(concat_ordering, query.ordering)
        )
        if not want_merge:
            exchange = ExchangeNode(
                children,
                devices=device_entries,
                partition_key=spec.key,
                partition_method=spec.method,
                partitions_total=spec.num_partitions,
            )
            exchange.est_rows = est_rows
            exchange.est_pages = est_pages
            exchange.est_cost_ms = base_cost
            exchange.structure = f"exchange[{structure_body}]"
            return exchange, concat_ordering

        wrapped: list[PlanNode] = []
        extra_ms = 0.0
        out_rows = 0.0
        for child, device in zip(children, sort_devices):
            rows = child.est_rows or 0.0
            node: PlanNode
            if limit is not None:
                split = top_k_cost(rows, limit, hw)
                node = TopKNode(child, query.ordering, limit, disk=device)
                node.est_rows = min(rows, float(limit))
            else:
                split = sort_cost(rows, hw)
                node = SortNode(child, query.ordering, disk=device)
                node.est_rows = rows
            node.est_pages = 0.0
            node.cost_split = split
            extra_ms += split.total_ms
            out_rows += node.est_rows
            wrapped.append(node)
        merge_split = merge_exchange_cost(out_rows, len(wrapped), hw)
        merge = MergeExchangeNode(
            wrapped,
            devices=device_entries,
            partition_key=spec.key,
            partition_method=spec.method,
            partitions_total=spec.num_partitions,
            ordering=query.ordering,
            disk=shared_disk,
        )
        merge.est_rows = out_rows
        merge.est_pages = est_pages
        merge.cost_split = merge_split
        merge.est_cost_ms = base_cost + extra_ms + merge_split.total_ms
        kind = "topk" if limit is not None else "sort"
        merge.structure = (
            f"merge_exchange[{_ordering_text(tuple(query.ordering))}; "
            f"{structure_body}; per-partition {kind}]"
        )
        return merge, tuple(query.ordering)

    def candidate_partitioned_plans(
        self,
        table: PartitionedTable,
        query: Query,
        *,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> list[PlanNode]:
        """Every distinct partitioned plan shape, for ``Database.explain``.

        The unforced choice (which may mix access methods across partitions)
        comes first, followed by each uniformly-forced shape that applies;
        structurally identical trees are listed once.
        """
        plans = [
            self.choose_partitioned(table, query, limit=limit, projection=projection)
        ]
        seen = {plans[0].structure}
        for method in FORCE_METHODS:
            try:
                plan = self.choose_partitioned(
                    table, query, force=method, limit=limit, projection=projection
                )
            except ValueError:
                continue
            if plan.structure not in seen:
                seen.add(plan.structure)
                plans.append(plan)
        return plans

    # -- selection (partition-wise joins) ----------------------------------------------

    def _partition_join_layout(
        self,
        tables: Mapping[str, AnyTable],
        query: Query,
        *,
        enable_repartition: bool = True,
    ) -> "_PartitionJoinLayout":
        """Classify a two-table join touching partitioned storage.

        The partitioned side is the *outer* of every per-partition subtree
        (the driving side when both are partitioned); static pruning runs on
        the outer side's local predicates only, so result rows match the
        flat join row for row.  Three exchange shapes can apply:

        * ``co_partitioned`` -- both sides partitioned with byte-identical
          layouts (:meth:`PartitionSpec.layout_compatible_with`) and the two
          partition keys equated in the join condition: partition *k* joins
          partition *k*, any per-partition operator applies.
        * ``broadcast`` -- a flat build side replicated to every partition's
          hash join through a shared cache, scanned once.
        * ``repartition`` -- the build side (flat, or partitioned with an
          incompatible layout) hash-split into the outer layout by the join
          column equated with the outer partition key; gated by
          ``enable_repartition`` (``Database.enable_repartition``).
        """
        names = list(query.tables)
        if len(names) != 2:
            raise ValueError(
                "joins over partitioned tables support exactly two tables; "
                f"{query.describe()!r} joins {len(names)}"
            )
        edges = self._join_edges(tables, query)
        driving, other = names
        outer_name = (
            driving
            if isinstance(tables[driving], PartitionedTable)
            else other
        )
        inner_name = other if outer_name == driving else driving
        pairs: list[tuple[str, str]] = []
        for a, ca, b, cb in edges:
            if a == outer_name and b == inner_name:
                pairs.append((ca, cb))
            elif a == inner_name and b == outer_name:
                pairs.append((cb, ca))
        if not pairs:
            raise ValueError(
                f"join graph of {query.describe()!r} is not connected: every "
                "joined table needs an equality linking it to the chain"
            )
        outer = tables[outer_name]
        assert isinstance(outer, PartitionedTable)
        inner = tables[inner_name]
        spec = outer.spec
        outer_local = self._local_predicates(query, outer_name)
        inner_local = self._local_predicates(query, inner_name)
        shapes: list[str] = []
        if (
            isinstance(inner, PartitionedTable)
            and spec.layout_compatible_with(inner.spec)
            and (spec.key, inner.spec.key) in pairs
        ):
            shapes.append("co_partitioned")
        if isinstance(inner, Table):
            shapes.append("broadcast")
        route_column = next(
            (ic for oc, ic in pairs if oc == spec.key), None
        )
        if (
            route_column is not None
            and "co_partitioned" not in shapes
            and enable_repartition
        ):
            shapes.append("repartition")
        if not shapes:
            if route_column is not None and not enable_repartition:
                raise ValueError(
                    f"cannot join partitioned table {outer_name!r} with "
                    f"{inner_name!r}: the partition layouts are incompatible "
                    "and repartitioning is disabled "
                    "(Database.enable_repartition)"
                )
            raise ValueError(
                f"cannot join partitioned table {outer_name!r} with "
                f"{inner_name!r}: the join condition equates neither "
                f"compatible partition keys nor the partition key "
                f"{spec.key!r}, and the build side is not a flat table"
            )
        return _PartitionJoinLayout(
            outer_name=outer_name,
            inner_name=inner_name,
            outer=outer,
            inner=inner,
            pairs=pairs,
            outer_local=outer_local,
            inner_local=inner_local,
            survivors=tuple(outer.prune(outer_local)),
            shapes=tuple(shapes),
        )

    @staticmethod
    def _filter_join_candidates(
        candidates: list["_StepCandidate"], force_join: str | None
    ) -> list["_StepCandidate"]:
        """The subset of step candidates a forced join method permits."""
        if force_join is None:
            return candidates
        if force_join == "nested_loop_join":
            return [c for c in candidates if c.strategy == "seq_scan"]
        if force_join == "index_nested_loop_join":
            return [
                c
                for c in candidates
                if c.kind == "probe" and c.strategy != "seq_scan"
            ]
        if force_join == "hash_join":
            return [c for c in candidates if c.kind == "hash"]
        if force_join == "sort_merge_join":
            return [c for c in candidates if c.kind == "merge"]
        raise ValueError(f"unknown join method {force_join!r}")

    def _partition_join_plan(
        self,
        layout: "_PartitionJoinLayout",
        shape: str,
        query: Query,
        *,
        force: str | None,
        force_join: str | None,
        limit: int | None,
        projection: Sequence[str] | None,
    ) -> PlanNode:
        """One decorated partition-wise join plan of the requested shape."""
        outer, inner = layout.outer, layout.inner
        spec = outer.spec
        hw = self.hardware
        pairs = layout.pairs
        outer_columns = [oc for oc, _ic in pairs]
        inner_columns = [ic for _oc, ic in pairs]
        key_order = ((spec.key, True),)

        if shape in ("broadcast", "repartition") and force_join not in (
            None,
            "hash_join",
        ):
            raise ValueError(
                f"the {shape} shape only supports hash_join, not {force_join!r}"
            )

        # The single fill plan (broadcast source, repartition source) plus
        # the shape-level cost paid once rather than per partition.
        fill: PlanNode | None = None
        extra_ms = 0.0
        broadcast_cache: "_BroadcastCache | None" = None
        repartition_cache: "_RepartitionCache | None" = None
        route_column: str | None = None
        est_fill_rows = 0.0
        if shape == "broadcast":
            assert isinstance(inner, Table)
            fill = min(
                self._candidate_scan_plans(inner, layout.inner_local),
                key=self.plan_rank,
            )
            est_fill_rows = fill.est_rows or 0.0
            extra_ms = broadcast_cost(
                fill.est_cost_ms or 0.0,
                est_fill_rows,
                max(1, len(layout.survivors)),
                hw,
            ).total_ms
            broadcast_cache = _BroadcastCache()
        elif shape == "repartition":
            route_column = next(ic for oc, ic in pairs if oc == spec.key)
            if isinstance(inner, PartitionedTable):
                inner_survivors = inner.prune(layout.inner_local)
                inner_children = [
                    self._partition_scan(
                        inner.partitions[index], layout.inner_local, None
                    )
                    for index in inner_survivors
                ]
                fill = ExchangeNode(
                    inner_children,
                    devices=[inner.devices[index] for index in inner_survivors],
                    partition_key=inner.spec.key,
                    partition_method=inner.spec.method,
                    partitions_total=inner.spec.num_partitions,
                )
                fill.est_rows = sum(c.est_rows or 0.0 for c in inner_children)
                fill.est_pages = sum(c.est_pages or 0.0 for c in inner_children)
                fill.est_cost_ms = sum(
                    c.est_cost_ms or 0.0 for c in inner_children
                )
            else:
                fill = min(
                    self._candidate_scan_plans(inner, layout.inner_local),
                    key=self.plan_rank,
                )
            est_fill_rows = fill.est_rows or 0.0
            extra_ms = repartition_cost(
                fill.est_cost_ms or 0.0,
                est_fill_rows,
                est_fill_rows / max(1, inner.tups_per_page),
                hw,
            ).total_ms
            repartition_cache = _RepartitionCache()

        selectivity = 1.0
        if layout.inner_local:
            selectivity = inner.statistics.match_fraction(
                layout.inner_local.matches, key=tuple(layout.inner_local)
            )
        children: list[PlanNode] = []
        device_entries: list["DiskModel | tuple[DiskModel, ...]"] = []
        sort_devices: list["DiskModel"] = []
        concat_ordered = spec.method == "range"
        for position, index in enumerate(layout.survivors):
            outer_scan = self._partition_scan(
                outer.partitions[index], layout.outer_local, force
            )
            est_rows = outer_scan.est_rows or 0.0
            outer_key_card = float(
                outer.partitions[index].key_cardinality(outer_columns)
            )
            operator: JoinOperator
            if shape == "co_partitioned":
                assert isinstance(inner, PartitionedTable)
                inner_child = inner.partitions[index]
                child_selectivity = (
                    inner_child.statistics.match_fraction(
                        layout.inner_local.matches,
                        key=tuple(layout.inner_local),
                    )
                    if layout.inner_local
                    else 1.0
                )
                step = _JoinStep(
                    table=inner_child,
                    join_on=list(pairs),
                    local=layout.inner_local,
                    options=self._inner_strategy_options(
                        inner_child, inner_columns
                    ),
                    fanout=join_fanout(
                        inner_child.num_rows,
                        outer_key_card,
                        float(inner_child.key_cardinality(inner_columns)),
                    ),
                    selectivity=child_selectivity,
                    est_inner_rows=inner_child.num_rows * child_selectivity,
                    inner_sorted=(
                        len(inner_columns) == 1
                        and inner_child.clustered_attribute == inner_columns[0]
                        and not inner_child.tail_pages()
                    ),
                )
                outer_sorted = len(pairs) == 1 and self._ordering_satisfied(
                    outer_scan.path.output_ordering(), ((pairs[0][0], True),)
                )
                candidates = self._filter_join_candidates(
                    self._step_candidates(step, est_rows, outer_sorted),
                    force_join,
                )
                if not candidates:
                    raise ValueError(
                        "no applicable plan for forced join method "
                        f"{force_join!r}"
                    )
                chosen = min(candidates, key=lambda c: c.split.total_ms)
                rows_after = est_rows * step.fanout * step.selectivity
                operator = self._build_step_operator(
                    outer_scan, step, chosen, rows_after
                )
                split = chosen.split
                pages = float(inner_child.num_pages) if chosen.kind in (
                    "hash",
                    "merge",
                ) else 0.0
                # Probe-family steps and an inner-built hash preserve the
                # outer stream's order; a merge or an outer-built hash
                # scrambles the concatenation's partition-key order.
                if chosen.kind == "merge" or (
                    chosen.kind == "hash" and chosen.build_side == "outer"
                ):
                    concat_ordered = False
                device_entries.append(
                    (outer.devices[index], inner.devices[index])
                )
            else:
                fanout = join_fanout(
                    inner.num_rows,
                    outer_key_card,
                    float(inner.key_cardinality(inner_columns)),
                )
                rows_after = est_rows * fanout * selectivity
                if shape == "broadcast":
                    assert broadcast_cache is not None and fill is not None
                    build: PlanNode = BroadcastNode(
                        broadcast_cache,
                        cpu_disk=outer.devices[index],
                        table_name=inner.name,
                        source=fill if position == 0 else None,
                    )
                    build.est_rows = est_fill_rows
                    build.est_pages = 0.0
                    build_rows = est_fill_rows
                else:
                    assert repartition_cache is not None
                    assert fill is not None and route_column is not None
                    build = RepartitionNode(
                        repartition_cache,
                        partition_index=index,
                        spec=spec,
                        route_column=route_column,
                        table_name=inner.name,
                        cpu_disk=outer.devices[index],
                        disk=outer.disk,
                        tups_per_page=inner.tups_per_page,
                        source=fill if position == 0 else None,
                    )
                    build_rows = est_fill_rows / max(1, spec.num_partitions)
                    build.est_rows = build_rows
                    build.est_pages = 0.0
                operator = HashJoin(
                    outer_scan,
                    build,
                    pairs,
                    build_side="inner",
                    inner_label=f"{shape}({inner.name})",
                )
                split = CostSplit(
                    upfront_ms=build_rows * hw.cpu_tuple_cost_ms,
                    streaming_ms=est_rows * hw.cpu_tuple_cost_ms,
                )
                pages = 0.0
                device_entries.append(outer.devices[index])
            if concat_ordered and not self._ordering_satisfied(
                outer_scan.path.output_ordering(), key_order
            ):
                concat_ordered = False
            operator.est_rows = rows_after
            operator.cost_split = split
            operator.est_pages = (outer_scan.est_pages or 0.0) + pages
            operator.est_cost_ms = (
                (outer_scan.est_cost_ms or 0.0) + split.total_ms
            )
            operator.structure = (
                f"{outer_scan.structure} -> "
                f"{operator.name}({operator.describe_detail()})"
            )
            children.append(operator)
            sort_devices.append(outer.devices[index])

        child_structures = sorted(
            {child.structure or "?" for child in children}
        )
        shape_label = {
            "co_partitioned": f"co-partitioned with {inner.name}",
            "broadcast": f"broadcast {inner.name}",
            "repartition": f"repartition {inner.name}",
        }[shape]
        body = (
            f"{spec.describe()}: {len(children)}/{spec.num_partitions} "
            f"{shape_label} via "
            f"{', '.join(child_structures) if child_structures else 'none'}"
        )
        exchange, input_ordering = self._assemble_exchange(
            children,
            device_entries,
            sort_devices,
            spec=spec,
            shared_disk=outer.disk,
            query=query,
            limit=limit,
            concat_ordering=key_order if concat_ordered else (),
            structure_body=body,
        )
        exchange.est_cost_ms = (exchange.est_cost_ms or 0.0) + extra_ms
        return self._decorate(
            exchange,
            query,
            limit=limit,
            projection=projection,
            input_rows=exchange.est_rows or 0.0,
            input_ordering=input_ordering,
            tables=[outer, inner],
            disk=outer.disk,
        )

    def choose_partitioned_join(
        self,
        tables: Mapping[str, AnyTable],
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
        enable_repartition: bool = True,
    ) -> PlanNode:
        """The cheapest partition-wise join plan over partitioned storage.

        Every applicable exchange shape (co-partitioned, broadcast,
        repartition -- see :meth:`_partition_join_layout`) is built and
        costed; selection picks the cheapest by :meth:`plan_rank`, exactly
        as flat join planning picks among its strategy shapes.
        """
        if force is not None and force not in FORCE_METHODS:
            raise ValueError(f"unknown access method {force!r}")
        if force_join is not None and force_join not in FORCE_JOIN_METHODS:
            raise ValueError(f"unknown join method {force_join!r}")
        if projection is None:
            projection = query.projection
        layout = self._partition_join_layout(
            tables, query, enable_repartition=enable_repartition
        )
        plans: list[PlanNode] = []
        errors: list[str] = []
        for shape in layout.shapes:
            try:
                plans.append(
                    self._partition_join_plan(
                        layout,
                        shape,
                        query,
                        force=force,
                        force_join=force_join,
                        limit=limit,
                        projection=projection,
                    )
                )
            except ValueError as error:
                errors.append(str(error))
        if not plans:
            raise ValueError(
                errors[0] if errors else "no applicable partition-wise join plan"
            )
        return min(plans, key=self.plan_rank)

    def candidate_partitioned_join_plans(
        self,
        tables: Mapping[str, AnyTable],
        query: Query,
        *,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
        enable_repartition: bool = True,
    ) -> list[PlanNode]:
        """Every applicable partition-wise join shape, for ``Database.explain``."""
        layout = self._partition_join_layout(
            tables, query, enable_repartition=enable_repartition
        )
        plans: list[PlanNode] = []
        seen: set[str] = set()
        for shape in layout.shapes:
            try:
                plan = self._partition_join_plan(
                    layout,
                    shape,
                    query,
                    force=None,
                    force_join=None,
                    limit=limit,
                    projection=projection,
                )
            except ValueError:
                continue
            if plan.structure not in seen:
                seen.add(plan.structure)
                plans.append(plan)
        if not plans:
            raise ValueError("no applicable partition-wise join plan")
        return plans

    #: Tie-break order when estimated costs are equal (which happens when all
    #: alternatives clamp to the scan cost on small tables): prefer the more
    #: selective structure.
    _METHOD_PREFERENCE = {
        "clustered_index_scan": 0,
        "cm_scan": 1,
        "sorted_index_scan": 2,
        "seq_scan": 3,
    }

    def plan_rank(self, plan: PlanNode) -> tuple[float, int]:
        """The selection sort key: cost first, structure preference on ties.

        Public because ``Database.explain`` sorts its candidate listing with
        the same key, guaranteeing its first entry is the plan selection
        picks.  ``method`` looks through decorator nodes, so a decorated
        tree ranks by its underlying access structure.
        """
        return (plan.estimated_cost_ms, self._METHOD_PREFERENCE.get(plan.method, 9))

    # -- join planning ---------------------------------------------------------------

    def candidate_join_plans(
        self,
        tables: Mapping[str, Table],
        query: Query,
        *,
        force: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> list[PlanNode]:
        """Left-deep join plan trees, one per (order, strategy) shape.

        For every connected left-deep order of the join graph, up to five
        candidate shapes are produced: the cheapest strategy per step (which
        picks whichever of rescanning, index probes, a hash build or an
        ordered merge the cost model prefers), plus the four pure shapes --
        all-nested-loop (the quadratic baseline the benchmarks force),
        all-index-nested-loop (when every inner table offers a probe
        structure), all-hash and all-sort-merge (always applicable: the
        unindexed fallbacks).  ``force`` pins the driving table's access
        method.  Decorator nodes (GroupBy/Sort/TopK/Limit/Project) wrap
        every shape per the query.  All cardinalities come from reservoir
        samples; enumeration never reads a heap page.
        """
        if projection is None:
            projection = query.projection
        edges = self._join_edges(tables, query)
        orders = self._left_deep_orders(query.tables, edges)
        if not orders:
            raise ValueError(
                f"join graph of {query.describe()!r} is not connected: every "
                "joined table needs an equality linking it to the chain"
            )
        plans: list[PlanNode] = []
        seen: set[str] = set()
        selectors = ("best", *FORCE_JOIN_METHODS)
        for order in orders:
            analysis = self._analyze_order(
                tables, query, order, edges, force=force, limit=limit
            )
            if analysis is None:
                continue
            for selector in selectors:
                plan = self._build_order_plan(
                    analysis, selector, limit, query, projection
                )
                if plan is not None and plan.structure not in seen:
                    seen.add(plan.structure)
                    plans.append(plan)
        if not plans:
            raise ValueError(f"no applicable join plan for forced method {force!r}")
        return plans

    def choose_join(
        self,
        tables: Mapping[str, Table],
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> PlanNode:
        """Pick the cheapest join plan (or the cheapest with a forced strategy).

        ``force_join`` restricts plans by their *step composition*, not just
        the root operator: ``"nested_loop_join"`` keeps only plans whose
        every step rescans the inner sequentially, ``"index_nested_loop_
        join"`` only plans whose every step probes an access structure,
        ``"hash_join"``/``"sort_merge_join"`` only plans built entirely from
        that operator (so a mixed chain satisfies no baseline).  ``force``
        pins the driving table's access method, as for single-table queries.
        """
        if force_join is not None and force_join not in FORCE_JOIN_METHODS:
            raise ValueError(f"unknown join method {force_join!r}")
        plans = self.candidate_join_plans(
            tables, query, force=force, limit=limit, projection=projection
        )
        if force_join is not None:
            wanted = _FORCE_JOIN_OPERATORS[force_join]
            plans = [
                plan
                for plan in plans
                if all(type(step) is wanted for step in plan.join_steps())
            ]
            if not plans:
                raise ValueError(f"no applicable plan for forced join {force_join!r}")
        return min(plans, key=lambda plan: plan.estimated_cost_ms)

    def _join_edges(
        self, tables: Mapping[str, Table], query: Query
    ) -> list[tuple[str, str, str, str]]:
        """The equi-join graph as ``(table_a, column_a, table_b, column_b)``.

        Each :class:`JoinSpec` pair contributes one edge; the left column is
        resolved to its owning table by walking the chain prefix backwards
        (matching the merged-row semantics, where the latest table wins a
        name collision).
        """
        edges: list[tuple[str, str, str, str]] = []
        for position, spec in enumerate(query.joins):
            prefix = query.tables[: position + 1]
            for left, right in spec.on:
                owner = None
                for candidate in reversed(prefix):
                    if tables[candidate].schema.has_column(left):
                        owner = candidate
                        break
                if owner is None:
                    raise ValueError(
                        f"join column {left!r} not found in any of {prefix}"
                    )
                if not tables[spec.table].schema.has_column(right):
                    raise ValueError(
                        f"unknown column {right!r} in joined table {spec.table!r}"
                    )
                edges.append((owner, left, spec.table, right))
        return edges

    @staticmethod
    def _left_deep_orders(
        names: Sequence[str], edges: Sequence[tuple[str, str, str, str]]
    ) -> list[tuple[str, ...]]:
        """Every permutation in which each table connects to the prefix."""
        orders: list[tuple[str, ...]] = []

        def connected(name: str, prefix: tuple[str, ...]) -> bool:
            return any(
                (a == name and b in prefix) or (b == name and a in prefix)
                for a, _ca, b, _cb in edges
            )

        def extend(prefix: tuple[str, ...], remaining: frozenset[str]) -> None:
            if not remaining:
                orders.append(prefix)
                return
            for name in sorted(remaining):
                if connected(name, prefix):
                    extend(prefix + (name,), remaining - {name})

        for first in names:
            extend((first,), frozenset(names) - {first})
        return orders

    def _local_predicates(self, query: Query, name: str) -> PredicateSet:
        if name == query.table:
            return query.predicates
        for spec in query.joins:
            if spec.table == name:
                return spec.predicates
        raise KeyError(name)

    def _inner_strategy_options(
        self,
        table: Table,
        inner_columns: Sequence[str],
    ) -> list[tuple[str, float, object, object]]:
        """Applicable ``(strategy, per_probe_cost_ms, index, cm)`` tuples.

        Per-probe costs are the single-lookup (``n_lookups = 1``) variants of
        the Section 4 formulas.  Clustered-index and CM probes conservatively
        sweep the table's unclustered tail on *every* probe (rows inserted
        after the last CLUSTER are not covered by the clustered page ranges),
        so their per-probe price includes the tail pages -- as the tail grows
        the planner degrades them honestly and falls back to the rescan.  The
        sequential rescan is always applicable and anchors the nested-loop
        baseline; secondary-index probes reach tail rows through the index
        and pay no tail term.
        """
        profile = table.table_profile()
        options: list[tuple[str, float, object, object]] = [
            ("seq_scan", scan_cost(profile, self.hardware), None, None)
        ]
        inner_set = set(inner_columns)
        tail_ms = len(table.tail_pages()) * self.hardware.seq_page_cost_ms
        if table.clustered_attribute in inner_set:
            corr = table.correlation_profile(table.clustered_attribute)
            options.append(
                (
                    "clustered_index_scan",
                    sorted_lookup_cost(1, corr, profile, self.hardware) + tail_ms,
                    None,
                    None,
                )
            )
        if table.clustered_attribute is not None:
            for index in table.secondary_indexes.values():
                if index.attributes[0] not in inner_set:
                    continue
                corr = table.correlation_profile(list(index.attributes))
                options.append(
                    (
                        "sorted_index_scan",
                        sorted_lookup_cost(1, corr, profile, self.hardware),
                        index,
                        None,
                    )
                )
            for cm in table.correlation_maps.values():
                if not any(attr in inner_set for attr in cm.attributes):
                    continue
                inputs = CMCostInputs(
                    buckets_per_lookup=max(1.0, cm.measured_c_per_u()),
                    pages_per_bucket=self._pages_per_target(table, cm),
                    cm_pages=cm.size_pages(),
                    cm_resident=True,
                )
                options.append(
                    (
                        "cm_scan",
                        cm_lookup_cost(1, inputs, profile, self.hardware) + tail_ms,
                        None,
                        cm,
                    )
                )
        return options

    def _outer_key_cardinality(
        self, tables: Mapping[str, Table], pairs: Sequence[tuple[str, str, str]]
    ) -> float:
        """Distinct count of the outer join key (composite when one table owns it)."""
        owners = {owner for owner, _outer_col, _inner_col in pairs}
        if len(owners) == 1:
            owner = next(iter(owners))
            return float(
                tables[owner].key_cardinality([outer for _o, outer, _i in pairs])
            )
        return float(
            max(tables[o].attribute_cardinality(c) for o, c, _i in pairs)
        )

    def _analyze_order(
        self,
        tables: Mapping[str, Table],
        query: Query,
        order: Sequence[str],
        edges: Sequence[tuple[str, str, str, str]],
        *,
        force: str | None,
        limit: int | None,
    ) -> "_OrderAnalysis | None":
        """The selector-independent costing inputs for one left-deep order.

        Everything that touches the statistics sample -- driving-plan
        costing, result-size estimates, strategy options, fanouts -- is
        computed once here and shared by all strategy shapes built for the
        order, so planning cost does not scale with the number of shapes.
        """
        steps: list[_JoinStep] = []
        for position, name in enumerate(order[1:], start=1):
            prefix = tuple(order[:position])
            pairs = [
                (a, ca, cb) if b == name else (b, cb, ca)
                for a, ca, b, cb in edges
                if (b == name and a in prefix) or (a == name and b in prefix)
            ]
            if not pairs:
                return None
            table = tables[name]
            local = self._local_predicates(query, name)
            inner_columns = [inner for _owner, _outer, inner in pairs]
            fanout = join_fanout(
                table.num_rows,
                self._outer_key_cardinality(tables, pairs),
                float(table.key_cardinality(inner_columns)),
            )
            selectivity = (
                table.statistics.match_fraction(local.matches, key=tuple(local))
                if local
                else 1.0
            )
            steps.append(
                _JoinStep(
                    table=table,
                    join_on=[(outer, inner) for _owner, outer, inner in pairs],
                    local=local,
                    options=self._inner_strategy_options(table, inner_columns),
                    fanout=fanout,
                    selectivity=selectivity,
                    est_inner_rows=table.num_rows * selectivity,
                    # Heap order *is* join-key order when the single join
                    # column is the clustered attribute and no unsorted tail
                    # has grown -- the case a sort-merge join merges for free.
                    inner_sorted=(
                        len(inner_columns) == 1
                        and table.clustered_attribute == inner_columns[0]
                        and not table.tail_pages()
                    ),
                )
            )

        # A join LIMIT terminates the driver early too: each outer row yields
        # about prod(fanout * selectivity) result rows, so the driver only
        # needs limit / that-product of its own rows.  Selecting (and
        # costing) the driving path with that budget keeps join selection as
        # LIMIT-aware as the single-table case.
        driver_limit = limit
        if limit is not None and limit >= 1:
            amplification = 1.0
            for step in steps:
                amplification *= step.fanout * step.selectivity
            if amplification > 0:
                driver_limit = max(1, math.ceil(limit / amplification))
        driving = tables[order[0]]
        driving_predicates = self._local_predicates(query, order[0])
        if force == "pipelined_index_scan":
            driving_plan = self._pipelined_plan(driving, driving_predicates)
            driving_unlimited = driving_plan
        else:

            def cheapest(effective_limit: int | None) -> ScanNode | None:
                return min(
                    (
                        plan
                        for plan in self._candidate_scan_plans(
                            driving, driving_predicates, limit=effective_limit
                        )
                        if force is None or plan.method == force
                    ),
                    key=self.plan_rank,
                    default=None,
                )

            driving_plan = cheapest(driver_limit)
            # A shape whose blocking step (hash build of the outer, explicit
            # merge sort, a Sort/TopK/Aggregate above the chain) drains the
            # whole outer cannot lean on the LIMIT-scaled driver: it gets
            # the honest full-drain plan.
            driving_unlimited = (
                driving_plan if driver_limit is None else cheapest(None)
            )
        if driving_plan is None or driving_unlimited is None:
            return None  # the forced method is inapplicable to this order's driver
        # Sweep-style driving paths emit rows in heap (= clustered) order, so
        # a first-step sort-merge join can skip its outer sort when the
        # driver is clustered on that step's single outer join column.
        outer_sorted = False
        if steps and len(steps[0].join_on) == 1:
            outer_column = steps[0].join_on[0][0]
            outer_sorted = self._ordering_satisfied(
                driving_plan.path.output_ordering(), ((outer_column, True),)
            )
        return _OrderAnalysis(
            driving_name=order[0],
            driving_plan=driving_plan,
            driving_unlimited=driving_unlimited,
            driving_rows=driving.estimate_matching_rows(driving_predicates),
            steps=steps,
            first_step_outer_sorted=outer_sorted,
        )

    def _step_candidates(
        self, step: "_JoinStep", est_rows: float, outer_sorted: bool
    ) -> list["_StepCandidate"]:
        """Every operator the cost model can run this step with, costed.

        Probe-family candidates (nested-loop rescan, index-nested-loop) are
        per-outer-row work, so their whole cost is streaming; the hash build
        and the explicit merge sorts are upfront (paid before the first
        merged row), which is exactly what lets a binding LIMIT steer
        selection back towards the probe operators for tiny result budgets.
        """
        candidates: list[_StepCandidate] = []
        for strategy, per_probe, index, cm in step.options:
            if strategy == "seq_scan":
                cost = nested_loop_join_cost(
                    0.0, est_rows, step.table.table_profile(), self.hardware
                )
            else:
                cost = index_nested_loop_join_cost(0.0, est_rows, per_probe)
            candidates.append(
                _StepCandidate(
                    kind="probe",
                    strategy=strategy,
                    split=CostSplit(0.0, cost),
                    index=index,
                    cm=cm,
                )
            )
        # Hash join: build the sampled-smaller input's hash table.  Building
        # the outer blocks its stream (LIMIT can no longer terminate the
        # inputs upstream of this step), which the shape costing accounts
        # for through ``blocks_outer``.
        build_side = "inner" if step.est_inner_rows <= est_rows else "outer"
        candidates.append(
            _StepCandidate(
                kind="hash",
                strategy="hash",
                split=hash_join_cost(
                    est_rows,
                    step.est_inner_rows,
                    step.table.table_profile(),
                    self.hardware,
                    build_side=build_side,
                ),
                build_side=build_side,
                blocks_outer=build_side == "outer",
            )
        )
        candidates.append(
            _StepCandidate(
                kind="merge",
                strategy="merge",
                split=sort_merge_join_cost(
                    est_rows,
                    step.est_inner_rows,
                    step.table.table_profile(),
                    self.hardware,
                    inner_sorted=step.inner_sorted,
                    outer_sorted=outer_sorted,
                ),
                outer_sorted=outer_sorted,
                blocks_outer=not outer_sorted,
            )
        )
        return candidates

    def _build_order_plan(
        self,
        analysis: "_OrderAnalysis",
        selector: str,
        limit: int | None,
        query: Query,
        projection: Sequence[str] | None,
    ) -> PlanNode | None:
        """One strategy shape over a pre-analyzed order (``selector`` picks)."""
        chosen_steps: list[_StepCandidate] = []
        #: Estimated rows flowing out of each step (last entry: chain result).
        step_rows: list[float] = []
        est_rows = analysis.driving_rows
        for position, step in enumerate(analysis.steps):
            outer_sorted = position == 0 and analysis.first_step_outer_sorted
            candidates = self._step_candidates(step, est_rows, outer_sorted)
            if selector == "nested_loop_join":
                candidates = [c for c in candidates if c.strategy == "seq_scan"]
            elif selector == "index_nested_loop_join":
                candidates = [
                    c for c in candidates if c.kind == "probe" and c.strategy != "seq_scan"
                ]
                if not candidates:
                    return None  # no probe structure on this inner table
            elif selector == "hash_join":
                candidates = [c for c in candidates if c.kind == "hash"]
            elif selector == "sort_merge_join":
                candidates = [c for c in candidates if c.kind == "merge"]
            chosen_steps.append(min(candidates, key=lambda c: c.split.total_ms))
            est_rows = est_rows * step.fanout * step.selectivity
            step_rows.append(est_rows)

        # The chain's output ordering follows from the chosen step kinds
        # alone: probe-family steps and an inner-built hash preserve the
        # outer order, an outer-built hash streams the inner's order, and a
        # merge join emits in join-key order under either key name.  (Every
        # driving candidate is a sweep path over the same table, so the
        # driver's ordering does not depend on which driving node is picked.)
        chain_ordering = analysis.driving_plan.path.output_ordering()
        for step, chosen in zip(analysis.steps, chosen_steps):
            if chosen.kind == "merge":
                chain_ordering = tuple(
                    (frozenset({outer, inner}), True)
                    for outer, inner in step.join_on
                )
            elif chosen.kind == "hash" and chosen.build_side == "outer":
                chain_ordering = step.table.stream_ordering()
        sort_needed = bool(query.ordering) and not self._ordering_satisfied(
            chain_ordering, query.ordering
        )

        # A blocking step (hash build of the outer, explicit merge sort)
        # drains everything upstream before the first merged row, so the
        # LIMIT-scaled driver only applies to fully streaming shapes, and
        # streaming work upstream of the last block is charged in full.  An
        # Aggregate or a needed Sort/TopK above the chain blocks the whole
        # pipeline the same way.
        last_block = max(
            (i for i, c in enumerate(chosen_steps) if c.blocks_outer), default=-1
        )
        blocked_above = query.aggregate is not None or sort_needed
        driving = (
            analysis.driving_plan
            if last_block < 0 and not blocked_above
            else analysis.driving_unlimited
        )

        parts = [f"{analysis.driving_name}[{driving.method}:{driving.structure}]"]
        source: PlanNode = driving
        for step, chosen, rows_after in zip(analysis.steps, chosen_steps, step_rows):
            source = self._build_step_operator(source, step, chosen, rows_after)
            source.est_rows = rows_after
            source.cost_split = chosen.split
            parts.append(f"{source.name}[{source.describe_detail()}]")

        upfront_ms = sum(c.split.upfront_ms for c in chosen_steps)
        if blocked_above:
            drained_ms = sum(c.split.streaming_ms for c in chosen_steps)
            streaming_ms = 0.0
        else:
            drained_ms = sum(
                c.split.streaming_ms for c in chosen_steps[: max(0, last_block)]
            )
            streaming_ms = sum(
                c.split.streaming_ms for c in chosen_steps[max(0, last_block):]
            )

        # Per-row streaming work downstream of the last block scales with
        # the emitted fraction under a LIMIT; upfront work (hash builds,
        # explicit sorts) is paid in full before the first row.
        fraction = 1.0
        if limit is not None and 1.0 <= limit < est_rows:
            fraction = limit / est_rows
        cost = (
            driving.estimated_cost_ms
            + upfront_ms
            + drained_ms
            + streaming_ms * fraction
        )
        assert isinstance(source, JoinOperator)
        source.est_cost_ms = cost
        source.structure = " -> ".join(parts)
        return self._decorate(
            source,
            query,
            limit=limit,
            projection=projection,
            input_rows=est_rows,
            input_ordering=chain_ordering,
            tables=[analysis.driving_plan.table, *(s.table for s in analysis.steps)],
            disk=analysis.driving_plan.table.buffer_pool.disk,
        )

    def _build_step_operator(
        self,
        source: PlanNode,
        step: "_JoinStep",
        chosen: "_StepCandidate",
        rows_after: float,
    ) -> JoinOperator:
        """Instantiate the executable operator for one chosen step candidate.

        ``rows_after`` is the estimated rows flowing out of this step; the
        probe leaf of a tuple-at-a-time join emits exactly the step's output
        rows (one merged row per probe match), so it carries that estimate.
        """
        if chosen.kind in ("hash", "merge"):
            inner = ScanNode(SeqScan(step.table, step.local))
            inner.structure = "heap"
            inner.est_rows = step.est_inner_rows
            inner.est_pages = float(step.table.num_pages)
            if chosen.kind == "hash":
                return HashJoin(
                    source,
                    inner,
                    step.join_on,
                    build_side=chosen.build_side,
                    inner_label=step.table.name,
                )
            return SortMergeJoin(
                source,
                inner,
                step.join_on,
                inner_sorted=step.inner_sorted,
                outer_sorted=chosen.outer_sorted,
                inner_label=step.table.name,
            )
        builder = InnerPathBuilder(
            step.table,
            step.join_on,
            step.local,
            chosen.strategy,
            index=chosen.index,
            cm=chosen.cm,
        )
        if chosen.strategy == "seq_scan":
            operator = NestedLoopJoin(source, builder)
        else:
            operator = IndexNestedLoopJoin(source, builder, chosen.strategy)
        operator.inner.est_rows = rows_after
        return operator


@dataclass
class _JoinStep:
    """Selector-independent inputs for one join step of one order."""

    table: Table
    join_on: list[tuple[str, str]]
    local: PredicateSet
    #: ``(strategy, per_probe_cost_ms, index, cm)`` probe-family candidates.
    options: list[tuple[str, float, object, object]]
    fanout: float
    selectivity: float
    #: Sampled estimate of inner rows surviving the local predicates.
    est_inner_rows: float
    #: Whether the inner heap already streams in join-key order.
    inner_sorted: bool


@dataclass
class _StepCandidate:
    """One costed way of executing one join step."""

    kind: str  # "probe" | "hash" | "merge"
    strategy: str
    split: CostSplit
    index: object = None
    cm: object = None
    build_side: str = "inner"
    outer_sorted: bool = False
    #: True when this step drains its whole outer input before emitting.
    blocks_outer: bool = False


@dataclass
class _OrderAnalysis:
    """One left-deep order, analyzed once and shared by its strategy shapes."""

    driving_name: str
    driving_plan: ScanNode
    #: The driver costed without the LIMIT, for shapes with a blocking step.
    driving_unlimited: ScanNode
    driving_rows: float
    steps: list[_JoinStep]
    #: Whether the driving path streams in the first step's join-key order.
    first_step_outer_sorted: bool = False


@dataclass
class _PartitionJoinLayout:
    """A two-table join touching partitioned storage, classified once.

    Shared by every shape built for the join (see
    :meth:`Planner._partition_join_layout`): the outer (partitioned,
    pruned) side, the build side, the normalized join pairs as
    ``(outer_column, inner_column)``, and which exchange shapes apply.
    """

    outer_name: str
    inner_name: str
    outer: PartitionedTable
    inner: AnyTable
    pairs: list[tuple[str, str]]
    outer_local: PredicateSet
    inner_local: PredicateSet
    survivors: tuple[int, ...]
    shapes: tuple[str, ...]
