"""Cost-based access-path selection.

The planner enumerates the applicable access paths for a query -- sequential
scan, sorted secondary-index scan, clustered-index scan and correlation-map
scan -- estimates each with the correlation-aware cost model of Section 4,
and picks the cheapest.  A specific method can also be forced, which is how
the benchmarks compare access paths against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import (
    CMCostInputs,
    cm_lookup_cost,
    pipelined_lookup_cost,
    scan_cost,
    sorted_lookup_cost,
)
from repro.core.model import HardwareParameters
from repro.engine.access import (
    AccessPath,
    ClusteredIndexScan,
    CorrelationMapScan,
    PipelinedIndexScan,
    SeqScan,
    SortedIndexScan,
)
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Query
from repro.engine.table import Table

#: Names accepted by ``force=`` arguments.
FORCE_METHODS = (
    "seq_scan",
    "sorted_index_scan",
    "pipelined_index_scan",
    "clustered_index_scan",
    "cm_scan",
)


@dataclass
class PlannedAccess:
    """One candidate plan with its estimated cost."""

    path: AccessPath
    estimated_cost_ms: float
    structure: str = ""

    @property
    def method(self) -> str:
        return self.path.name


class Planner:
    """Chooses access paths for queries over one database's tables."""

    def __init__(self, hardware: HardwareParameters) -> None:
        self.hardware = hardware

    # -- lookup-count estimation --------------------------------------------------

    def _estimate_n_lookups(self, table: Table, predicates: PredicateSet, attributes) -> int:
        """How many distinct values an index/CM will be probed with."""
        first = attributes[0]
        predicate = predicates.on_attribute(first)
        if predicate is None:
            return 1
        if isinstance(predicate, Equals):
            return 1
        if isinstance(predicate, InSet):
            return max(1, len(predicate.values))
        if isinstance(predicate, Between):
            # Approximate the number of distinct values inside the range from
            # the attribute's cardinality, assuming a roughly uniform domain.
            # Cardinality and domain bounds come from the incrementally
            # maintained statistics -- plan enumeration never scans the heap.
            cardinality = table.attribute_cardinality(first)
            bounds = table.attribute_range(first)
            if bounds is None:
                return 1
            lo, hi = bounds
            try:
                span = float(hi) - float(lo)
                width = float(predicate.high if predicate.high is not None else hi) - float(
                    predicate.low if predicate.low is not None else lo
                )
                fraction = min(1.0, max(0.0, width / span)) if span > 0 else 1.0
            except (TypeError, ValueError):
                fraction = 0.1
            return max(1, int(round(cardinality * fraction)))
        return 1

    # -- candidate enumeration -------------------------------------------------------

    def candidate_plans(self, table: Table, query: Query) -> list[PlannedAccess]:
        predicates = query.predicates
        profile = table.table_profile()
        plans = [
            PlannedAccess(
                path=SeqScan(table, predicates),
                estimated_cost_ms=scan_cost(profile, self.hardware),
                structure="heap",
            )
        ]

        predicate_attrs = {p.attribute for p in predicates.indexable_predicates()}

        if (
            table.clustered_attribute is not None
            and table.clustered_attribute in predicate_attrs
        ):
            n = self._estimate_n_lookups(table, predicates, [table.clustered_attribute])
            corr = table.correlation_profile(table.clustered_attribute)
            cost = sorted_lookup_cost(n, corr, profile, self.hardware)
            plans.append(
                PlannedAccess(
                    path=ClusteredIndexScan(table, predicates),
                    estimated_cost_ms=cost,
                    structure=f"clustered({table.clustered_attribute})",
                )
            )

        for name, index in table.secondary_indexes.items():
            if index.attributes[0] not in predicate_attrs:
                continue
            if table.clustered_attribute is None:
                continue
            n = self._estimate_n_lookups(table, predicates, index.attributes)
            corr = table.correlation_profile(list(index.attributes))
            cost = sorted_lookup_cost(n, corr, profile, self.hardware)
            plans.append(
                PlannedAccess(
                    path=SortedIndexScan(table, index, predicates),
                    estimated_cost_ms=cost,
                    structure=name,
                )
            )

        for name, cm in table.correlation_maps.items():
            if not any(attr in predicate_attrs for attr in cm.attributes):
                continue
            n = self._estimate_cm_lookups(cm, predicates)
            pages_per_target = self._pages_per_target(table, cm)
            inputs = CMCostInputs(
                buckets_per_lookup=max(1.0, cm.measured_c_per_u()),
                pages_per_bucket=pages_per_target,
                cm_pages=cm.size_pages(),
                cm_resident=True,
            )
            cost = cm_lookup_cost(n, inputs, profile, self.hardware)
            plans.append(
                PlannedAccess(
                    path=CorrelationMapScan(table, cm, predicates),
                    estimated_cost_ms=cost,
                    structure=name,
                )
            )
        return plans

    def _estimate_cm_lookups(self, cm, predicates: PredicateSet) -> int:
        """Number of CM keys (buckets) the query's constraints touch.

        The CM is memory resident, so counting its matching keys is cheap and
        is exactly what the front-end does while rewriting the query; using it
        keeps the planner's ``n_lookups`` at bucket granularity rather than
        value granularity for range predicates over bucketed attributes.
        """
        constraints = {
            attr: constraint
            for attr, constraint in predicates.constraints().items()
            if attr in cm.attributes
        }
        if not constraints:
            return 1
        bucket_constraints = cm.key_spec.bucket_constraints(constraints)
        from repro.core.composite import key_matches

        matching = sum(1 for key in cm.keys() if key_matches(key, bucket_constraints))
        return max(1, matching)

    def _pages_per_target(self, table: Table, cm) -> float:
        """Average heap pages covered by one CM target (bucket or value)."""
        if table.cm_uses_buckets(cm.name) and table.pages_per_bucket:
            return float(table.pages_per_bucket)
        profile = table.correlation_profile(table.clustered_attribute)
        return max(1.0, profile.c_pages(table.tups_per_page))

    # -- selection -----------------------------------------------------------------------

    def choose(self, table: Table, query: Query, *, force: str | None = None) -> PlannedAccess:
        """Pick the cheapest applicable plan (or the forced one)."""
        plans = self.candidate_plans(table, query)
        if force is not None:
            if force not in FORCE_METHODS:
                raise ValueError(f"unknown access method {force!r}")
            if force == "pipelined_index_scan":
                # Derived from the sorted plan's index, costed per Section 3.1.
                for plan in plans:
                    if isinstance(plan.path, SortedIndexScan):
                        profile = table.table_profile()
                        corr = table.correlation_profile(list(plan.path.index.attributes))
                        n = self._estimate_n_lookups(
                            table, query.predicates, plan.path.index.attributes
                        )
                        return PlannedAccess(
                            path=PipelinedIndexScan(table, plan.path.index, query.predicates),
                            estimated_cost_ms=pipelined_lookup_cost(
                                n, corr, profile, self.hardware
                            ),
                            structure=plan.structure,
                        )
                raise ValueError("no secondary index available for a pipelined scan")
            matching = [plan for plan in plans if plan.method == force]
            if not matching:
                raise ValueError(f"no applicable plan for forced method {force!r}")
            return min(matching, key=lambda plan: plan.estimated_cost_ms)
        return min(plans, key=self._plan_rank)

    #: Tie-break order when estimated costs are equal (which happens when all
    #: alternatives clamp to the scan cost on small tables): prefer the more
    #: selective structure.
    _METHOD_PREFERENCE = {
        "clustered_index_scan": 0,
        "cm_scan": 1,
        "sorted_index_scan": 2,
        "seq_scan": 3,
    }

    def _plan_rank(self, plan: PlannedAccess) -> tuple[float, int]:
        return (plan.estimated_cost_ms, self._METHOD_PREFERENCE.get(plan.method, 9))
