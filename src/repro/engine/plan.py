"""Pipeline decorator nodes of the physical plan tree, plus its rendering.

The planner composes every query into one tree of
:class:`~repro.engine.executor.PlanNode` operators.  The *input* of the tree
-- scans and join operators -- lives in :mod:`repro.engine.access` and
:mod:`repro.engine.executor`; this module provides the decorators stacked on
top, bottom-up in this order:

``AggregateNode`` / ``GroupByNode``
    Streaming scalar aggregation (count/sum/avg reduce the row stream with
    O(1) state, count_distinct keeps only the distinct-value set) and hash
    aggregation with one output row per group.

``SortNode`` / ``TopKNode``
    Explicit ORDER BY.  A full sort buffers and sorts the input; combined
    with a LIMIT the planner fuses both into a TopK node that keeps a
    bounded k-heap instead -- the input is still read exactly once and only
    k rows are ever retained.  When the chosen input already streams in the
    requested order the planner plans the sort away entirely.

``LimitNode`` / ``ProjectNode``
    LIMIT stops pulling from its child once the budget is spent, which
    abandons every upstream generator mid-sweep (remaining heap pages are
    never read); projection trims emitted rows to the requested columns
    (residual predicates below still see whole rows).

NULL ordering follows PostgreSQL: NULLs sort last ascending and first
descending.  Ties under a LIMIT resolve by input order (the sort is stable;
the k-heap keeps the first-seen row of a tied key).

:func:`render_plan` walks an executed tree and prints one line per node with
the planner's estimates next to the node's actual counters -- the
``Database.explain_analyze`` surface.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

if TYPE_CHECKING:
    from repro.storage.disk import DiskModel

from repro.core.cost import sort_comparison_count, top_k_comparison_count
from repro.engine.executor import (
    ExecutionContext,
    PlanNode,
    RowBatch,
    ScanNode,
    _emit_batch,
    iter_batches_of,
)
from repro.engine.query import Aggregate


# ---------------------------------------------------------------------------
# Sort keys: direction- and NULL-aware comparison
# ---------------------------------------------------------------------------

class SortKey:
    """One row's value under one ORDER BY column, totally ordered.

    Wraps the raw value so that ``sorted``/``heapq`` never compare ``None``
    with a real value: NULLs rank last ascending, first descending (the
    PostgreSQL defaults), and a descending column simply inverts the
    comparison -- which keeps multi-column keys with mixed directions a
    plain tuple comparison.
    """

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortKey) and self.value == other.value

    def __lt__(self, other: "SortKey") -> bool:
        a, b = (
            (self.value, other.value)
            if self.ascending
            else (other.value, self.value)
        )
        if a is None:
            return False  # NULLs last in the ascending frame
        if b is None:
            return True
        return a < b

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortKey({self.value!r}, {'asc' if self.ascending else 'desc'})"


def sort_key_function(
    ordering: Sequence[tuple[str, bool]],
) -> Callable[[Mapping[str, Any]], tuple[SortKey, ...]]:
    """A row -> comparable-key function for ``((column, ascending), ...)``."""
    ordering = tuple(ordering)

    def key_of(row: Mapping[str, Any]) -> tuple[SortKey, ...]:
        return tuple(SortKey(row[column], ascending) for column, ascending in ordering)

    return key_of


def columnar_sort(
    rows: list[dict[str, Any]], ordering: Sequence[tuple[str, bool]]
) -> None:
    """Sort ``rows`` in place by ``ordering``, one C-driven pass per column.

    The decorate-sort-undecorate replacement for the per-row
    ``tuple(SortKey(...))`` key of :func:`sort_key_function`: exploiting sort
    stability, one stable pass per ordering column from the least to the
    most significant reproduces the lexicographic multi-column order.  A
    NULL-free column sorts on raw values (``itemgetter`` key,
    ``reverse=not ascending`` -- Python's reverse sort keeps equal elements
    in order, preserving stability); a column containing NULLs falls back to
    wrapping that pass's values in :class:`SortKey`, the only place its
    NULL-ordering comparator is still needed.
    """
    for column, ascending in reversed(tuple(ordering)):
        if None in [row[column] for row in rows]:
            rows.sort(key=_null_aware_pass_key(column, ascending))
        else:
            rows.sort(key=itemgetter(column), reverse=not ascending)


def _null_aware_pass_key(
    column: str, ascending: bool
) -> Callable[[Mapping[str, Any]], SortKey]:
    return lambda row: SortKey(row[column], ascending)


def _encode_sort_column(values: list[Any], ascending: bool) -> list[Any]:
    """A directly comparable sort-key vector for one ORDER BY column.

    Raw values for a NULL-free ascending column; negated values for a
    NULL-free descending column over a negatable type; :class:`SortKey`
    wrapping otherwise.  Each encoding orders *and* equates values exactly
    as ``SortKey(value, ascending)`` does, so separately encoded batches
    rank rows identically -- as long as any one comparison only ever sees
    keys from the same encoding call (guaranteed by encoding each top-k
    merge's candidate set afresh).
    """
    if None not in values:
        if ascending:
            return values
        try:
            return [-value for value in values]
        except TypeError:
            pass
    return [SortKey(value, ascending) for value in values]


class _MaxHeapEntry:
    """Inverts comparisons so ``heapq``'s min-heap keeps the k *smallest*."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_MaxHeapEntry") -> bool:
        return other.key < self.key


def _ordering_text(ordering: Sequence[tuple[str, bool]]) -> str:
    return ", ".join(
        column if ascending else f"{column} DESC" for column, ascending in ordering
    )


# ---------------------------------------------------------------------------
# Decorator nodes
# ---------------------------------------------------------------------------

class DecoratorNode(PlanNode):
    """A single-child pipeline node stacked above the scan/join input tree."""

    is_decorator = True

    __slots__ = ("source", "disk")

    def __init__(self, source: PlanNode, *, disk: DiskModel | None = None) -> None:
        super().__init__()
        self.source = source
        #: The simulated disk to charge in-operator CPU work to (optional so
        #: hand-built trees stay runnable without a database).
        self.disk = disk

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,) if isinstance(self.source, PlanNode) else ()

    @property
    def source_fresh(self) -> bool:
        return getattr(self.source, "produces_fresh_rows", True)

    def _charge_cpu(self, tuples: float) -> None:
        if self.disk is not None and tuples > 0:
            self.disk.charge_cpu_tuples(int(tuples))

    def _source_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None = None,
        run_reads: bool = True,
    ) -> Iterator[RowBatch]:
        """Pull batches from the child under a child context."""
        return iter_batches_of(
            self.source, context.child(), batch_size, demand, run_reads
        )

    @staticmethod
    def _chunks(rows: Sequence[dict[str, Any]], batch_size: int) -> Iterator[RowBatch]:
        """Slice an already-materialised row list into batches."""
        for start in range(0, len(rows), batch_size):
            yield RowBatch(rows[start : start + batch_size])


class SortNode(DecoratorNode):
    """Full in-memory ORDER BY: buffer the input, sort, re-emit.

    Stable, so ties keep their input order.  ``rows_in`` records how many
    rows were buffered (surfaced by ``QueryResult.summary()``); the
    comparison CPU is charged to the simulated disk with the same
    ``n log2 n`` count the cost model prices.
    """

    name = "sort"

    __slots__ = ("ordering", "rows_in")

    def __init__(
        self,
        source: PlanNode,
        ordering: Sequence[tuple[str, bool]],
        *,
        disk: DiskModel | None = None,
    ) -> None:
        super().__init__(source, disk=disk)
        self.ordering = tuple(ordering)
        self.rows_in = 0

    @property
    def produces_fresh_rows(self) -> bool:  # type: ignore[override]
        return self.source_fresh

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        rows = list(self.source.iter_rows(context.child()))
        self.rows_in = len(rows)
        self._charge_cpu(sort_comparison_count(len(rows)))
        rows.sort(key=sort_key_function(self.ordering))
        fresh = self.source_fresh
        for row in rows:
            yield context.emit(row, fresh=fresh)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Blocking: the input is drained and sorted in full whatever the
        # consumer's demand (exactly as in the row pipeline), so demand only
        # caps the output -- which the iter_batches wrapper enforces.
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        rows: list[dict[str, Any]] = []
        for batch in self._source_batches(context, batch_size, None, run_reads):
            rows.extend(batch)
        self.rows_in = len(rows)
        self._charge_cpu(sort_comparison_count(len(rows)))
        columnar_sort(rows, self.ordering)
        for chunk in self._chunks(rows, batch_size):
            yield _emit_batch(context, chunk)

    def describe_detail(self) -> str:
        return _ordering_text(self.ordering)

    def stats(self) -> str:
        return f"sort buffered {self.rows_in} rows"


class TopKNode(DecoratorNode):
    """ORDER BY + LIMIT k fused into a bounded k-heap (no full sort).

    The input streams through a max-heap of at most ``k`` entries: a row
    enters only when it beats the current k-th best, so memory stays O(k)
    and the comparison work is ``n log2 k`` -- while the input is still read
    exactly once (a TopK adds zero page reads over its child).  Ties keep
    the first-seen row, matching the stable full sort.
    """

    name = "topk"

    __slots__ = ("ordering", "k", "rows_in")

    def __init__(
        self,
        source: PlanNode,
        ordering: Sequence[tuple[str, bool]],
        k: int,
        *,
        disk: DiskModel | None = None,
    ) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        super().__init__(source, disk=disk)
        self.ordering = tuple(ordering)
        self.k = k
        self.rows_in = 0

    @property
    def produces_fresh_rows(self) -> bool:  # type: ignore[override]
        return self.source_fresh

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        if self.k == 0:
            return
        key_of = sort_key_function(self.ordering)
        heap: list[tuple[_MaxHeapEntry, dict[str, Any]]] = []
        seq = 0
        for row in self.source.iter_rows(context.child()):
            # seq breaks key ties deterministically (first-seen wins: a tied
            # newcomer has a larger seq, so it never displaces the holder).
            entry_key = (key_of(row), seq)
            seq += 1
            if len(heap) < self.k:
                heapq.heappush(heap, (_MaxHeapEntry(entry_key), row))
            elif entry_key < heap[0][0].key:
                heapq.heapreplace(heap, (_MaxHeapEntry(entry_key), row))
        self.rows_in = seq
        self._charge_cpu(top_k_comparison_count(seq, self.k))
        fresh = self.source_fresh
        for entry in sorted(heap, key=lambda item: item[0].key):
            yield context.emit(entry[1], fresh=fresh)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Blocking: the whole input flows through the k-heap either way.
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        if self.k == 0:
            return
        # Columnar top-k: instead of feeding the k-heap row by row, merge
        # each batch with the current top-k candidates through one C-driven
        # sort over decorated (*encoded_keys, seq, row) tuples.  The unique
        # seq breaks key ties by arrival order -- first-seen wins, exactly
        # the heap's tie rule -- and guarantees the row dicts themselves are
        # never compared.  Key columns are re-encoded per merge
        # (:func:`_encode_sort_column`), so mixed encodings never meet in
        # one comparison.  The same rows survive as with the heap: both
        # keep the k smallest (key, seq) pairs seen so far.
        ordering = self.ordering
        k = self.k
        top_rows: list[dict[str, Any]] = []
        top_seqs: list[int] = []
        seq = 0
        for batch in self._source_batches(context, batch_size, None, run_reads):
            candidate_rows = top_rows + batch
            candidate_seqs = top_seqs + list(range(seq, seq + len(batch)))
            seq += len(batch)
            key_columns = [
                _encode_sort_column(
                    [row[column] for row in candidate_rows], ascending
                )
                for column, ascending in ordering
            ]
            decorated = sorted(zip(*key_columns, candidate_seqs, candidate_rows))
            del decorated[k:]
            top_seqs = [entry[-2] for entry in decorated]
            top_rows = [entry[-1] for entry in decorated]
        self.rows_in = seq
        self._charge_cpu(top_k_comparison_count(seq, self.k))
        for chunk in self._chunks(top_rows, batch_size):
            yield _emit_batch(context, chunk)

    def describe_detail(self) -> str:
        return f"{_ordering_text(self.ordering)}, k={self.k}"

    def stats(self) -> str:
        return f"top-{self.k} heap over {self.rows_in} rows"


class AggregateNode(DecoratorNode):
    """Streaming scalar aggregation: reduce the input to one value.

    count/sum/avg hold O(1) running state; count_distinct holds the distinct
    value set (the only part of the stream it must remember).  Emits exactly
    one row ``{aggregate.output_name: value}`` once the input is exhausted;
    the value is also kept on :attr:`value` for ``QueryResult``.
    """

    name = "aggregate"

    __slots__ = ("aggregate", "rows_in", "value")

    def __init__(
        self,
        source: PlanNode,
        aggregate: Aggregate,
        *,
        disk: DiskModel | None = None,
    ) -> None:
        super().__init__(source, disk=disk)
        self.aggregate = aggregate
        self.rows_in = 0
        self.value: Any = None

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        accumulator = self.aggregate.make_accumulator()
        rows_in = 0
        for row in self.source.iter_rows(context.child()):
            accumulator.add(row)
            rows_in += 1
        self.rows_in = rows_in
        self._charge_cpu(rows_in)
        self.value = accumulator.result()
        yield context.emit({self.aggregate.output_name: self.value}, fresh=True)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        accumulator = self.aggregate.make_accumulator()
        add_batch = accumulator.add_batch
        rows_in = 0
        for batch in self._source_batches(context, batch_size, None, run_reads):
            add_batch(batch)
            rows_in += len(batch)
        self.rows_in = rows_in
        self._charge_cpu(rows_in)
        self.value = accumulator.result()
        yield _emit_batch(
            context, RowBatch(({self.aggregate.output_name: self.value},))
        )

    def describe_detail(self) -> str:
        return self.aggregate.output_name


class GroupByNode(DecoratorNode):
    """Hash aggregation: one accumulator per distinct group-key combination.

    Output rows hold the group columns plus the aggregate value under
    :attr:`Aggregate.output_name`, in first-seen group order (deterministic
    for a deterministic input stream).  Only the accumulators are buffered,
    never the input rows.
    """

    name = "hash_group"

    __slots__ = ("group_columns", "aggregate", "rows_in", "groups_out")

    def __init__(
        self,
        source: PlanNode,
        group_columns: Sequence[str],
        aggregate: Aggregate,
        *,
        disk: DiskModel | None = None,
    ) -> None:
        super().__init__(source, disk=disk)
        self.group_columns = tuple(group_columns)
        self.aggregate = aggregate
        self.rows_in = 0
        self.groups_out = 0

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        groups: dict[tuple[Any, ...], Any] = {}
        columns = self.group_columns
        rows_in = 0
        for row in self.source.iter_rows(context.child()):
            key = tuple(row[column] for column in columns)
            accumulator = groups.get(key)
            if accumulator is None:
                accumulator = groups[key] = self.aggregate.make_accumulator()
            accumulator.add(row)
            rows_in += 1
        self.rows_in = rows_in
        self.groups_out = len(groups)
        self._charge_cpu(rows_in)
        output_name = self.aggregate.output_name
        for key, accumulator in groups.items():
            merged = dict(zip(columns, key))
            merged[output_name] = accumulator.result()
            yield context.emit(merged, fresh=True)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Blocking: every input row lands in an accumulator whatever the
        # demand; a LIMIT above only caps how many *group* rows leave.
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        # Columnar hash aggregation: extract the whole batch's group keys
        # with one itemgetter pass, then fold them through per-kind batch
        # kernels (:class:`~repro.engine.query.GroupedAccumulators`) instead
        # of dispatching per row into per-group accumulators.
        columns = self.group_columns
        single = columns[0] if len(columns) == 1 else None
        key_of = itemgetter(*columns)
        grouped = self.aggregate.make_grouped()
        add_batch = grouped.add_batch
        rows_in = 0
        for batch in self._source_batches(context, batch_size, None, run_reads):
            rows_in += len(batch)
            add_batch(list(map(key_of, batch)), batch)
        self.rows_in = rows_in
        self.groups_out = len(grouped)
        self._charge_cpu(rows_in)
        output_name = self.aggregate.output_name
        out = RowBatch()
        for key, value in grouped.results():
            if single is not None:
                merged = {single: key}
            else:
                merged = dict(zip(columns, key))
            merged[output_name] = value
            out.append(merged)
            if len(out) >= batch_size:
                yield _emit_batch(context, out)
                out = RowBatch()
        if out:
            yield _emit_batch(context, out)

    def describe_detail(self) -> str:
        return f"{', '.join(self.group_columns)}: {self.aggregate.output_name}"


class LimitNode(DecoratorNode):
    """Stop pulling from the child once ``k`` rows have been emitted.

    Closing the child generator mid-stream abandons every upstream pipeline
    at its current yield point, so heap pages past the last consumed row are
    never read -- the same early termination the context-level budget used
    to provide, now owned by an explicit plan node.
    """

    name = "limit"

    __slots__ = ("k",)

    def __init__(
        self, source: PlanNode, k: int, *, disk: DiskModel | None = None
    ) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        super().__init__(source, disk=disk)
        self.k = k

    @property
    def produces_fresh_rows(self) -> bool:  # type: ignore[override]
        return self.source_fresh

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        if self.k == 0:
            return
        produced = 0
        fresh = self.source_fresh
        for row in self.source.iter_rows(context.child()):
            yield context.emit(row, fresh=fresh)
            produced += 1
            if produced >= self.k:
                return

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # The origin of the demand budget: the child receives k (or less) as
        # its demand.  Streaming children degrade to exact lazy production;
        # blocking children ignore the budget, as they must.
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        if self.k == 0:
            return
        child_demand = self.k if demand is None else min(self.k, demand)
        for batch in self._source_batches(
            context, batch_size, child_demand, run_reads
        ):
            yield _emit_batch(context, batch)

    def describe_detail(self) -> str:
        return str(self.k)


class ProjectNode(DecoratorNode):
    """Trim emitted rows to the requested columns (applied at the top, so
    residual predicates and sort keys below still see whole rows)."""

    name = "project"

    __slots__ = ("columns",)

    def __init__(
        self, source: PlanNode, columns: Sequence[str], *, disk: DiskModel | None = None
    ) -> None:
        super().__init__(source, disk=disk)
        self.columns = tuple(columns)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        columns = self.columns
        for row in self.source.iter_rows(context.child()):
            yield context.emit(
                {column: row[column] for column in columns}, fresh=True
            )

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Row-count preserving and free of I/O/charging, so a finite demand
        # forwards to the child unchanged and the projection stays a
        # C-driven list comprehension per batch.
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        columns = self.columns
        source = self.source
        if demand is None and isinstance(source, ScanNode):
            # Scan→filter→project fusion: drive the scan's access path with
            # the projection folded into its compiled per-page kernel, so no
            # intermediate full-width batch is ever materialised.  The scan
            # work lands on the scan node's counters (adopted child
            # context), and its rows_out is bumped here, per batch -- a
            # projection preserves the row count, so the totals equal the
            # unfused pipeline's.
            fused = getattr(source.path, "project_batches", None)
            if fused is not None:
                scan_actual = source.actual
                scan_context = source.adopt(context.child())
                for batch in fused(scan_context, batch_size, run_reads, columns):
                    scan_actual.rows_out += len(batch)
                    yield _emit_batch(context, batch)
                return
        for batch in self._source_batches(context, batch_size, demand, run_reads):
            yield _emit_batch(
                context,
                RowBatch([{column: row[column] for column in columns} for row in batch]),
            )

    def describe_detail(self) -> str:
        return ", ".join(self.columns)


class ExchangeNode(PlanNode):
    """Fan-out/union over the surviving partitions of a partitioned table.

    One child scan subtree per partition that survived static pruning; the
    node streams them in ascending partition order, which concatenates the
    per-partition row streams into one.  Every child reads through its own
    partition's private device, so the simulated counters of each subtree
    are independent of whatever interleaving the consumer imposes -- the
    property that keeps cooperative (quantum-interleaved) and
    process-parallel execution bit-identical to this serial concatenation.

    For process-parallel runs the owning database executes the children out
    of line and hands the collected rows back via :meth:`set_replay`; the
    node then emits those rows without touching its children (whose
    counters were already folded in from the workers).

    ``partitions_total``/``partitions_pruned`` record the static pruning
    decision; :attr:`partitions_scanned` counts the children actually
    started at runtime (a LIMIT above may stop the concatenation early),
    which is the ``act`` half of the EXPLAIN ANALYZE rendering.
    """

    name = "exchange"
    produces_fresh_rows = False

    __slots__ = (
        "sources",
        "devices",
        "device_groups",
        "partition_key",
        "partition_method",
        "partitions_total",
        "partitions_pruned",
        "partitions_scanned",
        "_replay",
    )

    def __init__(
        self,
        sources: Sequence[PlanNode],
        *,
        devices: Sequence["DiskModel | Sequence[DiskModel]"],
        partition_key: str,
        partition_method: str,
        partitions_total: int,
    ) -> None:
        super().__init__()
        self.sources: tuple[PlanNode, ...] = tuple(sources)
        #: Per-child device groups: every private device one child subtree
        #: reads through.  A plain scan child has a one-device group; a
        #: partition-wise join child groups its outer partition's device with
        #: its inner partition's.  Each entry of ``devices`` may therefore be
        #: a single :class:`DiskModel` or a sequence of them.
        groups: list[tuple["DiskModel", ...]] = []
        for entry in devices:
            if isinstance(entry, (tuple, list)):
                groups.append(tuple(entry))
            else:
                groups.append((entry,))
        self.device_groups: tuple[tuple["DiskModel", ...], ...] = tuple(groups)
        #: The distinct per-partition devices of the surviving children, in
        #: child order.  The database snapshots these around execution to
        #: fold the partitions' I/O into the query's reported breakdown, so
        #: no device may appear twice (its window would be folded twice).
        flat: dict[int, "DiskModel"] = {}
        for group in self.device_groups:
            for device in group:
                flat.setdefault(id(device), device)
        self.devices: tuple["DiskModel", ...] = tuple(flat.values())
        if len(self.device_groups) != len(self.sources):
            raise ValueError("one device per partition subtree is required")
        self.partition_key = partition_key
        self.partition_method = partition_method
        self.partitions_total = partitions_total
        self.partitions_pruned = partitions_total - len(self.sources)
        self.partitions_scanned = 0
        self._replay: list[dict[str, Any]] | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return self.sources

    def set_replay(self, rows: list[dict[str, Any]]) -> None:
        """Emit ``rows`` instead of draining the children (parallel runs).

        The caller has already executed the child subtrees elsewhere and
        folded their counters and device windows in; this node only has to
        reproduce the serial concatenation's output stream (the rows are
        private dicts, so no defensive copies are taken).
        """
        self._replay = rows
        self.partitions_scanned = len(self.sources)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        if self._replay is not None:
            for row in self._replay:
                yield context.emit(row, fresh=True)
            return
        self.partitions_scanned = 0
        for source in self.sources:
            self.partitions_scanned += 1
            for row in source.iter_rows(context.child()):
                yield context.emit(row)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        if context.limit is not None or context.projection is not None:
            yield from PlanNode._stream_batches(
                self, context, batch_size, demand, run_reads
            )
            return
        if self._replay is not None:
            rows = self._replay
            for start in range(0, len(rows), batch_size):
                yield _emit_batch(context, RowBatch(rows[start : start + batch_size]))
            return
        self.partitions_scanned = 0
        remaining = demand
        for source in self.sources:
            self.partitions_scanned += 1
            # Each child receives the *remaining* demand, so across the
            # concatenation exactly as many rows are produced -- and exactly
            # as many pages swept -- as the row-at-a-time pipeline under the
            # same LIMIT.
            for batch in iter_batches_of(
                source, context.child(), batch_size, remaining, run_reads
            ):
                yield _emit_batch(context, batch)
                if remaining is not None:
                    remaining -= len(batch)
            if remaining is not None and remaining <= 0:
                return

    def describe_detail(self) -> str:
        return (
            f"{self.partition_method}({self.partition_key}), "
            f"partitions scanned est={len(self.sources)} "
            f"act={self.partitions_scanned}, "
            f"pruned={self.partitions_pruned}/{self.partitions_total}"
        )


def exchange_devices(root: PlanNode) -> list["DiskModel"]:
    """Every partition device referenced by exchange nodes of this tree.

    The database snapshots these (next to the shared device) around a run so
    per-partition I/O folds into the query's reported breakdown; the
    scheduler does the same per quantum.
    """
    devices: list["DiskModel"] = []
    for node in root.walk():
        if isinstance(node, ExchangeNode):
            devices.extend(node.devices)
    return devices


def find_node(root: PlanNode, node_type: type) -> Any:
    """The first node of ``node_type`` in the tree (pre-order), or ``None``."""
    for node in root.walk():
        if isinstance(node, node_type):
            return node
    return None


def sort_stats(root: PlanNode) -> str | None:
    """The Sort/TopK work a plan performed, for ``QueryResult.summary()``."""
    for node in root.walk():
        if isinstance(node, (SortNode, TopKNode)):
            return node.stats()
    return None


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE rendering
# ---------------------------------------------------------------------------

def _format_count(value: float | int | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return str(int(round(value)))
    return str(value)


def _node_line(node: PlanNode) -> str:
    # An inner node shows its *own* cost (the raw formula split); a node
    # carrying a planner-stamped `est_cost_ms` shows that instead -- the
    # clamped, LIMIT-aware figure, which on a node with children is the
    # whole-subtree total and is labelled as such to keep the column
    # honestly non-additive.
    if node.est_cost_ms is not None:
        label = "est_ms_total" if node.children else "est_ms"
        cost = f"{label}={node.est_cost_ms:.2f}"
    elif node.cost_split is not None:
        cost = f"est_ms={node.cost_split.total_ms:.2f}"
    else:
        cost = "est_ms=-"
    return (
        f"{node.label()}  "
        f"(rows est={_format_count(node.est_rows)} act={node.actual.rows_out}, "
        f"pages est={_format_count(node.est_pages)} act={node.actual.pages_visited}, "
        f"{cost})"
    )


def render_plan(root: PlanNode) -> str:
    """One line per node: label, estimated vs actual rows/pages, node cost.

    Children are indented with tree guides; the per-node ``act`` counters
    cover only that node's own work, so summing a column reproduces the
    whole-query totals of :meth:`PlanNode.total_counters`.
    """
    lines: list[str] = []

    def emit(node: PlanNode, prefix: str, connector: str, child_prefix: str) -> None:
        lines.append(f"{prefix}{connector}{_node_line(node)}")
        children = node.children
        for position, child in enumerate(children):
            last = position == len(children) - 1
            emit(
                child,
                child_prefix,
                "└─ " if last else "├─ ",
                child_prefix + ("   " if last else "│  "),
            )

    emit(root, "", "", "")
    return "\n".join(lines)
